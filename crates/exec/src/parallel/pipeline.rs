//! Parallel pipelines: per-worker operator chains plus a merging sink.
//!
//! A pipeline executes `scan → step* → sink` with every worker running the
//! same chain over the morsels it claims. Steps are streaming operators —
//! filter, projection, and (new with the pipeline DAG) a hash-join *probe*
//! against a shared immutable [`BuildSide`] produced by an earlier
//! pipeline. The sink is the pipeline breaker; each variant defines a
//! worker-local partial state and a merge/finalize step:
//!
//! | sink | worker-local state | merge |
//! |---|---|---|
//! | [`PipelineSink::Collect`] | produced chunks, tagged by morsel | re-order by morsel sequence |
//! | [`PipelineSink::SimpleAggregate`] | per-morsel [`AggState`] rows | [`AggState::merge`] in morsel order |
//! | [`PipelineSink::HashAggregate`] | per-morsel group hash tables | merge tables in morsel order, emit groups key-sorted |
//! | [`PipelineSink::Sort`] | sorted runs, spilled past the budget | streaming k-way merge of memory + disk runs, ties broken by scan position |
//! | [`PipelineSink::JoinBuild`] | hashed build chunks ([`BuildPartial`]) | splice via [`BuildSide::from_partials`] |
//! | [`PipelineSink::Queue`] | chunks of the current work unit | none — batches stream into a [`ChunkQueue`] per unit |
//!
//! Sources are [`PipelineSource`]s: a morsel-sliced table scan, or a
//! bounded chunk queue fed by upstream pipelines running concurrently
//! (each popped batch is a unit of work carrying a deterministic
//! sequence).
//!
//! Partial aggregate states are kept *per morsel* (not just per worker)
//! and merged in morsel order, so results do not depend on which worker
//! happened to claim which morsel: a query returns bit-identical results
//! at every thread count, including floating-point aggregates. Sort runs
//! *are* per worker (and spill per worker), but every row carries its scan
//! position and the merge comparator is total, so the merged order is
//! independent of how rows landed in runs.
//!
//! Memory accounting (§4): when a [`BufferManager`] is attached, workers
//! charge their partial state as it grows — aggregate groups, buffered
//! sort rows (released again when a run spills to disk), Top-N candidate
//! buffers (spilled when the ledger refuses a grow), collected result
//! chunks, and join-build partials. Reservations for materialized output
//! travel inside [`PipelineOutput`] and release on pipeline teardown —
//! unless the pipeline is a streamed graph output
//! ([`ParallelPipeline::with_output_queue`]), in which case the
//! merge/finalize step pushes chunks into a bounded result queue as
//! charged batches and materializes nothing.

use crate::aggregate::AggState;
use crate::ops::agg::{update_group_table, update_simple_states, AggExpr, GroupTable};
use crate::ops::join::{BuildPartial, BuildSide, JoinProbeOp, JoinType};
use crate::ops::sort::{compare_keys, SortKey};
use crate::ops::{FilterOp, OperatorBox, PhysicalOperator, ProjectionOp, ValuesOp};
use crate::parallel::morsel::{Morsel, MorselScanOp, MorselSource};
use crate::parallel::queue::{compose_seq, ChunkQueue, QueueBatch};
use crate::parallel::scheduler::TaskScheduler;
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_storage::spill::{SpillFile, SpillReader};
use eider_txn::Transaction;
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, VECTOR_SIZE};
use std::sync::Arc;

/// Where a pipeline's workers claim their units of work.
#[derive(Debug, Clone)]
pub enum PipelineSource {
    /// A morsel-sliced table scan (the classic pipeline leaf).
    Table(Arc<MorselSource>),
    /// A bounded [`ChunkQueue`] fed by upstream pipelines running
    /// concurrently; each popped batch is one unit of work, tagged with a
    /// deterministic sequence so merges stay order-independent.
    Queue(Arc<ChunkQueue>),
}

impl From<Arc<MorselSource>> for PipelineSource {
    fn from(source: Arc<MorselSource>) -> Self {
        PipelineSource::Table(source)
    }
}

impl From<Arc<ChunkQueue>> for PipelineSource {
    fn from(queue: Arc<ChunkQueue>) -> Self {
        PipelineSource::Queue(queue)
    }
}

/// One claimed unit of work: a table morsel or a queued chunk batch.
enum WorkUnit {
    Morsel(Morsel),
    Batch(QueueBatch),
}

impl PipelineSource {
    /// Column types the source feeds into the chain.
    pub fn base_types(&self) -> Vec<LogicalType> {
        match self {
            PipelineSource::Table(src) => src.output_types(),
            PipelineSource::Queue(queue) => queue.types().to_vec(),
        }
    }

    /// Claim the next unit of work; blocks on a queue source until a
    /// producer pushes or every producer closed.
    fn next_work(&self) -> Option<WorkUnit> {
        match self {
            PipelineSource::Table(src) => src.next_morsel().map(WorkUnit::Morsel),
            PipelineSource::Queue(queue) => queue.pop().map(WorkUnit::Batch),
        }
    }

    /// Stop dispensing work after a worker failed (and, for queues, fail
    /// the producers still pushing into the edge).
    pub fn abort(&self) {
        match self {
            PipelineSource::Table(src) => src.abort(),
            PipelineSource::Queue(queue) => queue.abort(),
        }
    }
}

/// One streaming operator of the per-worker chain.
#[derive(Clone)]
pub enum PipelineStep {
    /// WHERE: keep rows where the expression is TRUE.
    Filter(crate::expression::Expr),
    /// SELECT list: compute one expression per output column.
    Project(Vec<crate::expression::Expr>),
    /// Hash-join probe against a build side produced by an earlier
    /// pipeline of the DAG. Every worker probes the same `Arc<BuildSide>`;
    /// joined chunks stay in morsel order, so downstream merges remain
    /// deterministic.
    JoinProbe {
        build: Arc<BuildSide>,
        left_keys: Vec<crate::expression::Expr>,
        join_type: JoinType,
        right_types: Vec<LogicalType>,
    },
}

impl std::fmt::Debug for PipelineStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineStep::Filter(e) => f.debug_tuple("Filter").field(e).finish(),
            PipelineStep::Project(es) => f.debug_tuple("Project").field(es).finish(),
            PipelineStep::JoinProbe { build, left_keys, join_type, .. } => f
                .debug_struct("JoinProbe")
                .field("build_rows", &build.row_count())
                .field("left_keys", left_keys)
                .field("join_type", join_type)
                .finish_non_exhaustive(),
        }
    }
}

impl PipelineStep {
    /// Wrap `child` in this step's serial operator.
    pub fn instantiate(&self, child: OperatorBox) -> OperatorBox {
        match self {
            PipelineStep::Filter(pred) => Box::new(FilterOp::new(child, pred.clone())),
            PipelineStep::Project(exprs) => Box::new(ProjectionOp::new(child, exprs.clone())),
            PipelineStep::JoinProbe { build, left_keys, join_type, right_types } => {
                Box::new(JoinProbeOp::new(
                    child,
                    Arc::clone(build),
                    left_keys.clone(),
                    *join_type,
                    right_types.clone(),
                ))
            }
        }
    }

    /// Column types this step produces over `input`-typed chunks.
    pub fn output_types(&self, input: Vec<LogicalType>) -> Vec<LogicalType> {
        match self {
            PipelineStep::Filter(_) => input,
            PipelineStep::Project(exprs) => {
                exprs.iter().map(crate::expression::Expr::result_type).collect()
            }
            PipelineStep::JoinProbe { join_type, right_types, .. } => {
                let mut t = input;
                if join_type.emits_right_columns() {
                    t.extend(right_types.iter().copied());
                }
                t
            }
        }
    }
}

/// The pipeline breaker at the top of a parallel pipeline.
#[derive(Debug, Clone)]
pub enum PipelineSink {
    /// Materialize the chain's chunks in serial scan order.
    Collect,
    /// Ungrouped aggregation; one output row.
    SimpleAggregate(Vec<AggExpr>),
    /// GROUP BY aggregation; groups emitted in key order. With empty
    /// `aggs` this is exactly DISTINCT.
    HashAggregate { groups: Vec<crate::expression::Expr>, aggs: Vec<AggExpr> },
    /// ORDER BY; ties preserve scan order (stable like the serial sort).
    /// Runs larger than the pipeline's sort budget spill to disk in the
    /// serial external sort's run format, so arbitrarily large sorts
    /// parallelize. `limit` (as `(limit, offset)`) makes it a Top-N:
    /// workers keep a cap-bounded candidate buffer *charged to the buffer
    /// manager* (spilling it under §4 pressure, so no fusion size cap is
    /// needed) and the merge stops early.
    Sort { keys: Vec<SortKey>, limit: Option<(usize, usize)> },
    /// Hash-join build side: chunks plus precomputed key hashes, spliced
    /// into a shared [`BuildSide`] by the pipeline DAG.
    JoinBuild { keys: Vec<crate::expression::Expr> },
    /// Stream the chain's chunks into a [`ChunkQueue`] consumed by a
    /// concurrently-running downstream pipeline (a UNION ALL arm feeding a
    /// sink above the union). Workers push one batch per morsel, tagged
    /// [`compose_seq`]`(arm, morsel)`; the pipeline itself produces no
    /// output chunks. On completion the producer closes its queue slot; on
    /// failure it aborts the queue so the consumer winds down.
    Queue { queue: Arc<ChunkQueue>, arm: usize },
}

/// What a pipeline produces. Reservations keep materialized state charged
/// to the buffer manager until the output's consumer drops it (pipeline
/// teardown).
pub enum PipelineOutput {
    Chunks {
        chunks: Vec<DataChunk>,
        reservations: Vec<MemoryReservation>,
    },
    /// Build partials in scan order, ready for [`BuildSide::from_partials`].
    JoinBuild {
        partials: Vec<BuildPartial>,
        reservations: Vec<MemoryReservation>,
    },
}

impl PipelineOutput {
    /// Unwrap the chunk form (every sink but `JoinBuild`), dropping the
    /// accounting (tests and callers that re-account themselves).
    pub fn into_chunks(self) -> Vec<DataChunk> {
        match self {
            PipelineOutput::Chunks { chunks, .. } => chunks,
            PipelineOutput::JoinBuild { .. } => {
                panic!("join-build pipeline produces partials, not chunks")
            }
        }
    }
}

/// A sort row: key values, scan position for tie-breaking, payload.
type SortRow = (Vec<Value>, (usize, usize, usize), Vec<Value>);

fn sort_row_bytes(row: &SortRow) -> usize {
    row.0.iter().chain(&row.2).map(Value::size_bytes).sum()
}

/// Worker-local sort state: the in-memory run plus runs already spilled.
///
/// Like the serial [`ExternalSortOp`](crate::ops::ExternalSortOp), a
/// worker reserves its run budget against the buffer manager *upfront*
/// (halving the request under memory pressure — spilling more often
/// instead of failing, §4's disk-for-RAM trade) and spills whenever its
/// buffered rows reach that budget.
struct SortLocal {
    rows: Vec<SortRow>,
    bytes: usize,
    /// Spill threshold in buffered-row bytes.
    budget: usize,
    spills: Vec<SpillReader>,
    reservation: Option<MemoryReservation>,
}

impl SortLocal {
    fn order(rows: &mut [SortRow], keys: &[SortKey]) {
        rows.sort_by(|a, b| compare_keys(&a.0, &b.0, keys).then(a.1.cmp(&b.1)));
    }

    /// Sort the buffered run and write it to a spill file. Spilled rows use
    /// the serial external sort's run format — chunks of `key columns +
    /// payload` — extended with three position columns so the merge can
    /// tie-break on scan position.
    fn spill(&mut self, keys: &[SortKey], spill_types: &[LogicalType]) -> Result<()> {
        if self.rows.is_empty() {
            return Ok(());
        }
        Self::order(&mut self.rows, keys);
        let mut file = SpillFile::create()?;
        let mut encoded: Vec<Vec<Value>> = Vec::with_capacity(VECTOR_SIZE);
        for window in self.rows.chunks(VECTOR_SIZE) {
            encoded.clear();
            for (key, (seq, intra, row), payload) in window {
                let mut r = Vec::with_capacity(spill_types.len());
                r.extend(key.iter().cloned());
                r.push(Value::BigInt(*seq as i64));
                r.push(Value::BigInt(*intra as i64));
                r.push(Value::BigInt(*row as i64));
                r.extend(payload.iter().cloned());
                encoded.push(r);
            }
            file.write_chunk(&DataChunk::from_rows(spill_types, &encoded)?)?;
        }
        self.spills.push(file.finish()?);
        self.rows.clear();
        self.bytes = 0;
        Ok(())
    }

    /// Top-N bound: keep only the best `cap` rows (amortized — prunes once
    /// the buffer doubles past the cap).
    fn prune(&mut self, cap: usize, keys: &[SortKey]) {
        if self.rows.len() < cap.saturating_mul(2).max(cap + VECTOR_SIZE) {
            return;
        }
        Self::order(&mut self.rows, keys);
        self.rows.truncate(cap);
        self.bytes = self.rows.iter().map(sort_row_bytes).sum();
    }

    /// Charged Top-N mode: keep the worker's reservation equal to its
    /// buffered bytes (growing as candidates stage, shrinking when a prune
    /// discards losers). When the ledger refuses a grow — §4 pressure —
    /// the buffered candidates spill to disk like a full sort's run and
    /// their charge releases: the fused parallel Top-N therefore needs no
    /// row-count cap, arbitrarily large `limit + offset` stays bounded by
    /// the budget, trading disk for RAM instead of failing the query.
    fn sync_cap_charge(&mut self, keys: &[SortKey], spill_types: &[LogicalType]) -> Result<()> {
        if self.reservation.is_none() {
            return Ok(());
        }
        let held = self.reservation.as_ref().expect("checked").bytes();
        if self.bytes > held {
            let grew = self.reservation.as_mut().expect("checked").grow(self.bytes - held).is_ok();
            if !grew {
                self.spill(keys, spill_types)?;
                let res = self.reservation.as_mut().expect("checked");
                let stale = res.bytes();
                res.shrink(stale);
            }
        } else {
            self.reservation.as_mut().expect("checked").shrink(held - self.bytes);
        }
        Ok(())
    }
}

/// One sorted run feeding the merge: either a worker's in-memory leftover
/// or a spilled run streamed back chunk by chunk.
enum SortRun {
    Memory { rows: std::vec::IntoIter<SortRow>, reservation: Option<MemoryReservation> },
    Spill { reader: SpillReader, chunk: Option<DataChunk>, row: usize, nkeys: usize },
}

impl SortRun {
    fn next(&mut self) -> Result<Option<SortRow>> {
        match self {
            SortRun::Memory { rows, reservation } => {
                let next = rows.next();
                if next.is_none() {
                    // Run exhausted: release its buffered bytes promptly so
                    // they do not overlap with the remaining runs' memory.
                    *reservation = None;
                }
                Ok(next)
            }
            SortRun::Spill { reader, chunk, row, nkeys } => loop {
                if let Some(c) = chunk {
                    if *row < c.len() {
                        let values = c.row_values(*row);
                        *row += 1;
                        let key = values[..*nkeys].to_vec();
                        let pos = (
                            values[*nkeys].as_i64().unwrap_or(0) as usize,
                            values[*nkeys + 1].as_i64().unwrap_or(0) as usize,
                            values[*nkeys + 2].as_i64().unwrap_or(0) as usize,
                        );
                        let payload = values[*nkeys + 3..].to_vec();
                        return Ok(Some((key, pos, payload)));
                    }
                }
                *chunk = reader.next_chunk()?;
                *row = 0;
                if chunk.is_none() {
                    return Ok(None);
                }
            },
        }
    }
}

/// Worker-local partial results, tagged for deterministic merging.
/// Variant sizes differ wildly but only one exists per worker, so the
/// indirection boxing would add buys nothing.
#[allow(clippy::large_enum_variant)]
enum LocalState {
    /// Produced chunks plus the reservation charging them to the budget.
    Collect(Vec<((usize, usize), DataChunk)>, Option<MemoryReservation>),
    /// Aggregate partials plus the worker's buffer-manager reservation
    /// covering them (held until the merge step has consumed them).
    Agg(Vec<(usize, AggPartial)>, Option<MemoryReservation>),
    Sort(SortLocal),
    /// Build partials plus the reservation charging them.
    JoinBuild(Vec<(usize, usize, BuildPartial)>, Option<MemoryReservation>),
    /// Chunks of the current morsel, pushed as one queue batch at morsel
    /// end (nothing survives to the merge step).
    Queue(Vec<DataChunk>),
}

/// Partial aggregate state of one morsel. A `GroupTable` is an order of
/// magnitude bigger than a simple-aggregate row, but a query holds only
/// one partial per morsel — not worth a box per table.
#[allow(clippy::large_enum_variant)]
enum AggPartial {
    Simple(Vec<AggState>),
    /// Byte-keyed group table (see [`crate::rowkey`]); merged on encoded
    /// keys, emitted key-sorted.
    Hash(GroupTable),
}

/// Per-execution context shared by all workers of one pipeline run.
struct WorkerCtx {
    /// Bytes of buffered sort rows per worker before a run spills.
    sort_budget: usize,
    /// Row layout of a spilled sort run: keys + 3 position columns +
    /// payload (empty for non-sort sinks).
    spill_types: Vec<LogicalType>,
    /// Top-N bound (`limit + offset`): workers keep at most this many rows.
    sort_cap: Option<usize>,
}

/// A parallel pipeline instance, bound to one query's transaction.
pub struct ParallelPipeline {
    source: PipelineSource,
    txn: Arc<Transaction>,
    steps: Vec<PipelineStep>,
    sink: PipelineSink,
    buffers: Option<Arc<BufferManager>>,
    /// Total sort-run budget (split across workers); rows beyond it spill.
    sort_budget: usize,
    /// Result-edge streaming: when set, the merge/finalize step pushes its
    /// output chunks into this [`ChunkQueue`] (as arm `.1`, contiguous
    /// batch sequences) instead of materializing them in the
    /// [`PipelineOutput`] — a sort merge or aggregate emission then never
    /// holds the full result, and the queue's byte bound back-pressures
    /// the merge against a slow consumer.
    output_queue: Option<(Arc<ChunkQueue>, usize)>,
}

/// A sort pipeline caps its fleet so every worker contributes at least
/// this many morsels to its run: more workers mean more (smaller) runs,
/// and past this point the extra merge fan-in costs more than the extra
/// run-sort parallelism buys (each merge step compares every run head).
const MIN_SORT_MORSELS_PER_WORKER: usize = 8;

impl ParallelPipeline {
    pub fn new(
        source: impl Into<PipelineSource>,
        txn: Arc<Transaction>,
        steps: Vec<PipelineStep>,
        sink: PipelineSink,
    ) -> Self {
        ParallelPipeline {
            source: source.into(),
            txn,
            steps,
            sink,
            buffers: None,
            sort_budget: usize::MAX,
            output_queue: None,
        }
    }

    /// Stream the merge/finalize step's output chunks into `queue` as arm
    /// `arm` (one chunk per batch, contiguous sequences, each batch
    /// charged via [`ChunkQueue::reserve_batch`]) instead of returning
    /// them. The pipeline closes the arm on success and aborts the queue
    /// on failure, exactly like a [`PipelineSink::Queue`] producer. Not
    /// meaningful for [`PipelineSink::JoinBuild`] (which produces breaker
    /// state, not chunks) or [`PipelineSink::Queue`] (which already
    /// streams at worker granularity).
    pub fn with_output_queue(mut self, queue: Arc<ChunkQueue>, arm: usize) -> Self {
        self.output_queue = Some((queue, arm));
        self
    }

    /// Account sink state against a buffer manager (§4's hard memory
    /// limits apply to parallel pipeline state as they do to the serial
    /// operators): workers charge partial aggregates, buffered sort rows,
    /// collected chunks and join-build partials as they grow. Sorts react
    /// to pressure by spilling; everything else aborts with `OutOfMemory`
    /// instead of sailing past the budget.
    pub fn with_buffers(mut self, buffers: Option<Arc<BufferManager>>) -> Self {
        self.buffers = buffers;
        self
    }

    /// Total bytes of sort rows the pipeline may buffer in memory; beyond
    /// it, worker runs spill to disk (the serial external sort's budget
    /// knob, applied per worker).
    pub fn with_sort_budget(mut self, budget: usize) -> Self {
        self.sort_budget = budget.max(1 << 16);
        self
    }

    /// Column types the per-worker chain feeds into the sink.
    pub fn chain_types(&self) -> Vec<LogicalType> {
        let mut types = self.source.base_types();
        for step in &self.steps {
            types = step.output_types(types);
        }
        types
    }

    /// Column types of the pipeline's final output.
    pub fn output_types(&self) -> Vec<LogicalType> {
        sink_output_types(&self.sink, || self.chain_types())
    }

    /// Worker count for this pipeline: clamped to the morsel count (no
    /// point spawning a worker with nothing to claim), and further capped
    /// for sort sinks so a fleet never splits a modest scan into more runs
    /// than the merge fan-in can absorb.
    fn plan_threads(&self, threads: usize) -> usize {
        let threads = match &self.source {
            PipelineSource::Table(src) => threads.clamp(1, src.morsel_count().max(1)),
            PipelineSource::Queue(_) => threads.max(1),
        };
        match (&self.sink, &self.source) {
            (PipelineSink::Sort { .. }, PipelineSource::Table(src)) => {
                threads.min((src.morsel_count() / MIN_SORT_MORSELS_PER_WORKER).max(1))
            }
            (PipelineSink::Sort { .. }, PipelineSource::Queue(queue)) => {
                // Batches play the role of morsels; the planner declares
                // how many the producers will push.
                let cap = queue.expected_batches() / MIN_SORT_MORSELS_PER_WORKER;
                threads.min(cap.max(1))
            }
            _ => threads,
        }
    }

    /// Execute on (at most) `threads` workers — clamped to the source's
    /// morsel count, and for sort sinks capped so each worker contributes
    /// several morsels per run (merge fan-in costs more than tiny runs
    /// save).
    pub fn execute(&self, threads: usize) -> Result<PipelineOutput> {
        let result = self.execute_inner(threads);
        // A queue-sink pipeline participates in the edge's shutdown
        // protocol whether it succeeded or died; closing by arm finalizes
        // the per-arm batch count an ordered consumer relies on.
        if let PipelineSink::Queue { queue, arm } = &self.sink {
            match &result {
                Ok(_) => queue.close_arm(*arm),
                Err(_) => queue.abort(),
            }
        }
        // Same protocol for a merge-streamed result edge.
        if let Some((queue, arm)) = &self.output_queue {
            match &result {
                Ok(_) => queue.close_arm(*arm),
                Err(_) => queue.abort(),
            }
        }
        result
    }

    fn execute_inner(&self, threads: usize) -> Result<PipelineOutput> {
        let threads = self.plan_threads(threads);
        let ctx = self.worker_ctx(threads);
        let scheduler = TaskScheduler::new(threads);
        let locals = scheduler.run(|_| self.run_worker(&ctx))?;
        self.merge(locals)
    }

    fn worker_ctx(&self, threads: usize) -> WorkerCtx {
        let PipelineSink::Sort { keys, limit } = &self.sink else {
            return WorkerCtx { sort_budget: usize::MAX, spill_types: Vec::new(), sort_cap: None };
        };
        let mut spill_types: Vec<LogicalType> = keys.iter().map(|k| k.expr.result_type()).collect();
        spill_types.extend([LogicalType::BigInt; 3]);
        spill_types.extend(self.chain_types());
        // Explicit budget if one was set; otherwise a quarter of the
        // attached memory limit (the serial sort's convention); otherwise
        // unbounded (never spill).
        let total = if self.sort_budget != usize::MAX {
            self.sort_budget
        } else if let Some(b) = &self.buffers {
            b.memory_limit() / 4
        } else {
            usize::MAX
        };
        let per_worker =
            if total == usize::MAX { usize::MAX } else { (total / threads.max(1)).max(1 << 16) };
        WorkerCtx {
            sort_budget: per_worker,
            spill_types,
            sort_cap: limit.map(|(l, o)| l.saturating_add(o).max(1)),
        }
    }

    // ---- worker side ----

    fn run_worker(&self, ctx: &WorkerCtx) -> Result<LocalState> {
        let result = self.run_worker_inner(ctx);
        if result.is_err() {
            self.source.abort();
        }
        result
    }

    fn reserve(&self) -> Result<Option<MemoryReservation>> {
        Ok(match &self.buffers {
            Some(b) => Some(b.reserve(0)?),
            None => None,
        })
    }

    fn run_worker_inner(&self, ctx: &WorkerCtx) -> Result<LocalState> {
        let mut local = match &self.sink {
            PipelineSink::Collect => LocalState::Collect(Vec::new(), self.reserve()?),
            PipelineSink::SimpleAggregate(_) | PipelineSink::HashAggregate { .. } => {
                LocalState::Agg(Vec::new(), self.reserve()?)
            }
            PipelineSink::Sort { .. } => {
                // Top-N buffers charge their actual footprint as they grow
                // (spilling under pressure — see `sync_cap_charge`); full
                // sorts reserve their run budget upfront, halving under
                // pressure — each halving doubles how often the worker
                // spills instead of failing the query.
                let (reservation, budget) = if ctx.sort_cap.is_some() {
                    (self.reserve()?, usize::MAX)
                } else {
                    match (&self.buffers, ctx.sort_budget) {
                        (Some(buffers), mut want) if ctx.sort_budget != usize::MAX => loop {
                            match buffers.reserve(want) {
                                Ok(r) => break (Some(r), want),
                                Err(_) if want <= (1 << 16) => {
                                    // Even the floor was refused (sibling
                                    // sessions hold the pool): run at the
                                    // floor unaccounted — a bounded
                                    // exception, like the serial sort's —
                                    // rather than failing the query.
                                    break (None, 1 << 16);
                                }
                                Err(_) => want /= 2,
                            }
                        },
                        (_, budget) => (None, budget),
                    }
                };
                LocalState::Sort(SortLocal {
                    rows: Vec::new(),
                    bytes: 0,
                    budget,
                    spills: Vec::new(),
                    reservation,
                })
            }
            PipelineSink::JoinBuild { .. } => LocalState::JoinBuild(Vec::new(), self.reserve()?),
            PipelineSink::Queue { .. } => LocalState::Queue(Vec::new()),
        };
        // Group cardinality observed on this worker's previous morsel,
        // used to pre-size the next morsel's table.
        let mut group_hint = 0usize;
        // Hoisted off the per-batch path (queue batches arrive thousands
        // of times per query).
        let base_types = self.source.base_types();
        while let Some(work) = self.source.next_work() {
            // The batch's reservation (charging its bytes while queued)
            // lives until this work unit is fully consumed.
            let mut _batch_reservation: Option<MemoryReservation> = None;
            let (seq, mut op): (usize, OperatorBox) = match work {
                WorkUnit::Morsel(morsel) => {
                    let PipelineSource::Table(src) = &self.source else { unreachable!() };
                    (
                        morsel.seq,
                        Box::new(MorselScanOp::new(Arc::clone(src), Arc::clone(&self.txn), morsel)),
                    )
                }
                WorkUnit::Batch(batch) => {
                    let QueueBatch { seq, chunks, reservation } = batch;
                    _batch_reservation = reservation;
                    (seq, Box::new(ValuesOp::new(base_types.clone(), chunks)))
                }
            };
            for step in &self.steps {
                op = step.instantiate(op);
            }
            let mut agg_partial = match &self.sink {
                PipelineSink::SimpleAggregate(aggs) => {
                    Some(AggPartial::Simple(aggs.iter().map(new_state).collect()))
                }
                PipelineSink::HashAggregate { groups, aggs } => {
                    Some(AggPartial::Hash(GroupTable::with_capacity(groups, aggs, group_hint)))
                }
                _ => None,
            };
            let mut intra = 0usize;
            while let Some(chunk) = op.next_chunk()? {
                if chunk.is_empty() {
                    continue;
                }
                self.consume_chunk(ctx, &mut local, agg_partial.as_mut(), seq, intra, chunk)?;
                intra += 1;
            }
            if let (PipelineSink::Queue { queue, arm }, LocalState::Queue(pending)) =
                (&self.sink, &mut local)
            {
                // Flush this work unit's chunks as one batch, charged to
                // the budget while it waits in the queue. Ordered (result)
                // edges get a batch per work unit even when it produced
                // nothing — the empty batch is the sequence marker that
                // keeps the consumer's replay gap-free.
                if !pending.is_empty() || queue.is_ordered() {
                    let chunks = std::mem::take(pending);
                    queue.push_charged(self.buffers.as_ref(), compose_seq(*arm, seq), chunks)?;
                }
            }
            if let (Some(mut partial), LocalState::Agg(parts, reservation)) =
                (agg_partial, &mut local)
            {
                if let AggPartial::Hash(table) = &mut partial {
                    group_hint = table.len();
                    // Parked partials keep only groups + states; the
                    // chunk-sized scratch would otherwise accumulate once
                    // per morsel.
                    table.seal();
                }
                if let Some(res) = reservation {
                    // Charge the real partial footprint: key arena +
                    // buckets + states for group tables, state rows for
                    // ungrouped partials.
                    let bytes = match &partial {
                        AggPartial::Simple(states) => {
                            states.iter().map(AggState::size_bytes).sum::<usize>()
                        }
                        AggPartial::Hash(table) => table.memory_bytes(),
                    };
                    res.grow(bytes)?;
                }
                parts.push((seq, partial));
            }
        }
        if let LocalState::Sort(state) = &mut local {
            // Local run sort happens on the worker — this is the parallel
            // share of the O(n log n); the merge only interleaves runs.
            if let PipelineSink::Sort { keys, .. } = &self.sink {
                SortLocal::order(&mut state.rows, keys);
                if let Some(cap) = ctx.sort_cap {
                    // The final prune can discard up to ~cap rows (pruning
                    // is amortized at 2x); give their charge back before
                    // the merge phase instead of holding it to teardown.
                    state.rows.truncate(cap);
                    state.bytes = state.rows.iter().map(sort_row_bytes).sum();
                    state.sync_cap_charge(keys, &ctx.spill_types)?;
                }
            }
        }
        Ok(local)
    }

    fn consume_chunk(
        &self,
        ctx: &WorkerCtx,
        local: &mut LocalState,
        agg: Option<&mut AggPartial>,
        seq: usize,
        intra: usize,
        chunk: DataChunk,
    ) -> Result<()> {
        match (&self.sink, local) {
            (PipelineSink::Collect, LocalState::Collect(chunks, reservation)) => {
                if let Some(res) = reservation {
                    res.grow(chunk.size_bytes())?;
                }
                chunks.push(((seq, intra), chunk));
            }
            (PipelineSink::SimpleAggregate(aggs), LocalState::Agg(..)) => {
                let Some(AggPartial::Simple(states)) = agg else { unreachable!() };
                update_simple_states(aggs, states, &chunk)?;
            }
            (PipelineSink::HashAggregate { groups, aggs }, LocalState::Agg(..)) => {
                let Some(AggPartial::Hash(table)) = agg else { unreachable!() };
                update_group_table(groups, aggs, table, &chunk)?;
            }
            (PipelineSink::Sort { keys, .. }, LocalState::Sort(state)) => {
                let key_vectors =
                    keys.iter().map(|k| k.expr.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
                let mut chunk_bytes = 0usize;
                let mut staged: Vec<SortRow> = Vec::with_capacity(chunk.len());
                for row in 0..chunk.len() {
                    let key: Vec<Value> = key_vectors.iter().map(|v| v.get_value(row)).collect();
                    let payload = chunk.row_values(row);
                    let entry = (key, (seq, intra, row), payload);
                    chunk_bytes += sort_row_bytes(&entry);
                    staged.push(entry);
                }
                state.rows.extend(staged);
                state.bytes += chunk_bytes;
                match ctx.sort_cap {
                    Some(cap) => {
                        state.prune(cap, keys);
                        state.sync_cap_charge(keys, &ctx.spill_types)?;
                    }
                    None => {
                        if state.bytes >= state.budget {
                            state.spill(keys, &ctx.spill_types)?;
                        }
                    }
                }
            }
            (PipelineSink::JoinBuild { keys }, LocalState::JoinBuild(parts, reservation)) => {
                let partial = BuildPartial::compute(chunk, keys)?;
                if let Some(res) = reservation {
                    res.grow(partial.footprint_bytes())?;
                }
                parts.push((seq, intra, partial));
            }
            (PipelineSink::Queue { .. }, LocalState::Queue(pending)) => {
                // Batched per work unit; pushed at the end of the unit.
                pending.push(chunk);
            }
            _ => unreachable!("local state matches sink"),
        }
        Ok(())
    }

    // ---- merge/finalize side ----

    /// Forward one merged result chunk into the pipeline's output queue as
    /// a charged single-chunk batch with the next contiguous sequence.
    fn push_result_chunk(
        buffers: &Option<Arc<BufferManager>>,
        queue: &Arc<ChunkQueue>,
        arm: usize,
        seq: &mut usize,
        chunk: DataChunk,
    ) -> Result<()> {
        let composed = compose_seq(arm, *seq);
        *seq += 1;
        queue.push_charged(buffers.as_ref(), composed, vec![chunk])
    }

    fn merge(&self, locals: Vec<LocalState>) -> Result<PipelineOutput> {
        let output = self.merge_inner(locals)?;
        // Result-edge streaming for the sinks the specialized branches in
        // `merge_inner` did not already stream (simple aggregates, serial
        // collect fallbacks): forward the finished chunks into the queue
        // and release the merge-side reservations once everything is
        // queued (each batch now carries its own charge).
        match (&self.output_queue, output) {
            (None, output) => Ok(output),
            (Some(_), PipelineOutput::Chunks { chunks, .. }) if chunks.is_empty() => {
                Ok(PipelineOutput::Chunks { chunks: Vec::new(), reservations: Vec::new() })
            }
            (Some((queue, arm)), PipelineOutput::Chunks { chunks, reservations }) => {
                let mut seq = 0usize;
                for chunk in chunks {
                    Self::push_result_chunk(&self.buffers, queue, *arm, &mut seq, chunk)?;
                }
                drop(reservations);
                Ok(PipelineOutput::Chunks { chunks: Vec::new(), reservations: Vec::new() })
            }
            (Some(_), PipelineOutput::JoinBuild { .. }) => Err(EiderError::Internal(
                "join-build pipelines produce breaker state, not a result stream".into(),
            )),
        }
    }

    fn merge_inner(&self, locals: Vec<LocalState>) -> Result<PipelineOutput> {
        match &self.sink {
            PipelineSink::Collect => {
                let mut tagged: Vec<((usize, usize), DataChunk)> = Vec::new();
                let mut reservations = Vec::new();
                for l in locals {
                    match l {
                        LocalState::Collect(chunks, reservation) => {
                            tagged.extend(chunks);
                            reservations.extend(reservation);
                        }
                        _ => unreachable!(),
                    }
                }
                tagged.sort_by_key(|(pos, _)| *pos);
                Ok(PipelineOutput::Chunks {
                    chunks: tagged.into_iter().map(|(_, c)| c).collect(),
                    reservations,
                })
            }
            PipelineSink::SimpleAggregate(aggs) => {
                let (mut parts, _worker_reservations) = collect_agg_partials(locals);
                parts.sort_by_key(|(seq, _)| *seq);
                let mut states: Vec<AggState> = aggs.iter().map(new_state).collect();
                for (_, partial) in parts {
                    let AggPartial::Simple(part) = partial else { unreachable!() };
                    for (s, p) in states.iter_mut().zip(&part) {
                        s.merge(p)?;
                    }
                }
                let row: Vec<Value> =
                    states.iter().map(AggState::finalize).collect::<Result<_>>()?;
                let mut out = DataChunk::new(&self.output_types());
                out.append_row(&row)?;
                Ok(PipelineOutput::Chunks { chunks: vec![out], reservations: Vec::new() })
            }
            PipelineSink::HashAggregate { groups, aggs } => {
                let (mut parts, _worker_reservations) = collect_agg_partials(locals);
                parts.sort_by_key(|(seq, _)| *seq);
                let mut merge_reservation = match &self.buffers {
                    Some(b) => Some(b.reserve(0)?),
                    None => None,
                };
                // Merge per-morsel tables on encoded byte keys, in morsel
                // order — the merged states do not depend on which worker
                // claimed which morsel.
                let mut table = GroupTable::new(groups, aggs);
                for (_, partial) in parts {
                    let AggPartial::Hash(part) = partial else { unreachable!() };
                    table.merge_from(part)?;
                }
                if let Some(res) = &mut merge_reservation {
                    // Charge the merged table's real arena + bucket +
                    // state footprint.
                    res.grow(table.memory_bytes())?;
                }
                // Serial hash aggregation emits groups in first-seen
                // order, which is scan-dependent anyway; the parallel
                // merge emits in encoded-key (total) order so output is
                // identical for every worker count.
                let order = table.sorted_order();
                if let Some((queue, arm)) = &self.output_queue {
                    // Stream windows straight into the result edge: the
                    // merged table is the memory floor, the emitted chunks
                    // never pile up beside it. The table's reservation
                    // holds until the last window left it.
                    let mut seq = 0usize;
                    for window in order.chunks(VECTOR_SIZE) {
                        let chunk = table.emit(window, aggs)?;
                        Self::push_result_chunk(&self.buffers, queue, *arm, &mut seq, chunk)?;
                    }
                    drop(merge_reservation);
                    return Ok(PipelineOutput::Chunks {
                        chunks: Vec::new(),
                        reservations: Vec::new(),
                    });
                }
                let mut chunks = Vec::new();
                for window in order.chunks(VECTOR_SIZE) {
                    chunks.push(table.emit(window, aggs)?);
                }
                Ok(PipelineOutput::Chunks {
                    chunks,
                    reservations: merge_reservation.into_iter().collect(),
                })
            }
            PipelineSink::Sort { keys, limit } => {
                let nkeys = keys.len();
                let mut runs: Vec<SortRun> = Vec::new();
                for l in locals {
                    let LocalState::Sort(state) = l else { unreachable!() };
                    for reader in state.spills {
                        runs.push(SortRun::Spill { reader, chunk: None, row: 0, nkeys });
                    }
                    if !state.rows.is_empty() {
                        runs.push(SortRun::Memory {
                            rows: state.rows.into_iter(),
                            reservation: state.reservation,
                        });
                    }
                }
                let (take, skip) = match limit {
                    Some((l, o)) => (*l, *o),
                    None => (usize::MAX, 0),
                };
                let out_types = self.output_types();
                if let Some((queue, arm)) = &self.output_queue {
                    // The k-way merge feeds the result edge chunk by
                    // chunk: the sorted output is never materialized, and
                    // the queue's byte bound throttles the merge when the
                    // consumer lags (in-memory runs release their
                    // reservations as they drain; spilled runs stay on
                    // disk until pulled).
                    let mut seq = 0usize;
                    merge_sort_runs(runs, keys, &out_types, take, skip, &mut |chunk| {
                        Self::push_result_chunk(&self.buffers, queue, *arm, &mut seq, chunk)
                    })?;
                    return Ok(PipelineOutput::Chunks {
                        chunks: Vec::new(),
                        reservations: Vec::new(),
                    });
                }
                let mut chunks = Vec::new();
                merge_sort_runs(runs, keys, &out_types, take, skip, &mut |chunk| {
                    chunks.push(chunk);
                    Ok(())
                })?;
                Ok(PipelineOutput::Chunks { chunks, reservations: Vec::new() })
            }
            PipelineSink::JoinBuild { .. } => {
                let mut tagged: Vec<(usize, usize, BuildPartial)> = Vec::new();
                let mut reservations = Vec::new();
                for l in locals {
                    match l {
                        LocalState::JoinBuild(parts, reservation) => {
                            tagged.extend(parts);
                            reservations.extend(reservation);
                        }
                        _ => unreachable!(),
                    }
                }
                tagged.sort_by_key(|(seq, intra, _)| (*seq, *intra));
                Ok(PipelineOutput::JoinBuild {
                    partials: tagged.into_iter().map(|(_, _, p)| p).collect(),
                    reservations,
                })
            }
            PipelineSink::Queue { .. } => {
                // Everything streamed through the queue already; the node
                // itself has no output.
                Ok(PipelineOutput::Chunks { chunks: Vec::new(), reservations: Vec::new() })
            }
        }
    }
}

/// Output column types a sink produces over a chain with the given types
/// (lazily computed — aggregate sinks do not need them). Shared by
/// [`ParallelPipeline::output_types`] and the pipeline DAG's node typing.
pub fn sink_output_types(
    sink: &PipelineSink,
    chain_types: impl FnOnce() -> Vec<LogicalType>,
) -> Vec<LogicalType> {
    match sink {
        PipelineSink::Collect | PipelineSink::Sort { .. } | PipelineSink::JoinBuild { .. } => {
            chain_types()
        }
        // A queue sink emits into its queue, not out of the pipeline.
        PipelineSink::Queue { .. } => Vec::new(),
        PipelineSink::SimpleAggregate(aggs) => aggs.iter().map(AggExpr::result_type).collect(),
        PipelineSink::HashAggregate { groups, aggs } => {
            let mut t: Vec<LogicalType> =
                groups.iter().map(crate::expression::Expr::result_type).collect();
            t.extend(aggs.iter().map(AggExpr::result_type));
            t
        }
    }
}

fn new_state(agg: &AggExpr) -> AggState {
    AggState::new(
        agg.kind,
        agg.arg.as_ref().map(crate::expression::Expr::result_type),
        agg.distinct,
    )
}

/// Lexicographic total order over group-key rows. The merge itself now
/// orders on encoded byte keys; this stays as the reference comparator
/// the equivalence tests check that order against.
#[cfg_attr(not(test), allow(dead_code))]
fn cmp_value_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// One run's head row inside the merge heap. Ordered as a *min*-heap
/// entry: `BinaryHeap` pops its maximum, so the comparison is reversed
/// here — the heap's top is the smallest (key, scan position) pair.
struct HeapEntry<'a> {
    row: SortRow,
    run: usize,
    keys: &'a [SortKey],
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: smallest sorts to the heap's top.
        compare_keys(&other.row.0, &self.row.0, self.keys).then(other.row.1.cmp(&self.row.1))
    }
}

/// Streaming k-way merge of sorted runs (in-memory and spilled), skipping
/// `skip` rows and emitting at most `take` — each completed output chunk
/// is handed to `sink` as soon as it fills, so a caller that forwards
/// chunks into a bounded queue never holds the full sorted result. Ties
/// fall back to scan position, reproducing a stable serial sort — the
/// comparator is total, so the merged order does not depend on how rows
/// were distributed across runs. Run heads sit in a binary heap, so each
/// emitted row costs `O(log k)` comparisons instead of a scan over every
/// head — the difference between usable and pathological once spilling
/// yields dozens of runs.
fn merge_sort_runs(
    mut runs: Vec<SortRun>,
    keys: &[SortKey],
    out_types: &[LogicalType],
    take: usize,
    skip: usize,
    sink: &mut dyn FnMut(DataChunk) -> Result<()>,
) -> Result<()> {
    if take == 0 {
        return Ok(());
    }
    let mut out = DataChunk::new(out_types);
    let mut skipped = 0usize;
    let mut emitted = 0usize;
    let mut emit = |row: SortRow,
                    out: &mut DataChunk,
                    sink: &mut dyn FnMut(DataChunk) -> Result<()>|
     -> Result<bool> {
        if skipped < skip {
            skipped += 1;
            return Ok(emitted < take);
        }
        out.append_row(&row.2)?;
        emitted += 1;
        if out.len() >= VECTOR_SIZE {
            sink(std::mem::replace(out, DataChunk::new(out_types)))?;
        }
        Ok(emitted < take)
    };
    if runs.len() == 1 {
        // A single run (one worker, nothing spilled) is already in order:
        // stream it out without per-row comparisons.
        while let Some(row) = runs[0].next()? {
            if !emit(row, &mut out, sink)? {
                break;
            }
        }
    } else {
        let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
        for (i, run) in runs.iter_mut().enumerate() {
            if let Some(row) = run.next()? {
                heap.push(HeapEntry { row, run: i, keys });
            }
        }
        while let Some(HeapEntry { row, run, .. }) = heap.pop() {
            let more = emit(row, &mut out, sink)?;
            if let Some(next) = runs[run].next()? {
                heap.push(HeapEntry { row: next, run, keys });
            }
            if !more {
                break;
            }
        }
    }
    if !out.is_empty() {
        sink(out)?;
    }
    Ok(())
}

/// A [`PhysicalOperator`] facade over a parallel pipeline, so the physical
/// planner can splice parallel execution into an otherwise serial plan
/// (e.g. under a LIMIT, or as the probe input of a join). Executes eagerly
/// on the first `next_chunk` pull. Holds the output's memory reservations
/// until dropped.
pub struct ParallelPipelineOp {
    pipeline: ParallelPipeline,
    threads: usize,
    output: Option<std::vec::IntoIter<DataChunk>>,
    _reservations: Vec<MemoryReservation>,
}

impl ParallelPipelineOp {
    pub fn new(pipeline: ParallelPipeline, threads: usize) -> Self {
        ParallelPipelineOp { pipeline, threads, output: None, _reservations: Vec::new() }
    }
}

impl PhysicalOperator for ParallelPipelineOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.pipeline.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.output.is_none() {
            match self.pipeline.execute(self.threads)? {
                PipelineOutput::Chunks { chunks, reservations } => {
                    self.output = Some(chunks.into_iter());
                    self._reservations = reservations;
                }
                PipelineOutput::JoinBuild { .. } => {
                    return Err(EiderError::Internal(
                        "join-build pipelines are consumed by the pipeline DAG, not pulled".into(),
                    ))
                }
            }
        }
        Ok(self.output.as_mut().expect("executed").next())
    }
}

/// Split aggregate locals into partials plus the worker reservations that
/// keep them accounted; the caller holds the reservations until the merge
/// has consumed every partial.
fn collect_agg_partials(
    locals: Vec<LocalState>,
) -> (Vec<(usize, AggPartial)>, Vec<MemoryReservation>) {
    let mut partials = Vec::new();
    let mut reservations = Vec::new();
    for l in locals {
        match l {
            LocalState::Agg(parts, reservation) => {
                partials.extend(parts);
                reservations.extend(reservation);
            }
            _ => unreachable!(),
        }
    }
    (partials, reservations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggKind;
    use crate::expression::Expr;
    use crate::ops::{drain_rows, HashAggregateOp, SimpleAggregateOp, TableScanOp};
    use eider_storage::buffer::{BufferManager, BufferManagerConfig};
    use eider_txn::{CmpOp, DataTable, ScanOptions, TableFilter, TransactionManager};

    const ROWS: i32 = 40_000;

    /// Two-column table: (i, i % 7), scanned with a `< 30_000` filter
    /// pushed down and a residual pipeline filter on parity.
    fn fixture() -> (Arc<TransactionManager>, Arc<DataTable>) {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer, LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> =
            (0..ROWS).map(|i| vec![Value::Integer(i), Value::Integer(i % 7)]).collect();
        table
            .append_chunk(
                &setup,
                &DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows)
                    .unwrap(),
            )
            .unwrap();
        setup.commit().unwrap();
        (mgr, table)
    }

    fn scan_opts() -> ScanOptions {
        ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(30_000))],
            emit_row_ids: false,
        }
    }

    /// `col0 % 2 = 0` as a residual filter expression.
    fn parity_filter() -> Expr {
        Expr::Compare {
            op: CmpOp::Eq,
            left: Box::new(Expr::Arithmetic {
                op: crate::expression::ArithOp::Mod,
                left: Box::new(Expr::column(0, LogicalType::Integer)),
                right: Box::new(Expr::constant(Value::Integer(2))),
                ty: LogicalType::BigInt,
            }),
            right: Box::new(Expr::constant(Value::BigInt(0))),
        }
    }

    fn pipeline(
        table: &Arc<DataTable>,
        txn: &Arc<Transaction>,
        sink: PipelineSink,
    ) -> ParallelPipeline {
        let source =
            Arc::new(MorselSource::new(Arc::clone(table), txn, scan_opts(), VECTOR_SIZE * 2));
        ParallelPipeline::new(
            source,
            Arc::clone(txn),
            vec![PipelineStep::Filter(parity_filter())],
            sink,
        )
    }

    fn serial_chain(table: &Arc<DataTable>, txn: &Arc<Transaction>) -> OperatorBox {
        Box::new(FilterOp::new(
            Box::new(TableScanOp::new(Arc::clone(table), Arc::clone(txn), scan_opts())),
            parity_filter(),
        ))
    }

    fn rows_at(pipeline: &ParallelPipeline, threads: usize) -> Vec<Vec<Value>> {
        pipeline
            .execute(threads)
            .unwrap()
            .into_chunks()
            .iter()
            .flat_map(DataChunk::to_rows)
            .collect()
    }

    #[test]
    fn collect_matches_serial_scan_at_every_thread_count() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let serial = drain_rows(serial_chain(&table, &txn).as_mut()).unwrap();
        assert_eq!(serial.len(), 15_000);
        for threads in [1, 2, 3, 8] {
            let p = pipeline(&table, &txn, PipelineSink::Collect);
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn collect_charges_materialized_chunks_and_releases_on_drop() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let buffers = BufferManager::new(BufferManagerConfig {
            memory_limit: 64 << 20,
            memtest_allocations: false,
        });
        let p =
            pipeline(&table, &txn, PipelineSink::Collect).with_buffers(Some(Arc::clone(&buffers)));
        let output = p.execute(4).unwrap();
        assert!(buffers.used_memory() > 0, "collected chunks must be charged");
        drop(output);
        assert_eq!(buffers.used_memory(), 0, "released on teardown");
    }

    #[test]
    fn simple_aggregate_matches_serial_operator() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Min,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Avg,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut serial_op = SimpleAggregateOp::new(serial_chain(&table, &txn), aggs.clone());
        let serial = drain_rows(&mut serial_op).unwrap();
        for threads in [1, 2, 8] {
            let p = pipeline(&table, &txn, PipelineSink::SimpleAggregate(aggs.clone()));
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn hash_aggregate_matches_serial_operator_groupwise() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let groups = vec![Expr::column(1, LogicalType::Integer)];
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Count,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: true,
            },
        ];
        let mut serial_op =
            HashAggregateOp::new(serial_chain(&table, &txn), groups.clone(), aggs.clone(), None);
        let mut serial = drain_rows(&mut serial_op).unwrap();
        serial.sort_by(|a, b| cmp_value_rows(a, b));
        for threads in [1, 2, 8] {
            let p = pipeline(
                &table,
                &txn,
                PipelineSink::HashAggregate { groups: groups.clone(), aggs: aggs.clone() },
            );
            // Parallel output is already key-sorted.
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn distinct_as_empty_aggregate_dedups_key_sorted() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // DISTINCT over the 7-valued column = HashAggregate with no aggs.
        let groups = vec![Expr::column(1, LogicalType::Integer)];
        for threads in [1, 2, 8] {
            let p = pipeline(
                &table,
                &txn,
                PipelineSink::HashAggregate { groups: groups.clone(), aggs: Vec::new() },
            );
            let rows = rows_at(&p, threads);
            let expected: Vec<Vec<Value>> = (0..7).map(|i| vec![Value::Integer(i)]).collect();
            assert_eq!(rows, expected, "threads={threads}");
        }
    }

    #[test]
    fn sort_matches_serial_sort_including_ties() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // Sort on the 7-valued column: heavy ties exercise the positional
        // tie-break.
        let keys = vec![SortKey::desc(Expr::column(1, LogicalType::Integer))];
        let mut serial_op = crate::ops::ExternalSortOp::new(
            serial_chain(&table, &txn),
            keys.clone(),
            1 << 30,
            None,
            false,
        );
        let serial = drain_rows(&mut serial_op).unwrap();
        for threads in [1, 2, 8] {
            let p = pipeline(&table, &txn, PipelineSink::Sort { keys: keys.clone(), limit: None });
            assert_eq!(rows_at(&p, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn spilling_sort_matches_in_memory_sort() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let keys = vec![
            SortKey::desc(Expr::column(1, LogicalType::Integer)),
            SortKey::asc(Expr::column(0, LogicalType::Integer)),
        ];
        let reference = rows_at(
            &pipeline(&table, &txn, PipelineSink::Sort { keys: keys.clone(), limit: None }),
            4,
        );
        assert_eq!(reference.len(), 15_000);
        for threads in [1, 2, 3, 8] {
            // A budget far below the data size forces every worker to spill
            // multiple runs through the external-sort run format.
            let p = pipeline(&table, &txn, PipelineSink::Sort { keys: keys.clone(), limit: None })
                .with_sort_budget(1 << 16);
            assert_eq!(rows_at(&p, threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn sort_spills_under_memory_pressure_instead_of_failing() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let reference = rows_at(
            &pipeline(&table, &txn, PipelineSink::Sort { keys: keys.clone(), limit: None }),
            2,
        );
        // ~15k rows at ~100 B/row of Value representation far exceed a
        // 512 KiB budget: reservations fail mid-scan and workers must react
        // by spilling rather than erroring.
        let buffers = BufferManager::new(BufferManagerConfig {
            memory_limit: 512 << 10,
            memtest_allocations: false,
        });
        let p = pipeline(&table, &txn, PipelineSink::Sort { keys: keys.clone(), limit: None })
            .with_buffers(Some(Arc::clone(&buffers)));
        let rows = p.execute(4).unwrap().into_chunks();
        let rows: Vec<Vec<Value>> = rows.iter().flat_map(DataChunk::to_rows).collect();
        assert_eq!(rows, reference);
        assert_eq!(buffers.used_memory(), 0, "all sort reservations released");
    }

    #[test]
    fn topn_limit_matches_full_sort_prefix() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let keys = vec![
            SortKey::desc(Expr::column(1, LogicalType::Integer)),
            SortKey::asc(Expr::column(0, LogicalType::Integer)),
        ];
        let full = rows_at(
            &pipeline(&table, &txn, PipelineSink::Sort { keys: keys.clone(), limit: None }),
            4,
        );
        for threads in [1, 2, 8] {
            let p = pipeline(
                &table,
                &txn,
                PipelineSink::Sort { keys: keys.clone(), limit: Some((25, 10)) },
            );
            assert_eq!(rows_at(&p, threads), full[10..35].to_vec(), "threads={threads}");
        }
    }

    #[test]
    fn join_build_partials_splice_into_a_shared_build_side() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // Join on the unique column: a 1:1 join keeps the output linear.
        let build_keys = vec![Expr::column(0, LogicalType::Integer)];
        let probe_keys = vec![Expr::column(0, LogicalType::Integer)];

        let serial_join = || -> Vec<Vec<Value>> {
            let mut op = crate::ops::HashJoinOp::new(
                serial_chain(&table, &txn),
                serial_chain(&table, &txn),
                probe_keys.clone(),
                build_keys.clone(),
                crate::ops::JoinType::Inner,
                eider_coop::compression::CompressionLevel::None,
                None,
            )
            .unwrap();
            let mut rows = drain_rows(&mut op).unwrap();
            rows.sort_by(|a, b| cmp_value_rows(a, b));
            rows
        };
        let serial = serial_join();

        for threads in [1, 2, 8] {
            let p = pipeline(&table, &txn, PipelineSink::JoinBuild { keys: build_keys.clone() });
            let right_types = p.chain_types();
            let PipelineOutput::JoinBuild { partials, reservations } = p.execute(threads).unwrap()
            else {
                panic!("expected join-build output")
            };
            let build = Arc::new(
                BuildSide::from_partials(
                    partials,
                    eider_coop::compression::CompressionLevel::None,
                    None,
                )
                .unwrap(),
            );
            drop(reservations);
            let mut op = JoinProbeOp::new(
                serial_chain(&table, &txn),
                build,
                probe_keys.clone(),
                crate::ops::JoinType::Inner,
                right_types,
            );
            let mut rows = drain_rows(&mut op).unwrap();
            rows.sort_by(|a, b| cmp_value_rows(a, b));
            assert_eq!(rows.len(), serial.len(), "threads={threads}");
            assert_eq!(rows, serial, "threads={threads}");
        }
    }

    #[test]
    fn probe_step_joins_morsel_parallel_with_deterministic_order() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        // Build the 7-valued column's rows below 70 (10 build rows per key).
        let build_opts = ScanOptions {
            columns: vec![0, 1],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(70))],
            emit_row_ids: false,
        };
        let mut build =
            BuildSide::new(eider_coop::compression::CompressionLevel::None, None).unwrap();
        let build_key = vec![Expr::column(1, LogicalType::Integer)];
        let mut scan: OperatorBox =
            Box::new(TableScanOp::new(Arc::clone(&table), Arc::clone(&txn), build_opts));
        while let Some(chunk) = scan.next_chunk().unwrap() {
            build.append_chunk(chunk, &build_key).unwrap();
        }
        let build = Arc::new(build);
        let probe_step = PipelineStep::JoinProbe {
            build: Arc::clone(&build),
            left_keys: vec![Expr::column(1, LogicalType::Integer)],
            join_type: JoinType::Inner,
            right_types: vec![LogicalType::Integer, LogicalType::Integer],
        };
        // Serial reference: the same probe operator over the serial chain.
        let mut serial_op = probe_step.instantiate(serial_chain(&table, &txn));
        let serial = drain_rows(serial_op.as_mut()).unwrap();
        assert_eq!(serial.len(), 15_000 * 10);
        let source =
            Arc::new(MorselSource::new(Arc::clone(&table), &txn, scan_opts(), VECTOR_SIZE * 2));
        let p = ParallelPipeline::new(
            source,
            Arc::clone(&txn),
            vec![PipelineStep::Filter(parity_filter()), probe_step],
            PipelineSink::Collect,
        );
        assert_eq!(p.output_types().len(), 4);
        let reference = rows_at(&p, 1);
        assert_eq!(reference, serial, "single worker matches the serial probe");
        for threads in [2, 3, 8] {
            let source =
                Arc::new(MorselSource::new(Arc::clone(&table), &txn, scan_opts(), VECTOR_SIZE * 2));
            let p = ParallelPipeline::new(
                source,
                Arc::clone(&txn),
                vec![
                    PipelineStep::Filter(parity_filter()),
                    PipelineStep::JoinProbe {
                        build: Arc::clone(&build),
                        left_keys: vec![Expr::column(1, LogicalType::Integer)],
                        join_type: JoinType::Inner,
                        right_types: vec![LogicalType::Integer, LogicalType::Integer],
                    },
                ],
                PipelineSink::Collect,
            );
            assert_eq!(rows_at(&p, threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn projection_steps_compose() {
        let (mgr, table) = fixture();
        let txn = Arc::new(mgr.begin());
        let project = PipelineStep::Project(vec![Expr::Arithmetic {
            op: crate::expression::ArithOp::Add,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(1))),
            ty: LogicalType::BigInt,
        }]);
        let source =
            Arc::new(MorselSource::new(Arc::clone(&table), &txn, scan_opts(), VECTOR_SIZE));
        let p = ParallelPipeline::new(
            source,
            Arc::clone(&txn),
            vec![PipelineStep::Filter(parity_filter()), project.clone()],
            PipelineSink::Collect,
        );
        assert_eq!(p.output_types(), vec![LogicalType::BigInt]);
        let mut serial_op = project.instantiate(serial_chain(&table, &txn));
        let serial = drain_rows(serial_op.as_mut()).unwrap();
        assert_eq!(rows_at(&p, 4), serial);
    }
}
