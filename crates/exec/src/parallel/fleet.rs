//! The shared worker fleet: admission and fair-share partitioning across
//! concurrently-executing pipeline graphs.
//!
//! Through PR 5 every query sized its own fan-out as if it were alone on
//! the machine: N sessions each running a parallel query would together
//! spawn N × `worker_threads()` workers. The fleet makes the worker
//! budget a *database-wide* resource:
//!
//! * **admission** — a graph must hold a [`FleetLease`] to execute.
//!   Leases are granted up to a cap (default [`WorkerFleet::default_cap`];
//!   `PRAGMA admission_limit` overrides); past the cap, new queries
//!   *block at the gate* — cheaper and fairer than launching unboundedly
//!   many graphs that thrash each other's caches. The lease is acquired
//!   on the session's own thread *before* the graph's background
//!   scheduler spawns, so a blocked admission never holds engine threads
//!   hostage, and dropping a cursor mid-wait simply abandons the gate.
//! * **fair share** — each launch round of a graph's readiness scheduler
//!   asks the fleet for its slice: `total_threads / admitted_graphs`,
//!   then divided across the graph's own in-flight nodes (floored at one
//!   worker). Because the share is re-read *every round*, workers migrate
//!   between graphs at morsel-round granularity: when a sibling query
//!   finishes and releases its lease, the next round of every running
//!   graph immediately computes a larger share. (Workers never join a
//!   *currently running* pipeline mid-flight — reassignment happens at
//!   node-launch boundaries, the same granularity the single-graph
//!   scheduler already uses.)
//!
//! The fleet itself owns no threads: pipelines keep their scoped
//! fork-join workers ([`TaskScheduler`](crate::parallel::TaskScheduler)),
//! so worker lifetime stays bounded by query lifetime. What the fleet
//! owns is the *arithmetic* — how many workers each graph may spawn — and
//! the admission gate. The total is refreshed by the engine from the
//! cooperation policy (`PRAGMA threads` clamped by host CPU load), so §4
//! host feedback now divides across sessions instead of multiplying.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Database-wide worker budget and admission gate. Shared by every
/// session's queries via `Arc`.
#[derive(Debug)]
pub struct WorkerFleet {
    /// Total worker threads to divide across admitted graphs (refreshed
    /// from the cooperation policy before each parallel query).
    threads: AtomicUsize,
    /// Maximum concurrently admitted graphs; excess admissions block.
    cap: AtomicUsize,
    /// Count of currently admitted graphs, guarded for the gate.
    admitted: Mutex<usize>,
    gate: Condvar,
}

impl WorkerFleet {
    /// A fleet of `threads` workers with the default admission cap.
    pub fn new(threads: usize) -> Arc<Self> {
        Self::with_cap(threads, Self::default_cap(threads))
    }

    /// A fleet with an explicit admission cap (floored at one — a cap of
    /// zero would deadlock every query at the gate).
    pub fn with_cap(threads: usize, cap: usize) -> Arc<Self> {
        Arc::new(WorkerFleet {
            threads: AtomicUsize::new(threads.max(1)),
            cap: AtomicUsize::new(cap.max(1)),
            admitted: Mutex::new(0),
            gate: Condvar::new(),
        })
    }

    /// Default admission cap: generous enough that open-but-undrained
    /// streaming cursors (each holds its lease until drained or dropped)
    /// do not starve the gate, small enough to bound graph thrash.
    pub fn default_cap(threads: usize) -> usize {
        (threads * 2).max(8)
    }

    /// Total worker threads currently divided across admitted graphs.
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Refresh the worker total (PRAGMA threads, or the §4 CPU clamp).
    /// Running graphs pick the new total up at their next launch round.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    pub fn admission_cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// Change the admission cap (`PRAGMA admission_limit`). Raising it
    /// wakes queries blocked at the gate.
    pub fn set_admission_cap(&self, cap: usize) {
        self.cap.store(cap.max(1), Ordering::Relaxed);
        self.gate.notify_all();
    }

    /// Graphs currently holding a lease.
    pub fn active(&self) -> usize {
        *self.admitted.lock().expect("fleet gate")
    }

    /// Block until an admission slot is free, then take it. Call on the
    /// session thread, never from inside a running pipeline.
    pub fn admit(self: &Arc<Self>) -> FleetLease {
        let mut admitted = self.admitted.lock().expect("fleet gate");
        while *admitted >= self.admission_cap() {
            admitted = self.gate.wait(admitted).expect("fleet gate");
        }
        *admitted += 1;
        FleetLease { fleet: Arc::clone(self) }
    }

    /// Take a slot only if one is free right now.
    pub fn try_admit(self: &Arc<Self>) -> Option<FleetLease> {
        let mut admitted = self.admitted.lock().expect("fleet gate");
        if *admitted >= self.admission_cap() {
            return None;
        }
        *admitted += 1;
        Some(FleetLease { fleet: Arc::clone(self) })
    }

    /// Worker share for one graph launch round: the fleet divided evenly
    /// across admitted graphs, then across `nodes_in_flight` concurrent
    /// nodes of this graph, floored at one worker per node so progress
    /// never stalls (transient oversubscription over starvation).
    pub fn node_share(&self, nodes_in_flight: usize) -> usize {
        let per_graph = self.threads() / self.active().max(1);
        (per_graph / nodes_in_flight.max(1)).max(1)
    }

    fn release(&self) {
        let mut admitted = self.admitted.lock().expect("fleet gate");
        *admitted = admitted.saturating_sub(1);
        self.gate.notify_one();
    }
}

/// RAII admission slot: holding it entitles one graph to a fleet share;
/// dropping it re-opens the gate and (at the next launch round) grows the
/// shares of the graphs still running.
#[derive(Debug)]
pub struct FleetLease {
    fleet: Arc<WorkerFleet>,
}

impl FleetLease {
    pub fn fleet(&self) -> &Arc<WorkerFleet> {
        &self.fleet
    }
}

impl Drop for FleetLease {
    fn drop(&mut self) {
        self.fleet.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn share_divides_across_admitted_graphs_and_nodes() {
        let fleet = WorkerFleet::new(8);
        let a = fleet.admit();
        assert_eq!(fleet.node_share(1), 8, "alone: the whole fleet");
        assert_eq!(fleet.node_share(2), 4, "split across own nodes");
        let b = fleet.admit();
        assert_eq!(fleet.active(), 2);
        assert_eq!(fleet.node_share(1), 4, "two graphs: half each");
        assert_eq!(fleet.node_share(4), 1);
        drop(a);
        assert_eq!(fleet.node_share(1), 8, "released share returns to survivors");
        drop(b);
        assert_eq!(fleet.active(), 0);
    }

    #[test]
    fn share_floors_at_one_worker() {
        let fleet = WorkerFleet::new(2);
        let _leases: Vec<FleetLease> = (0..3).map(|_| fleet.admit()).collect();
        assert_eq!(fleet.node_share(5), 1, "oversubscribed but never zero");
        assert_eq!(WorkerFleet::new(0).threads(), 1, "threads floor");
    }

    #[test]
    fn admission_cap_blocks_until_a_lease_releases() {
        // Fixed interleaving for the admission handoff: the second graph
        // must observably wait at the gate and enter only once the first
        // lease drops.
        let fleet = WorkerFleet::with_cap(4, 1);
        let first = fleet.admit();
        assert!(fleet.try_admit().is_none(), "gate full");
        let (tx, rx) = mpsc::channel();
        let waiter = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                tx.send("at-gate").unwrap();
                let lease = fleet.admit();
                tx.send("admitted").unwrap();
                drop(lease);
            })
        };
        assert_eq!(rx.recv().unwrap(), "at-gate");
        // The waiter must still be blocked: the slot is ours.
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "second admission slipped past a full gate"
        );
        drop(first);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "admitted");
        waiter.join().unwrap();
        assert_eq!(fleet.active(), 0);
    }

    #[test]
    fn raising_the_cap_wakes_blocked_admissions() {
        let fleet = WorkerFleet::with_cap(4, 1);
        let _first = fleet.admit();
        let (tx, rx) = mpsc::channel();
        let waiter = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                let _lease = fleet.admit();
                tx.send(()).unwrap();
            })
        };
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        fleet.set_admission_cap(2);
        rx.recv_timeout(Duration::from_secs(5)).expect("cap raise admits the waiter");
        waiter.join().unwrap();
    }

    #[test]
    fn set_threads_changes_future_shares() {
        let fleet = WorkerFleet::new(4);
        let _lease = fleet.admit();
        assert_eq!(fleet.node_share(1), 4);
        fleet.set_threads(16);
        assert_eq!(fleet.node_share(1), 16, "running graphs see the new total next round");
    }
}
