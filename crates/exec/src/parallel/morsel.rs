//! Morsels: the unit of parallel scan work.
//!
//! A morsel is a contiguous slice of one *source partition* — a
//! vector-aligned row range inside a [`DataTable`] row group, a byte range
//! of a CSV file, or one Arrow record batch. The [`MorselSource`] fixes
//! the partition decomposition once (snapshotting a table's group sizes,
//! or asking a [`TableSource`] for its partitions), and dispenses morsels
//! through an atomic cursor: workers that finish early simply grab the
//! next morsel, so load balances without any up-front assignment (the
//! core idea of morsel-driven scheduling).

use crate::ops::PhysicalOperator;
use eider_etl::source::{SourcePartition, SourceReader, TableSource};
use eider_txn::{DataTable, ScanOptions, Transaction};
use eider_vector::{DataChunk, LogicalType, Result, VECTOR_SIZE};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Preferred morsel size: big enough to amortize dispatch, small enough
/// that a handful of morsels per worker keeps the fleet busy.
pub const MORSEL_ROWS: usize = 8 * VECTOR_SIZE;

/// One unit of scan work: units `[row_begin, row_end)` of `group`.
///
/// For a table scan the units are rows inside a row group; for an
/// external source they are whatever the source's partitions are measured
/// in (bytes, record batches) with `group` equal to the partition's
/// sequence number. Only the backend that produced a morsel interprets
/// the bounds — the dispenser treats them as opaque claim tickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the serial scan order; merges sort by this to make
    /// parallel output deterministic.
    pub seq: usize,
    pub group: usize,
    pub row_begin: usize,
    pub row_end: usize,
}

impl Morsel {
    pub fn rows(&self) -> usize {
        self.row_end - self.row_begin
    }
}

/// Slice per-group row counts into vector-aligned morsels of about
/// `morsel_rows` rows each. Pure; callers (notably the planner) can count
/// the work before committing to a parallel scan.
pub fn slice_morsels(group_sizes: &[usize], morsel_rows: usize) -> Vec<Morsel> {
    let step = morsel_rows.max(VECTOR_SIZE) / VECTOR_SIZE * VECTOR_SIZE;
    let mut morsels = Vec::new();
    let mut seq = 0;
    for (group, &len) in group_sizes.iter().enumerate() {
        let mut begin = 0;
        while begin < len {
            let end = (begin + step).min(len);
            morsels.push(Morsel { seq, group, row_begin: begin, row_end: end });
            seq += 1;
            begin = end;
        }
    }
    morsels
}

/// What a [`MorselSource`] actually scans: the engine's own versioned
/// tables, or any external [`TableSource`] (CSV byte ranges, Arrow record
/// batches). Workers never look inside — they claim morsels and build a
/// [`MorselScanOp`], which dispatches to the right reader.
enum ScanBackend {
    Table { table: Arc<DataTable>, opts: ScanOptions },
    External { source: Arc<dyn TableSource>, projection: Vec<usize> },
}

/// Shared dispenser of a scan's morsels.
pub struct MorselSource {
    backend: ScanBackend,
    morsels: Vec<Morsel>,
    cursor: AtomicUsize,
    /// Set by a failing worker so its peers stop claiming work instead of
    /// scanning the rest of the source before the error surfaces.
    aborted: AtomicBool,
}

impl std::fmt::Debug for MorselSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MorselSource")
            .field("morsels", &self.morsels.len())
            .field("dispensed", &self.cursor.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl MorselSource {
    /// Slice `table` into morsels of about `morsel_rows` rows (clamped to
    /// whole vectors). Records the scan's read predicates on `txn` once —
    /// the per-worker range cursors deliberately do not.
    ///
    /// Row groups whose zone maps exclude the pushed-down filters are
    /// dropped from the work list up front: on a selective scan workers
    /// never even claim morsels in pruned groups. (Sequence numbers keep
    /// their serial-scan positions, so merges stay deterministic.)
    pub fn new(
        table: Arc<DataTable>,
        txn: &Transaction,
        opts: ScanOptions,
        morsel_rows: usize,
    ) -> Self {
        let sizes = table.group_sizes();
        let mut morsels = slice_morsels(&sizes, morsel_rows);
        if !opts.filters.is_empty() {
            let prunable: Vec<bool> =
                (0..sizes.len()).map(|g| table.group_prunable(g, &opts.filters)).collect();
            morsels.retain(|m| !prunable[m.group]);
        }
        Self::from_morsels(table, txn, opts, morsels)
    }

    /// Build a table-backed source over pre-sliced morsels (see
    /// [`slice_morsels`]). Records the scan's read predicates on `txn`
    /// once.
    pub fn from_morsels(
        table: Arc<DataTable>,
        txn: &Transaction,
        opts: ScanOptions,
        morsels: Vec<Morsel>,
    ) -> Self {
        table.record_scan_read(txn, &opts);
        MorselSource {
            backend: ScanBackend::Table { table, opts },
            morsels,
            cursor: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
        }
    }

    /// Default-sized morsels ([`MORSEL_ROWS`]).
    pub fn with_default_morsels(
        table: Arc<DataTable>,
        txn: &Transaction,
        opts: ScanOptions,
    ) -> Self {
        Self::new(table, txn, opts, MORSEL_ROWS)
    }

    /// Build a dispenser over an external source's partitions (already
    /// pruned by the caller). Each partition becomes one morsel whose
    /// bounds carry the partition's source-defined units; `projection`
    /// lists full-schema column positions in emission order.
    pub fn external(
        source: Arc<dyn TableSource>,
        projection: Vec<usize>,
        partitions: Vec<SourcePartition>,
    ) -> Self {
        let morsels = partitions
            .into_iter()
            .map(|p| Morsel {
                seq: p.seq,
                group: p.seq,
                row_begin: p.begin as usize,
                row_end: p.end as usize,
            })
            .collect();
        MorselSource {
            backend: ScanBackend::External { source, projection },
            morsels,
            cursor: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
        }
    }

    /// Output chunk types: the scan's projected columns in emission order.
    pub fn output_types(&self) -> Vec<LogicalType> {
        match &self.backend {
            ScanBackend::Table { table, opts } => opts.output_types(table),
            ScanBackend::External { source, projection } => {
                let types = source.column_types();
                projection.iter().map(|&i| types[i]).collect()
            }
        }
    }

    pub fn morsel_count(&self) -> usize {
        self.morsels.len()
    }

    /// Total units covered — physical rows for a table scan (before
    /// visibility/filters), source-defined units (bytes, batches) for an
    /// external scan.
    pub fn total_rows(&self) -> usize {
        self.morsels.iter().map(Morsel::rows).sum()
    }

    /// Claim the next undispensed morsel; `None` once the scan is fully
    /// handed out or a worker has [aborted](MorselSource::abort) the
    /// pipeline. Safe to call from any number of workers concurrently.
    pub fn next_morsel(&self) -> Option<Morsel> {
        if self.aborted.load(Ordering::Relaxed) {
            return None;
        }
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.morsels.get(i).copied()
    }

    /// Stop dispensing: peers finish their current morsel and return,
    /// letting the failing worker's error surface promptly (the serial
    /// engine aborts at the first bad chunk; a fleet should not scan the
    /// rest of the source first).
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// Rewind the dispenser (tests; a query uses a source exactly once).
    pub fn reset(&self) {
        self.cursor.store(0, Ordering::Relaxed);
        self.aborted.store(false, Ordering::Relaxed);
    }
}

/// Per-morsel scan progress, matching the dispenser's backend.
enum ScanState {
    Table(eider_txn::table::TableScanState),
    /// The reader is opened lazily on the first `next_chunk` so that
    /// open errors (missing file, truncated footer) surface through the
    /// operator's fallible pull path instead of a panicking constructor.
    External {
        morsel: Morsel,
        reader: Option<Box<dyn SourceReader>>,
    },
}

/// A [`PhysicalOperator`] leaf that scans exactly one morsel. Workers
/// build one per claimed morsel and stack the pipeline's filter and
/// projection operators on top, so per-thread execution reuses the serial
/// operators unchanged.
pub struct MorselScanOp {
    source: Arc<MorselSource>,
    txn: Arc<Transaction>,
    state: ScanState,
    types: Vec<LogicalType>,
}

impl MorselScanOp {
    pub fn new(source: Arc<MorselSource>, txn: Arc<Transaction>, morsel: Morsel) -> Self {
        let types = source.output_types();
        let state = match &source.backend {
            ScanBackend::Table { table, .. } => ScanState::Table(table.begin_scan_range(
                morsel.group,
                morsel.row_begin,
                morsel.row_end,
            )),
            ScanBackend::External { .. } => ScanState::External { morsel, reader: None },
        };
        MorselScanOp { source, txn, state, types }
    }
}

impl PhysicalOperator for MorselScanOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        match (&self.source.backend, &mut self.state) {
            (ScanBackend::Table { table, opts }, ScanState::Table(state)) => {
                table.scan_next(&self.txn, opts, state)
            }
            (
                ScanBackend::External { source, projection },
                ScanState::External { morsel, reader },
            ) => {
                if reader.is_none() {
                    let part = SourcePartition {
                        seq: morsel.seq,
                        begin: morsel.row_begin as u64,
                        end: morsel.row_end as u64,
                    };
                    *reader = Some(source.open(&part, projection)?);
                }
                reader.as_mut().expect("just opened").next_chunk()
            }
            _ => unreachable!("scan state always matches its backend"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain_rows;
    use eider_txn::TransactionManager;
    use eider_vector::Value;

    fn table_with(n: i32) -> (Arc<TransactionManager>, Arc<DataTable>) {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer]);
        let setup = mgr.begin();
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
        table
            .append_chunk(&setup, &DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap())
            .unwrap();
        setup.commit().unwrap();
        (mgr, table)
    }

    #[test]
    fn morsels_tile_the_table_exactly() {
        let (mgr, table) = table_with(50_000);
        let txn = mgr.begin();
        let opts = ScanOptions { columns: vec![0], ..Default::default() };
        let src = MorselSource::new(table, &txn, opts, MORSEL_ROWS);
        assert_eq!(src.total_rows(), 50_000);
        assert_eq!(src.morsel_count(), 50_000usize.div_ceil(MORSEL_ROWS));
        // Sequential, contiguous, vector-aligned.
        let mut expected_begin = 0;
        for (i, m) in src.morsels.iter().enumerate() {
            assert_eq!(m.seq, i);
            assert_eq!(m.row_begin, expected_begin);
            assert_eq!(m.row_begin % VECTOR_SIZE, 0);
            expected_begin = m.row_end;
        }
    }

    #[test]
    fn dispenser_hands_each_morsel_out_once() {
        let (mgr, table) = table_with(100_000);
        let txn = mgr.begin();
        let opts = ScanOptions { columns: vec![0], ..Default::default() };
        let src = Arc::new(MorselSource::new(table, &txn, opts, VECTOR_SIZE));
        let taken: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let src = Arc::clone(&src);
                    s.spawn(move || {
                        let mut seqs = Vec::new();
                        while let Some(m) = src.next_morsel() {
                            seqs.push(m.seq);
                        }
                        seqs
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = taken.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..src.morsel_count()).collect::<Vec<_>>());
    }

    #[test]
    fn zone_maps_prune_morsels_before_dispensing() {
        use eider_txn::{CmpOp, TableFilter};
        // Two row groups of ascending values: group 0 covers
        // [0, ROW_GROUP_SIZE), group 1 the rest. A filter selecting only
        // the tail must drop every group-0 morsel from the work list.
        let n = (eider_txn::table::ROW_GROUP_SIZE + 30_000) as i32;
        let (mgr, table) = table_with(n);
        let txn = mgr.begin();
        let unfiltered = ScanOptions { columns: vec![0], ..Default::default() };
        let full =
            MorselSource::new(Arc::clone(&table), &txn, unfiltered, MORSEL_ROWS).morsel_count();
        let opts = ScanOptions {
            columns: vec![0],
            filters: vec![TableFilter::new(0, CmpOp::GtEq, Value::Integer(n - 1000))],
            ..Default::default()
        };
        let src = Arc::new(MorselSource::new(Arc::clone(&table), &txn, opts.clone(), MORSEL_ROWS));
        let group1_morsels = 30_000usize.div_ceil(MORSEL_ROWS);
        assert_eq!(
            src.morsel_count(),
            group1_morsels,
            "selective scan must only dispense group-1 morsels (full scan has {full})"
        );
        assert!(src.morsel_count() < full);
        // The pruned scan still returns exactly the qualifying rows.
        let txn = Arc::new(mgr.begin());
        let mut rows = Vec::new();
        while let Some(m) = src.next_morsel() {
            let mut op = MorselScanOp::new(Arc::clone(&src), Arc::clone(&txn), m);
            rows.extend(drain_rows(&mut op).unwrap());
        }
        assert_eq!(rows.len(), 1000);
    }

    #[test]
    fn abort_stops_dispensing() {
        let (mgr, table) = table_with(50_000);
        let txn = mgr.begin();
        let opts = ScanOptions { columns: vec![0], ..Default::default() };
        let src = MorselSource::new(table, &txn, opts, VECTOR_SIZE);
        assert!(src.next_morsel().is_some());
        src.abort();
        assert!(src.next_morsel().is_none(), "aborted source must stop dispensing");
        src.reset();
        assert_eq!(src.next_morsel().unwrap().seq, 0);
    }

    #[test]
    fn morsel_scans_union_to_full_scan() {
        let (mgr, table) = table_with(20_000);
        let txn = Arc::new(mgr.begin());
        let opts = ScanOptions { columns: vec![0], ..Default::default() };
        let src = Arc::new(MorselSource::new(Arc::clone(&table), &txn, opts.clone(), 4096));
        let mut rows = Vec::new();
        while let Some(m) = src.next_morsel() {
            let mut op = MorselScanOp::new(Arc::clone(&src), Arc::clone(&txn), m);
            rows.extend(drain_rows(&mut op).unwrap());
        }
        let serial: Vec<Vec<Value>> =
            table.scan_collect(&txn, &opts).unwrap().iter().flat_map(|c| c.to_rows()).collect();
        assert_eq!(rows, serial);
    }

    #[test]
    fn external_partitions_dispense_and_merge_deterministically() {
        use eider_etl::csv::{CsvReadOptions, CsvSource};
        use std::io::Write as _;
        let mut path = std::env::temp_dir();
        path.push(format!("eider_morsel_ext_{}.csv", std::process::id()));
        {
            let mut f = std::fs::File::create(&path).unwrap();
            writeln!(f, "id,name").unwrap();
            for i in 0..4000 {
                writeln!(f, "{i},row_{i}_padding_padding_padding").unwrap();
            }
        }
        let csv = Arc::new(CsvSource::open(&path, CsvReadOptions::default()).unwrap());
        let parts = csv.partitions(4).unwrap();
        assert!(parts.len() >= 2, "file is large enough to split");
        let src = Arc::new(MorselSource::external(
            Arc::clone(&csv) as Arc<dyn TableSource>,
            vec![0],
            parts,
        ));
        assert_eq!(src.output_types(), vec![LogicalType::BigInt]);
        let mgr = TransactionManager::new();
        let txn = Arc::new(mgr.begin());
        let mut by_seq = Vec::new();
        while let Some(m) = src.next_morsel() {
            let mut op = MorselScanOp::new(Arc::clone(&src), Arc::clone(&txn), m);
            by_seq.push((m.seq, drain_rows(&mut op).unwrap()));
        }
        by_seq.sort_by_key(|(seq, _)| *seq);
        let rows: Vec<Vec<Value>> = by_seq.into_iter().flat_map(|(_, r)| r).collect();
        assert_eq!(rows.len(), 4000);
        assert_eq!(rows[0], vec![Value::BigInt(0)]);
        assert_eq!(rows[3999], vec![Value::BigInt(3999)]);
        std::fs::remove_file(&path).unwrap();
    }
}
