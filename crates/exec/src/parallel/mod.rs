//! Morsel-driven parallel query execution as a pipeline DAG.
//!
//! The serial Vector Volcano engine pulls chunks through a single thread;
//! this module makes whole query shapes run on every core the cooperation
//! policy will give them, following the morsel-driven design of Leis et
//! al. (SIGMOD 2014) adapted to eider's chunk model:
//!
//! * a [`MorselSource`] slices a table scan into *morsels* — contiguous
//!   row ranges of one row group, vector-aligned — and hands them to
//!   whichever worker asks next (atomic work stealing, no
//!   pre-partitioning, so skew self-balances);
//! * a [`TaskScheduler`] fans a closure out over N scoped worker threads
//!   sharing the query's snapshot transaction;
//! * a [`ParallelPipeline`] describes one pipeline's per-morsel operator
//!   chain — filter, projection, and hash-join *probe* against a shared
//!   immutable build side, built from the same serial operators
//!   ([`FilterOp`](crate::ops::FilterOp),
//!   [`ProjectionOp`](crate::ops::ProjectionOp),
//!   [`JoinProbeOp`](crate::ops::JoinProbeOp)) — plus the
//!   pipeline-breaking sink at the top: collect, simple aggregate, hash
//!   aggregate (which with no aggregate functions is DISTINCT), sort
//!   (disk-spilling, optionally Top-N-bounded), or hash-join build — each
//!   with a worker-local state and an explicit merge/finalize step;
//! * a [`PipelineGraph`] connects pipelines into a **DAG** executed by a
//!   readiness scheduler — every node whose dependencies are satisfied
//!   runs concurrently on its own scoped thread with a share of the
//!   fleet — passing breaker state between them: a join's build pipeline
//!   produces an `Arc<BuildSide>` its probe pipeline shares across
//!   workers, sort runs spill to disk between production and merge, and
//!   UNION ALL concatenates sibling pipelines' outputs;
//! * a [`ChunkQueue`] is a bounded streaming edge between pipelines: the
//!   arms of a UNION ALL push per-morsel batches into it while the sink
//!   above the union (aggregate, sort, DISTINCT) consumes them
//!   morsel-parallel *at the same time* — no serial concatenation
//!   wrapper, no full materialization, deterministic via composed
//!   batch sequence numbers. In *ordered* mode the same queue is every
//!   graph's **result edge**: output nodes stream into it (worker-level
//!   for collects, merge-level for sorts/aggregates) and the
//!   [`PipelineGraphOp`] facade replays batches
//!   in sequence order to the pulling cursor, so a slow consumer
//!   throttles the workers through the queue's byte bound instead of the
//!   engine buffering the result.
//!
//! Worker count is decided per query by
//! [`ResourcePolicy::worker_threads`](eider_coop::policy::ResourcePolicy::worker_threads):
//! the configured thread cap (`PRAGMA threads`) dynamically clamped by the
//! host application's CPU load, preserving the paper's §4 resource-sharing
//! contract under parallel execution.
//!
//! Results are deterministic across worker counts: collected chunks are
//! re-ordered by morsel sequence number (so plain scans — and joined
//! chunks, which stay in probe-morsel order — match run to run), sorts
//! break ties by scan position (a total comparator, so the k-way merge is
//! independent of how rows landed in worker runs), and grouped aggregates
//! emit groups in key order. Memory is accounted against the
//! [`BufferManager`](eider_storage::buffer::BufferManager): aggregate
//! partials, buffered sort runs (released as they spill), collected
//! chunks and build sides all charge the §4 budget, and output
//! reservations release on pipeline teardown.

pub mod fleet;
pub mod graph;
pub mod morsel;
pub mod pipeline;
pub mod queue;
pub mod scheduler;

pub use fleet::{FleetLease, WorkerFleet};
pub use graph::{GraphLink, GraphNode, GraphStats, NodeId, PipelineGraph, PipelineGraphOp};
pub use morsel::{Morsel, MorselScanOp, MorselSource};
pub use pipeline::{
    ParallelPipeline, ParallelPipelineOp, PipelineOutput, PipelineSink, PipelineSource,
    PipelineStep,
};
pub use queue::{compose_seq, decompose_seq, ChunkQueue, QueueBatch};
pub use scheduler::TaskScheduler;
