//! Morsel-driven parallel query execution.
//!
//! The serial Vector Volcano engine pulls chunks through a single thread;
//! this module makes the scan-shaped core of a query run on every core the
//! cooperation policy will give it, following the morsel-driven design of
//! Leis et al. (SIGMOD 2014) adapted to eider's chunk model:
//!
//! * a [`MorselSource`] slices a table scan into
//!   *morsels* — contiguous row ranges of one row group, vector-aligned —
//!   and hands them to whichever worker asks next (atomic work stealing,
//!   no pre-partitioning, so skew self-balances);
//! * a [`TaskScheduler`] fans a closure out over
//!   N scoped worker threads sharing the query's snapshot transaction;
//! * a [`ParallelPipeline`] describes the
//!   per-morsel operator chain (filter/projection, built from the same
//!   [`FilterOp`](crate::ops::FilterOp)/[`ProjectionOp`](crate::ops::ProjectionOp)
//!   operators the serial engine uses) and the pipeline-breaking sink at
//!   the top: collect, simple aggregate, hash aggregate, sort, or
//!   hash-join build — each with a worker-local state and an explicit
//!   merge/finalize step.
//!
//! Worker count is decided per query by
//! [`ResourcePolicy::worker_threads`](eider_coop::policy::ResourcePolicy::worker_threads):
//! the configured thread cap (`PRAGMA threads`) dynamically clamped by the
//! host application's CPU load, preserving the paper's §4 resource-sharing
//! contract under parallel execution.
//!
//! Results are deterministic across worker counts: collected chunks are
//! re-ordered by morsel sequence number (so plain scans match the serial
//! engine row-for-row), sorts break ties by scan position (matching a
//! stable serial sort), and grouped aggregates emit groups in key order.

pub mod morsel;
pub mod pipeline;
pub mod scheduler;

pub use morsel::{Morsel, MorselScanOp, MorselSource};
pub use pipeline::{
    ParallelPipeline, ParallelPipelineOp, PipelineOutput, PipelineSink, PipelineStep,
};
pub use scheduler::TaskScheduler;
