//! Bounded chunk queues: streaming edges between pipelines of a DAG.
//!
//! A [`ChunkQueue`] connects *producer* pipelines (sink
//! [`PipelineSink::Queue`](crate::parallel::pipeline::PipelineSink)) to one
//! *consumer* pipeline (source
//! [`PipelineSource::Queue`](crate::parallel::pipeline::PipelineSource))
//! that runs **concurrently** with them under the graph's readiness
//! scheduler. Producer workers push one [`QueueBatch`] per morsel — the
//! chunks that morsel produced, tagged with a deterministic sequence
//! number — and consumer workers pop batches as their unit of work, so a
//! sink above a UNION ALL (aggregate, sort, DISTINCT) consumes prior
//! pipelines morsel-parallel instead of through a serial concatenation
//! wrapper.
//!
//! **Determinism.** Arrival order at the queue is racy, but every batch
//! carries a sequence composed from its producer's arm index and morsel
//! number ([`compose_seq`]). Consumer-side partial states are tagged with
//! that sequence and merged in sequence order, exactly like table-scan
//! morsels — so results stay bit-identical at every worker count.
//!
//! **Backpressure & §4 accounting.** The queue is bounded by buffered
//! *bytes*: producers block once `max_bytes` of chunks sit unconsumed
//! (always admitting at least one batch so a single oversized batch cannot
//! deadlock). Each batch travels with an optional
//! [`MemoryReservation`] charging its bytes to the buffer manager; the
//! reservation drops when the consumer finishes the batch, so concurrent
//! stages stay inside the memory budget.
//!
//! **Shutdown.** Producers [`close_producer`](ChunkQueue::close_producer)
//! (or, per arm, [`close_arm`](ChunkQueue::close_arm)) when their pipeline
//! completes; `pop` returns `None` once every producer closed and the
//! buffer drained. Any failing pipeline (either side)
//! [`abort`](ChunkQueue::abort)s the queue: blocked producers fail fast
//! with an error, blocked consumers wake and wind down, and the graph
//! surfaces the root cause.
//!
//! **Ordered mode (result edges).** A queue built
//! [`with_ordered`](ChunkQueue::with_ordered) is the *final* edge of a
//! graph: the cursor-facing side
//! ([`PipelineGraphOp`](crate::parallel::graph::PipelineGraphOp)) must
//! replay batches in composed-sequence order, not in arrival order. Two
//! extra guarantees make that possible without the consumer guessing:
//!
//! 1. producers push a batch for **every** work unit, even an empty one
//!    (sequence numbers per arm are gap-free), and
//! 2. the queue counts pushed batches per arm, so once an arm is closed
//!    ([`close_arm`](ChunkQueue::close_arm))
//!    [`arm_batches`](ChunkQueue::arm_batches) reports exactly how many
//!    batches that arm contributed — the consumer knows when to move on
//!    to the next arm instead of waiting forever for a sequence number
//!    that will never come.

use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

/// Error text of the secondary failure a pipeline reports when its queue
/// was aborted from the outside. One definition, shared with the graph
/// scheduler's root-cause error selection ([`super::graph`]) so the
/// classification cannot drift from the message.
pub(crate) const QUEUE_ABORT_MSG: &str = "pipeline chunk queue aborted";

/// Bits of a composed sequence reserved for the in-arm morsel number.
const ARM_SHIFT: u32 = 48;

/// Compose a deterministic batch sequence from a producer arm index and a
/// morsel sequence: arm-major, morsel-minor. Sorting consumer partials by
/// the composed value reproduces "arm 0's rows, then arm 1's" — the serial
/// UNION ALL order — regardless of queue arrival order.
pub fn compose_seq(arm: usize, morsel_seq: usize) -> usize {
    debug_assert!(arm < (1 << (usize::BITS - ARM_SHIFT - 1)), "arm index out of range");
    debug_assert!(morsel_seq < (1 << ARM_SHIFT), "morsel sequence out of range");
    (arm << ARM_SHIFT) | morsel_seq
}

/// Invert [`compose_seq`]: `(arm, morsel_seq)` of a composed sequence.
pub fn decompose_seq(seq: usize) -> (usize, usize) {
    (seq >> ARM_SHIFT, seq & ((1 << ARM_SHIFT) - 1))
}

/// Outcome of an ordering consumer's [`ChunkQueue::pop_ordered`].
pub enum OrderedPop {
    /// A batch was dequeued (any arm — the consumer reorders).
    Batch(QueueBatch),
    /// The watched arm has closed and the backlog is empty: all of its
    /// batches are already in the consumer's hands; advance the arm.
    ArmClosed,
    /// Every producer closed and the backlog drained — or the queue
    /// aborted; nothing further will arrive.
    Done,
}

/// One unit of queued work: the chunks one producer morsel emitted.
pub struct QueueBatch {
    /// Deterministic merge position (see [`compose_seq`]).
    pub seq: usize,
    pub chunks: Vec<DataChunk>,
    /// Charges the batch's bytes to the buffer manager while it sits in
    /// the queue and until the consumer finishes it.
    pub reservation: Option<MemoryReservation>,
}

impl QueueBatch {
    /// Total bytes of the batch's chunks.
    pub fn bytes(&self) -> usize {
        self.chunks.iter().map(DataChunk::size_bytes).sum()
    }
}

struct QueueState {
    batches: VecDeque<QueueBatch>,
    buffered_bytes: usize,
    open_producers: usize,
    aborted: bool,
    /// Bytes of batches admitted *without* a reservation under §4
    /// pressure (see [`ChunkQueue::reserve_batch`]); at most one such
    /// batch is in flight, so the untracked footprint stays bounded.
    untracked_bytes: usize,
    /// Per-arm batch counts, maintained only for ordered queues (indexed
    /// by the arm encoded in each batch's composed sequence).
    arm_pushed: Vec<usize>,
    /// Arms whose producer pipeline has closed; their `arm_pushed` count
    /// is final from that point on.
    arm_closed: Vec<bool>,
    /// Ordered queues: bytes pushed per arm and not yet *consumed* by the
    /// ordering consumer ([`ChunkQueue::batch_consumed`]) — pops into the
    /// consumer's reorder buffer do **not** decrement this, which is what
    /// lets the queue bound that buffer (see [`ChunkQueue::push`]).
    arm_outstanding: Vec<usize>,
    /// The arm the ordering consumer is currently replaying; its pushes
    /// are never arm-gated, so the replay always makes progress.
    active_arm: usize,
}

impl QueueState {
    fn arm_slot(&mut self, arm: usize) {
        if self.arm_pushed.len() <= arm {
            self.arm_pushed.resize(arm + 1, 0);
            self.arm_closed.resize(arm + 1, false);
            self.arm_outstanding.resize(arm + 1, 0);
        }
    }
}

/// A bounded multi-producer multi-consumer queue of chunk batches.
pub struct ChunkQueue {
    types: Vec<LogicalType>,
    max_bytes: usize,
    /// Upper bound on batches the producers will ever push (the planner
    /// knows their morsel counts); consumers size their fan-out from it.
    expected_batches: usize,
    /// Result-edge mode: producers push gap-free per-arm sequences (one
    /// batch per work unit, empty ones included) and the queue tracks
    /// per-arm batch counts so an ordering consumer can replay batches in
    /// composed-sequence order (see the module docs).
    ordered: bool,
    state: Mutex<QueueState>,
    /// Producers wait here for buffered bytes to drop below the bound.
    space: Condvar,
    /// Consumers wait here for batches (or for the last producer to close).
    items: Condvar,
    /// Total batches ever pushed (scheduler instrumentation: proves the
    /// edge streamed rather than materialized).
    pushed: AtomicUsize,
}

impl std::fmt::Debug for ChunkQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkQueue")
            .field("types", &self.types)
            .field("max_bytes", &self.max_bytes)
            .finish_non_exhaustive()
    }
}

impl ChunkQueue {
    /// A queue carrying `types`-shaped chunks from `producers` pipelines.
    /// `max_bytes` bounds the buffered backlog (floored at one vector's
    /// worth so tiny budgets cannot stall).
    pub fn new(types: Vec<LogicalType>, producers: usize, max_bytes: usize) -> Self {
        ChunkQueue {
            types,
            max_bytes: max_bytes.max(1 << 16),
            expected_batches: usize::MAX,
            ordered: false,
            state: Mutex::new(QueueState {
                batches: VecDeque::new(),
                buffered_bytes: 0,
                open_producers: producers,
                aborted: false,
                untracked_bytes: 0,
                arm_pushed: Vec::new(),
                arm_closed: Vec::new(),
                arm_outstanding: Vec::new(),
                active_arm: 0,
            }),
            space: Condvar::new(),
            items: Condvar::new(),
            pushed: AtomicUsize::new(0),
        }
    }

    /// Turn on ordered (result-edge) mode: producers commit to gap-free
    /// per-arm sequences — a batch per work unit, pushed even when the
    /// unit produced no chunks — and the queue counts batches per arm so
    /// [`ChunkQueue::arm_batches`] can tell an ordering consumer when an
    /// arm is exhausted.
    pub fn with_ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Whether this queue is a result edge requiring gap-free sequences.
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// Declare how many batches the producers will push at most (their
    /// total morsel count). Lets a sort consumer cap its worker fan-out
    /// the same way table-sourced sorts do — more workers mean more runs
    /// for the merge to absorb.
    pub fn with_expected_batches(mut self, batches: usize) -> Self {
        self.expected_batches = batches.max(1);
        self
    }

    /// Upper bound on batches this queue will carry (`usize::MAX` when
    /// the producers never declared one).
    pub fn expected_batches(&self) -> usize {
        self.expected_batches
    }

    /// Column types of every chunk flowing through the queue.
    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Batches pushed so far (instrumentation).
    pub fn pushed_batches(&self) -> usize {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Reserve budget for a batch about to be pushed, cooperating with the
    /// queue under §4 memory pressure: when the ledger cannot grant the
    /// bytes, wait for the consumer to drain the backlog (every pop
    /// releases an earlier batch's reservation) and retry. Only when the
    /// backlog is empty *and* no other unaccounted batch is in flight may
    /// the push proceed unaccounted (`None`) — the claim is taken under
    /// the queue lock, so concurrent producers cannot stack untracked
    /// batches; the worst-case untracked footprint is one batch,
    /// mirroring the serial operators' small unaccounted buffers.
    pub fn reserve_batch(
        &self,
        buffers: &Arc<BufferManager>,
        bytes: usize,
    ) -> Result<Option<MemoryReservation>> {
        loop {
            if let Ok(r) = buffers.reserve(bytes) {
                return Ok(Some(r));
            }
            let mut state = self.state.lock().expect("chunk queue poisoned");
            if state.aborted {
                return Err(EiderError::Internal(QUEUE_ABORT_MSG.into()));
            }
            if state.batches.is_empty() && state.untracked_bytes == 0 {
                // Claimed under the lock: the matching release happens
                // when the unaccounted batch is popped.
                state.untracked_bytes = bytes.max(1);
                return Ok(None);
            }
            // A pop will free space (ledger bytes or the untracked slot)
            // shortly; park until it does.
            drop(self.space.wait(state).expect("chunk queue poisoned"));
        }
    }

    /// Reserve-and-push in one step: the standard charged producer push
    /// shared by every producer kind — worker-level queue sinks,
    /// merge-streamed result edges, serially-drained output nodes — so
    /// the reservation and gap-free-sequence invariants the ordered
    /// consumer relies on cannot drift between them. Non-empty batches
    /// travel with a reservation from [`ChunkQueue::reserve_batch`] when
    /// `buffers` is attached (degrading per its §4 rules); empty
    /// sequence-marker batches push uncharged.
    pub fn push_charged(
        &self,
        buffers: Option<&Arc<BufferManager>>,
        seq: usize,
        chunks: Vec<DataChunk>,
    ) -> Result<()> {
        let reservation = match buffers {
            Some(b) if !chunks.is_empty() => {
                self.reserve_batch(b, chunks.iter().map(DataChunk::size_bytes).sum())?
            }
            _ => None,
        };
        self.push(QueueBatch { seq, chunks, reservation })
    }

    /// Block until the queue has space, then enqueue `batch`. Fails once
    /// the queue is aborted so a producer stops scanning promptly after
    /// its consumer (or a sibling) died.
    ///
    /// **Ordered queues gate per arm too:** an arm the consumer is *not*
    /// currently replaying blocks once `max_bytes` of its pushes sit
    /// unconsumed ([`ChunkQueue::batch_consumed`]) — popped-but-held
    /// batches count, which is what bounds the consumer's reorder buffer
    /// to ~`max_bytes` per arm instead of letting a fast later arm pile
    /// its whole result there. The active arm is never arm-gated, so the
    /// in-order replay always makes progress (no circular wait: active
    /// producers depend only on the consumer, which depends on no one).
    pub fn push(&self, batch: QueueBatch) -> Result<()> {
        let arm = self.ordered.then(|| decompose_seq(batch.seq).0);
        let mut state = self.state.lock().expect("chunk queue poisoned");
        loop {
            if state.aborted {
                return Err(EiderError::Internal(QUEUE_ABORT_MSG.into()));
            }
            // A non-active arm past its unconsumed-bytes quota waits for
            // the consumer to reach it (first batch always admitted, so a
            // single oversized batch cannot deadlock the arm).
            let arm_gated = match arm {
                Some(a) => {
                    a != state.active_arm
                        && state.arm_outstanding.get(a).is_some_and(|&b| b >= self.max_bytes)
                }
                None => false,
            };
            // Admit when under the bound, or when empty: a single batch
            // larger than the whole bound must still make progress.
            if !arm_gated && (state.buffered_bytes < self.max_bytes || state.batches.is_empty()) {
                break;
            }
            state = self.space.wait(state).expect("chunk queue poisoned");
        }
        if let Some(arm) = arm {
            state.arm_slot(arm);
            state.arm_pushed[arm] += 1;
            state.arm_outstanding[arm] += batch.bytes();
        }
        state.buffered_bytes += batch.bytes();
        state.batches.push_back(batch);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.items.notify_one();
        Ok(())
    }

    /// Ordering-consumer side: declare that replay has advanced to `arm`
    /// (earlier arms are exhausted). Wakes producers of the new active arm
    /// that were parked behind the per-arm quota.
    pub fn set_active_arm(&self, arm: usize) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.active_arm = arm;
        self.space.notify_all();
    }

    /// Ordering-consumer side: `bytes` of `arm`'s pushes have been
    /// activated for emission (left the reorder buffer), freeing that much
    /// of the arm's quota.
    pub fn batch_consumed(&self, arm: usize, bytes: usize) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.arm_slot(arm);
        state.arm_outstanding[arm] = state.arm_outstanding[arm].saturating_sub(bytes);
        self.space.notify_all();
    }

    /// Like [`ChunkQueue::pop`], but for the *ordering* consumer: also
    /// returns (without a batch) as soon as `waiting_arm` has closed and
    /// the backlog is empty. The consumer needs that extra wake-up: once
    /// the arm it is replaying closes, every one of its batches is in the
    /// consumer's reorder buffer, and the consumer must advance the
    /// active arm — which a plain `pop` would sleep through while a
    /// *later* arm's producers sit parked behind the per-arm quota
    /// (neither side could ever wake the other).
    pub fn pop_ordered(&self, waiting_arm: usize) -> OrderedPop {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        loop {
            if state.aborted {
                return OrderedPop::Done;
            }
            if let Some(batch) = state.batches.pop_front() {
                state.buffered_bytes -= batch.bytes();
                if batch.reservation.is_none() && !batch.chunks.is_empty() {
                    state.untracked_bytes = 0;
                }
                self.space.notify_all();
                return OrderedPop::Batch(batch);
            }
            if state.open_producers == 0 {
                return OrderedPop::Done;
            }
            if state.arm_closed.get(waiting_arm) == Some(&true) {
                return OrderedPop::ArmClosed;
            }
            state = self.items.wait(state).expect("chunk queue poisoned");
        }
    }

    /// Block until a batch is available and dequeue it. Returns `None`
    /// once every producer has closed and the backlog drained, or as soon
    /// as the queue is aborted (the consumer's output is discarded on the
    /// error path, so winding down early is safe).
    pub fn pop(&self) -> Option<QueueBatch> {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        loop {
            if state.aborted {
                return None;
            }
            if let Some(batch) = state.batches.pop_front() {
                state.buffered_bytes -= batch.bytes();
                if batch.reservation.is_none() && !batch.chunks.is_empty() {
                    // Release the unaccounted-batch slot claimed in
                    // `reserve_batch` (no-op for unbuffered queues). Empty
                    // sequence-marker batches never claimed the slot and
                    // must not free it on some other batch's behalf.
                    state.untracked_bytes = 0;
                }
                // All waiters: byte-bound blockers in `push` and producers
                // parked in `reserve_batch` both watch this condvar.
                self.space.notify_all();
                return Some(batch);
            }
            if state.open_producers == 0 {
                return None;
            }
            state = self.items.wait(state).expect("chunk queue poisoned");
        }
    }

    /// Mark one producer pipeline as complete; once all have closed,
    /// consumers drain the backlog and see end-of-stream.
    pub fn close_producer(&self) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.open_producers = state.open_producers.saturating_sub(1);
        if state.open_producers == 0 {
            self.items.notify_all();
        }
    }

    /// [`close_producer`](ChunkQueue::close_producer), additionally
    /// finalizing `arm`'s batch count: [`ChunkQueue::arm_batches`] reports
    /// `Some` for the arm from now on. Every push of the arm happens
    /// before its close (the pipeline closes only after all its workers
    /// joined), so the count is exact, never provisional.
    pub fn close_arm(&self, arm: usize) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.arm_slot(arm);
        state.arm_closed[arm] = true;
        state.open_producers = state.open_producers.saturating_sub(1);
        // Always wake consumers: an ordering consumer parked in
        // `pop_ordered` must observe *this arm's* closure even while
        // other producers stay open (it may need to advance the active
        // arm before those producers can push anything).
        self.items.notify_all();
    }

    /// Total batches arm `arm` pushed, once it closed (`None` while the
    /// arm is still producing). On an ordered queue this equals the arm's
    /// gap-free sequence length, so a consumer that has replayed this many
    /// batches of the arm knows it is exhausted.
    pub fn arm_batches(&self, arm: usize) -> Option<usize> {
        let state = self.state.lock().expect("chunk queue poisoned");
        match state.arm_closed.get(arm) {
            Some(true) => Some(state.arm_pushed[arm]),
            _ => None,
        }
    }

    /// Fail the edge: wake every blocked producer (their next `push`
    /// errors) and consumer (`pop` returns `None`). Idempotent.
    pub fn abort(&self) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.aborted = true;
        state.batches.clear();
        state.buffered_bytes = 0;
        state.untracked_bytes = 0;
        state.arm_outstanding.iter_mut().for_each(|b| *b = 0);
        self.space.notify_all();
        self.items.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::Value;
    use std::sync::Arc;

    fn chunk(n: i32) -> DataChunk {
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
        DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap()
    }

    fn batch(seq: usize, n: i32) -> QueueBatch {
        QueueBatch { seq, chunks: vec![chunk(n)], reservation: None }
    }

    #[test]
    fn compose_seq_is_arm_major() {
        assert!(compose_seq(0, 5) < compose_seq(1, 0));
        assert!(compose_seq(1, 0) < compose_seq(1, 1));
        assert!(compose_seq(1, usize::MAX >> 20) < compose_seq(2, 0));
    }

    #[test]
    fn drains_in_fifo_order_then_ends_after_close() {
        let q = ChunkQueue::new(vec![LogicalType::Integer], 1, usize::MAX);
        q.push(batch(3, 4)).unwrap();
        q.push(batch(1, 2)).unwrap();
        q.close_producer();
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.pop().is_none());
        assert_eq!(q.pushed_batches(), 2);
    }

    #[test]
    fn bounded_push_blocks_until_consumer_drains() {
        // Bound small enough that the second push must wait for a pop.
        let q = Arc::new(ChunkQueue::new(vec![LogicalType::Integer], 1, 1 << 16));
        q.push(QueueBatch {
            seq: 0,
            chunks: (0..20).map(|_| chunk(2048)).collect(),
            reservation: None,
        })
        .unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(batch(1, 8)).unwrap();
                q.close_producer();
            })
        };
        // The consumer side frees space; the producer finishes.
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.pop().is_none());
        producer.join().unwrap();
    }

    #[test]
    fn ordered_queue_tracks_per_arm_batch_counts() {
        let q = ChunkQueue::new(vec![LogicalType::Integer], 2, usize::MAX).with_ordered();
        assert!(q.is_ordered());
        q.push(batch(compose_seq(0, 0), 4)).unwrap();
        q.push(batch(compose_seq(1, 0), 4)).unwrap();
        q.push(batch(compose_seq(0, 1), 4)).unwrap();
        assert_eq!(q.arm_batches(0), None, "open arm: count not final yet");
        q.close_arm(0);
        assert_eq!(q.arm_batches(0), Some(2));
        assert_eq!(q.arm_batches(1), None);
        q.close_arm(1);
        assert_eq!(q.arm_batches(1), Some(1));
        assert_eq!(q.arm_batches(7), None, "arm that never pushed nor closed");
        // Both arms closed: the backlog drains, then end-of-stream.
        for _ in 0..3 {
            assert!(q.pop().is_some());
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn ordered_queue_gates_non_active_arms_by_unconsumed_bytes() {
        // Quota = max_bytes (floored at 64 KiB). Arm 1 is not active, so
        // once its unconsumed pushes exceed the quota, further pushes
        // must park until the consumer activates its earlier batches.
        let q = Arc::new(ChunkQueue::new(vec![LogicalType::Integer], 2, 1 << 16).with_ordered());
        q.push(QueueBatch {
            seq: compose_seq(1, 0),
            chunks: vec![chunk(40_000)], // ~160 KiB: first batch always admitted
            reservation: None,
        })
        .unwrap();
        // Popping into the reorder buffer does NOT free the arm's quota.
        let held = q.pop().unwrap();
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(batch(compose_seq(1, 1), 4)).unwrap())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!blocked.is_finished(), "non-active arm must wait behind its quota");
        // The active arm is never arm-gated.
        q.push(batch(compose_seq(0, 0), 4)).unwrap();
        // Activating the held batch frees the quota and unparks arm 1.
        q.batch_consumed(1, held.bytes());
        blocked.join().unwrap();
        assert_eq!(q.pushed_batches(), 3);
    }

    #[test]
    fn pop_ordered_wakes_on_watched_arm_close_while_later_arm_is_gated() {
        // The deadlock interleaving the ordering consumer must survive:
        // arm 1 parked behind its quota, arm 0 closing with nothing left —
        // a plain `pop` would sleep forever (arm 1 cannot push until the
        // consumer advances the active arm, which it cannot do while
        // blocked). `pop_ordered` must return `ArmClosed` instead.
        let q = Arc::new(ChunkQueue::new(vec![LogicalType::Integer], 2, 1 << 16).with_ordered());
        q.push(QueueBatch {
            seq: compose_seq(1, 0),
            chunks: vec![chunk(40_000)], // exhausts arm 1's quota
            reservation: None,
        })
        .unwrap();
        let OrderedPop::Batch(held) = q.pop_ordered(0) else { panic!("expected the batch") };
        let gated = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(batch(compose_seq(1, 1), 4)).unwrap())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!gated.is_finished(), "arm 1 must park behind its quota");
        q.close_arm(0);
        assert!(
            matches!(q.pop_ordered(0), OrderedPop::ArmClosed),
            "watched-arm closure must wake the consumer, not strand it"
        );
        // The consumer advances: activate the held batch, move the active
        // arm — the gated producer unparks.
        q.batch_consumed(1, held.bytes());
        q.set_active_arm(1);
        gated.join().unwrap();
        q.close_arm(1);
        let OrderedPop::Batch(b) = q.pop_ordered(1) else { panic!("arm 1's second batch") };
        assert_eq!(b.seq, compose_seq(1, 1));
        assert!(matches!(q.pop_ordered(1), OrderedPop::Done));
    }

    #[test]
    fn decompose_inverts_compose() {
        for (arm, seq) in [(0, 0), (3, 17), (255, (1 << 40) + 5)] {
            assert_eq!(decompose_seq(compose_seq(arm, seq)), (arm, seq));
        }
    }

    #[test]
    fn abort_wakes_producers_with_error_and_consumers_with_none() {
        let q = Arc::new(ChunkQueue::new(vec![LogicalType::Integer], 2, usize::MAX));
        q.push(batch(0, 4)).unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // First pop gets the batch; the second blocks until abort.
                let first = q.pop();
                let second = q.pop();
                (first.is_some(), second.is_none())
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.abort();
        let (first, second) = popper.join().unwrap();
        assert!(first && second);
        assert!(q.push(batch(1, 4)).is_err(), "push after abort must fail");
    }
}
