//! Bounded chunk queues: streaming edges between pipelines of a DAG.
//!
//! A [`ChunkQueue`] connects *producer* pipelines (sink
//! [`PipelineSink::Queue`](crate::parallel::pipeline::PipelineSink)) to one
//! *consumer* pipeline (source
//! [`PipelineSource::Queue`](crate::parallel::pipeline::PipelineSource))
//! that runs **concurrently** with them under the graph's readiness
//! scheduler. Producer workers push one [`QueueBatch`] per morsel — the
//! chunks that morsel produced, tagged with a deterministic sequence
//! number — and consumer workers pop batches as their unit of work, so a
//! sink above a UNION ALL (aggregate, sort, DISTINCT) consumes prior
//! pipelines morsel-parallel instead of through a serial concatenation
//! wrapper.
//!
//! **Determinism.** Arrival order at the queue is racy, but every batch
//! carries a sequence composed from its producer's arm index and morsel
//! number ([`compose_seq`]). Consumer-side partial states are tagged with
//! that sequence and merged in sequence order, exactly like table-scan
//! morsels — so results stay bit-identical at every worker count.
//!
//! **Backpressure & §4 accounting.** The queue is bounded by buffered
//! *bytes*: producers block once `max_bytes` of chunks sit unconsumed
//! (always admitting at least one batch so a single oversized batch cannot
//! deadlock). Each batch travels with an optional
//! [`MemoryReservation`] charging its bytes to the buffer manager; the
//! reservation drops when the consumer finishes the batch, so concurrent
//! stages stay inside the memory budget.
//!
//! **Shutdown.** Producers [`close_producer`](ChunkQueue::close_producer)
//! when their pipeline completes; `pop` returns `None` once every producer
//! closed and the buffer drained. Any failing pipeline (either side)
//! [`abort`](ChunkQueue::abort)s the queue: blocked producers fail fast
//! with an error, blocked consumers wake and wind down, and the graph
//! surfaces the root cause.

use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_vector::{DataChunk, EiderError, LogicalType, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

/// Error text of the secondary failure a pipeline reports when its queue
/// was aborted from the outside. One definition, shared with the graph
/// scheduler's root-cause error selection ([`super::graph`]) so the
/// classification cannot drift from the message.
pub(crate) const QUEUE_ABORT_MSG: &str = "pipeline chunk queue aborted";

/// Bits of a composed sequence reserved for the in-arm morsel number.
const ARM_SHIFT: u32 = 48;

/// Compose a deterministic batch sequence from a producer arm index and a
/// morsel sequence: arm-major, morsel-minor. Sorting consumer partials by
/// the composed value reproduces "arm 0's rows, then arm 1's" — the serial
/// UNION ALL order — regardless of queue arrival order.
pub fn compose_seq(arm: usize, morsel_seq: usize) -> usize {
    debug_assert!(arm < (1 << (usize::BITS - ARM_SHIFT - 1)), "arm index out of range");
    debug_assert!(morsel_seq < (1 << ARM_SHIFT), "morsel sequence out of range");
    (arm << ARM_SHIFT) | morsel_seq
}

/// One unit of queued work: the chunks one producer morsel emitted.
pub struct QueueBatch {
    /// Deterministic merge position (see [`compose_seq`]).
    pub seq: usize,
    pub chunks: Vec<DataChunk>,
    /// Charges the batch's bytes to the buffer manager while it sits in
    /// the queue and until the consumer finishes it.
    pub reservation: Option<MemoryReservation>,
}

impl QueueBatch {
    fn bytes(&self) -> usize {
        self.chunks.iter().map(DataChunk::size_bytes).sum()
    }
}

struct QueueState {
    batches: VecDeque<QueueBatch>,
    buffered_bytes: usize,
    open_producers: usize,
    aborted: bool,
    /// Bytes of batches admitted *without* a reservation under §4
    /// pressure (see [`ChunkQueue::reserve_batch`]); at most one such
    /// batch is in flight, so the untracked footprint stays bounded.
    untracked_bytes: usize,
}

/// A bounded multi-producer multi-consumer queue of chunk batches.
pub struct ChunkQueue {
    types: Vec<LogicalType>,
    max_bytes: usize,
    /// Upper bound on batches the producers will ever push (the planner
    /// knows their morsel counts); consumers size their fan-out from it.
    expected_batches: usize,
    state: Mutex<QueueState>,
    /// Producers wait here for buffered bytes to drop below the bound.
    space: Condvar,
    /// Consumers wait here for batches (or for the last producer to close).
    items: Condvar,
    /// Total batches ever pushed (scheduler instrumentation: proves the
    /// edge streamed rather than materialized).
    pushed: AtomicUsize,
}

impl std::fmt::Debug for ChunkQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkQueue")
            .field("types", &self.types)
            .field("max_bytes", &self.max_bytes)
            .finish_non_exhaustive()
    }
}

impl ChunkQueue {
    /// A queue carrying `types`-shaped chunks from `producers` pipelines.
    /// `max_bytes` bounds the buffered backlog (floored at one vector's
    /// worth so tiny budgets cannot stall).
    pub fn new(types: Vec<LogicalType>, producers: usize, max_bytes: usize) -> Self {
        ChunkQueue {
            types,
            max_bytes: max_bytes.max(1 << 16),
            expected_batches: usize::MAX,
            state: Mutex::new(QueueState {
                batches: VecDeque::new(),
                buffered_bytes: 0,
                open_producers: producers,
                aborted: false,
                untracked_bytes: 0,
            }),
            space: Condvar::new(),
            items: Condvar::new(),
            pushed: AtomicUsize::new(0),
        }
    }

    /// Declare how many batches the producers will push at most (their
    /// total morsel count). Lets a sort consumer cap its worker fan-out
    /// the same way table-sourced sorts do — more workers mean more runs
    /// for the merge to absorb.
    pub fn with_expected_batches(mut self, batches: usize) -> Self {
        self.expected_batches = batches.max(1);
        self
    }

    /// Upper bound on batches this queue will carry (`usize::MAX` when
    /// the producers never declared one).
    pub fn expected_batches(&self) -> usize {
        self.expected_batches
    }

    /// Column types of every chunk flowing through the queue.
    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    /// Batches pushed so far (instrumentation).
    pub fn pushed_batches(&self) -> usize {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Reserve budget for a batch about to be pushed, cooperating with the
    /// queue under §4 memory pressure: when the ledger cannot grant the
    /// bytes, wait for the consumer to drain the backlog (every pop
    /// releases an earlier batch's reservation) and retry. Only when the
    /// backlog is empty *and* no other unaccounted batch is in flight may
    /// the push proceed unaccounted (`None`) — the claim is taken under
    /// the queue lock, so concurrent producers cannot stack untracked
    /// batches; the worst-case untracked footprint is one batch,
    /// mirroring the serial operators' small unaccounted buffers.
    pub fn reserve_batch(
        &self,
        buffers: &Arc<BufferManager>,
        bytes: usize,
    ) -> Result<Option<MemoryReservation>> {
        loop {
            if let Ok(r) = buffers.reserve(bytes) {
                return Ok(Some(r));
            }
            let mut state = self.state.lock().expect("chunk queue poisoned");
            if state.aborted {
                return Err(EiderError::Internal(QUEUE_ABORT_MSG.into()));
            }
            if state.batches.is_empty() && state.untracked_bytes == 0 {
                // Claimed under the lock: the matching release happens
                // when the unaccounted batch is popped.
                state.untracked_bytes = bytes.max(1);
                return Ok(None);
            }
            // A pop will free space (ledger bytes or the untracked slot)
            // shortly; park until it does.
            drop(self.space.wait(state).expect("chunk queue poisoned"));
        }
    }

    /// Block until the queue has space, then enqueue `batch`. Fails once
    /// the queue is aborted so a producer stops scanning promptly after
    /// its consumer (or a sibling) died.
    pub fn push(&self, batch: QueueBatch) -> Result<()> {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        loop {
            if state.aborted {
                return Err(EiderError::Internal(QUEUE_ABORT_MSG.into()));
            }
            // Admit when under the bound, or when empty: a single batch
            // larger than the whole bound must still make progress.
            if state.buffered_bytes < self.max_bytes || state.batches.is_empty() {
                break;
            }
            state = self.space.wait(state).expect("chunk queue poisoned");
        }
        state.buffered_bytes += batch.bytes();
        state.batches.push_back(batch);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.items.notify_one();
        Ok(())
    }

    /// Block until a batch is available and dequeue it. Returns `None`
    /// once every producer has closed and the backlog drained, or as soon
    /// as the queue is aborted (the consumer's output is discarded on the
    /// error path, so winding down early is safe).
    pub fn pop(&self) -> Option<QueueBatch> {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        loop {
            if state.aborted {
                return None;
            }
            if let Some(batch) = state.batches.pop_front() {
                state.buffered_bytes -= batch.bytes();
                if batch.reservation.is_none() {
                    // Release the unaccounted-batch slot claimed in
                    // `reserve_batch` (no-op for unbuffered queues).
                    state.untracked_bytes = 0;
                }
                // All waiters: byte-bound blockers in `push` and producers
                // parked in `reserve_batch` both watch this condvar.
                self.space.notify_all();
                return Some(batch);
            }
            if state.open_producers == 0 {
                return None;
            }
            state = self.items.wait(state).expect("chunk queue poisoned");
        }
    }

    /// Mark one producer pipeline as complete; once all have closed,
    /// consumers drain the backlog and see end-of-stream.
    pub fn close_producer(&self) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.open_producers = state.open_producers.saturating_sub(1);
        if state.open_producers == 0 {
            self.items.notify_all();
        }
    }

    /// Fail the edge: wake every blocked producer (their next `push`
    /// errors) and consumer (`pop` returns `None`). Idempotent.
    pub fn abort(&self) {
        let mut state = self.state.lock().expect("chunk queue poisoned");
        state.aborted = true;
        state.batches.clear();
        state.buffered_bytes = 0;
        state.untracked_bytes = 0;
        self.space.notify_all();
        self.items.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_vector::Value;
    use std::sync::Arc;

    fn chunk(n: i32) -> DataChunk {
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
        DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap()
    }

    fn batch(seq: usize, n: i32) -> QueueBatch {
        QueueBatch { seq, chunks: vec![chunk(n)], reservation: None }
    }

    #[test]
    fn compose_seq_is_arm_major() {
        assert!(compose_seq(0, 5) < compose_seq(1, 0));
        assert!(compose_seq(1, 0) < compose_seq(1, 1));
        assert!(compose_seq(1, usize::MAX >> 20) < compose_seq(2, 0));
    }

    #[test]
    fn drains_in_fifo_order_then_ends_after_close() {
        let q = ChunkQueue::new(vec![LogicalType::Integer], 1, usize::MAX);
        q.push(batch(3, 4)).unwrap();
        q.push(batch(1, 2)).unwrap();
        q.close_producer();
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.pop().is_none());
        assert_eq!(q.pushed_batches(), 2);
    }

    #[test]
    fn bounded_push_blocks_until_consumer_drains() {
        // Bound small enough that the second push must wait for a pop.
        let q = Arc::new(ChunkQueue::new(vec![LogicalType::Integer], 1, 1 << 16));
        q.push(QueueBatch {
            seq: 0,
            chunks: (0..20).map(|_| chunk(2048)).collect(),
            reservation: None,
        })
        .unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(batch(1, 8)).unwrap();
                q.close_producer();
            })
        };
        // The consumer side frees space; the producer finishes.
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.pop().is_none());
        producer.join().unwrap();
    }

    #[test]
    fn abort_wakes_producers_with_error_and_consumers_with_none() {
        let q = Arc::new(ChunkQueue::new(vec![LogicalType::Integer], 2, usize::MAX));
        q.push(batch(0, 4)).unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // First pop gets the batch; the second blocks until abort.
                let first = q.pop();
                let second = q.pop();
                (first.is_some(), second.is_none())
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.abort();
        let (first, second) = popper.join().unwrap();
        assert!(first && second);
        assert!(q.push(batch(1, 4)).is_err(), "push after abort must fail");
    }
}
