//! A fast, non-cryptographic hasher for join/aggregation keys.
//!
//! The default SipHash of `std::collections::HashMap` costs more per key
//! than an entire vectorized kernel iteration; hash tables on the query
//! path use this Fx-style multiply-xor hash instead (the algorithm rustc
//! uses internally). HashDoS is not a concern for in-process analytical
//! keys.

use std::hash::{BuildHasherDefault, Hasher};

/// Fx algorithm: `state = (state rotl 5 ^ word) * SEED` per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Drop-in `BuildHasher` for `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// One-shot hash of a hashable value.
pub fn fxhash<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(fxhash(&42u64), fxhash(&42u64));
        assert_ne!(fxhash(&42u64), fxhash(&43u64));
        assert_ne!(fxhash(&"abc"), fxhash(&"abd"));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<i64, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as usize);
        }
        assert_eq!(m[&500], 1000);
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Sequential keys must spread over buckets reasonably.
        let mut buckets = [0usize; 64];
        for i in 0..64_000u64 {
            buckets[(fxhash(&i) % 64) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 500 && max < 2000, "min {min}, max {max}");
    }
}
