//! A fast, non-cryptographic hasher for join/aggregation keys, plus the
//! vectorized hash kernels the group-by and join key paths run on.
//!
//! The default SipHash of `std::collections::HashMap` costs more per key
//! than an entire vectorized kernel iteration; hash tables on the query
//! path use this Fx-style multiply-xor hash instead (the algorithm rustc
//! uses internally). HashDoS is not a concern for in-process analytical
//! keys.
//!
//! [`hash_vector`] is the §2 "low cycles per value" version of key
//! hashing: it hashes a whole [`Vector`] into a `u64` hash column in one
//! tight loop per physical type, and combines follow-up key columns into
//! the same column (`first = false`) instead of re-dispatching per row.
//! The hashes agree with the row-format key encoding of
//! [`crate::rowkey`]: two keys hash equal whenever their encoded bytes are
//! equal (doubles are normalized the same way on both paths).

use eider_vector::{Vector, VectorData};
use std::hash::{BuildHasherDefault, Hasher};

/// Fx algorithm: `state = (state rotl 5 ^ word) * SEED` per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Drop-in `BuildHasher` for `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// One-shot hash of a hashable value.
pub fn fxhash<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

// ---------------- vectorized hash kernels ----------------

/// One Fx mix step: fold `word` into a running hash.
#[inline(always)]
pub fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// The word NULL key values hash through (NULL keys form one group under
/// grouping equality, so they need one deterministic hash).
pub const NULL_HASH_WORD: u64 = 0xdead_beef_c01d_cafe;

/// Normalize a double so that values that are *key-equal* hash and encode
/// identically: `-0.0` folds into `+0.0` and every NaN folds into the one
/// canonical NaN. Shared with [`crate::rowkey`]'s encoder.
#[inline(always)]
pub fn normalize_f64(f: f64) -> f64 {
    if f == 0.0 {
        0.0
    } else if f.is_nan() {
        f64::NAN
    } else {
        f
    }
}

/// Fx-hash of a byte string (same result as `FxHasher::write` + `finish`
/// from a fresh hasher), used for varchar key words.
#[inline]
fn fx_bytes_word(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = fx_mix(h, u64::from_le_bytes(c.try_into().expect("8 bytes")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h = fx_mix(h, u64::from_le_bytes(w));
    }
    // Fold the length in so "a\0" and "a" cannot collide via zero padding.
    fx_mix(h, bytes.len() as u64)
}

macro_rules! hash_loop {
    ($data:expr, $validity:expr, $hashes:expr, $first:expr, $word:expr) => {{
        let data = $data;
        if $validity.all_valid() {
            if $first {
                for (h, x) in $hashes.iter_mut().zip(data.iter()) {
                    *h = fx_mix(0, $word(x));
                }
            } else {
                for (h, x) in $hashes.iter_mut().zip(data.iter()) {
                    *h = fx_mix(*h, $word(x));
                }
            }
        } else {
            for (i, (h, x)) in $hashes.iter_mut().zip(data.iter()).enumerate() {
                let w = if $validity.is_valid(i) { $word(x) } else { NULL_HASH_WORD };
                *h = if $first { fx_mix(0, w) } else { fx_mix(*h, w) };
            }
        }
    }};
}

/// Hash a whole vector into `hashes` in one typed loop.
///
/// With `first = true` the column starts the hash; with `first = false`
/// it is combined into the already-present hashes (multi-column keys).
/// `hashes` is resized to the vector's length on the first column and
/// must already have that length on follow-up columns.
pub fn hash_vector(v: &Vector, hashes: &mut Vec<u64>, first: bool) {
    if first {
        hashes.clear();
        hashes.resize(v.len(), 0);
    }
    debug_assert_eq!(hashes.len(), v.len());
    let validity = v.validity();
    // Dictionary-coded varchar: hash each distinct value once per
    // *dictionary* (cached on it), then the per-row work is a table
    // lookup instead of a byte-string hash.
    if let Some((dict, codes)) = v.dict_parts() {
        let words = dict.hashes(|vals| vals.iter().map(|s| fx_bytes_word(s.as_bytes())).collect());
        if validity.all_valid() {
            for (h, &c) in hashes.iter_mut().zip(codes.iter()) {
                *h = if first {
                    fx_mix(0, words[c as usize])
                } else {
                    fx_mix(*h, words[c as usize])
                };
            }
        } else {
            for (i, (h, &c)) in hashes.iter_mut().zip(codes.iter()).enumerate() {
                let w = if validity.is_valid(i) { words[c as usize] } else { NULL_HASH_WORD };
                *h = if first { fx_mix(0, w) } else { fx_mix(*h, w) };
            }
        }
        return;
    }
    // Run-length encoding: one hash word per run, broadcast over the run.
    if let Some((runs, starts)) = v.rle_parts() {
        let n = v.len();
        let words = run_hash_words(runs);
        for (i, &w) in words.iter().enumerate() {
            let begin = starts[i] as usize;
            let end = starts.get(i + 1).map_or(n, |&s| s as usize);
            if validity.all_valid() {
                for h in &mut hashes[begin..end] {
                    *h = if first { fx_mix(0, w) } else { fx_mix(*h, w) };
                }
            } else {
                for (off, h) in hashes[begin..end].iter_mut().enumerate() {
                    let word = if validity.is_valid(begin + off) { w } else { NULL_HASH_WORD };
                    *h = if first { fx_mix(0, word) } else { fx_mix(*h, word) };
                }
            }
        }
        return;
    }
    // Frame-of-reference: hash `frame + delta` inline, no materialization.
    if let Some((frame, deltas)) = v.for_parts() {
        hash_loop!(deltas, validity, hashes, first, |x: &u32| (frame + *x as i64) as u64);
        return;
    }
    match v.data() {
        VectorData::Bool(d) => hash_loop!(d, validity, hashes, first, |x: &bool| u64::from(*x)),
        VectorData::I8(d) => hash_loop!(d, validity, hashes, first, |x: &i8| *x as i64 as u64),
        VectorData::I16(d) => hash_loop!(d, validity, hashes, first, |x: &i16| *x as i64 as u64),
        VectorData::I32(d) => hash_loop!(d, validity, hashes, first, |x: &i32| *x as i64 as u64),
        VectorData::I64(d) => hash_loop!(d, validity, hashes, first, |x: &i64| *x as u64),
        VectorData::F64(d) => {
            hash_loop!(d, validity, hashes, first, |x: &f64| normalize_f64(*x).to_bits())
        }
        VectorData::Str(d) => {
            hash_loop!(d, validity, hashes, first, |x: &String| fx_bytes_word(x.as_bytes()))
        }
    }
}

/// Hash word per RLE run value, matching the flat per-type hash words.
fn run_hash_words(runs: &VectorData) -> Vec<u64> {
    match runs {
        VectorData::Bool(d) => d.iter().map(|&x| u64::from(x)).collect(),
        VectorData::I8(d) => d.iter().map(|&x| x as i64 as u64).collect(),
        VectorData::I16(d) => d.iter().map(|&x| x as i64 as u64).collect(),
        VectorData::I32(d) => d.iter().map(|&x| x as i64 as u64).collect(),
        VectorData::I64(d) => d.iter().map(|&x| x as u64).collect(),
        VectorData::F64(d) => d.iter().map(|&x| normalize_f64(x).to_bits()).collect(),
        VectorData::Str(d) => d.iter().map(|s| fx_bytes_word(s.as_bytes())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(fxhash(&42u64), fxhash(&42u64));
        assert_ne!(fxhash(&42u64), fxhash(&43u64));
        assert_ne!(fxhash(&"abc"), fxhash(&"abd"));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<i64, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as usize);
        }
        assert_eq!(m[&500], 1000);
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_vector_matches_per_row_mix() {
        use eider_vector::{LogicalType, Value};
        let v = Vector::from_values(
            LogicalType::Integer,
            &[Value::Integer(1), Value::Null, Value::Integer(-7)],
        )
        .unwrap();
        let mut hashes = Vec::new();
        hash_vector(&v, &mut hashes, true);
        assert_eq!(hashes.len(), 3);
        assert_eq!(hashes[0], fx_mix(0, 1u64));
        assert_eq!(hashes[1], fx_mix(0, NULL_HASH_WORD));
        assert_eq!(hashes[2], fx_mix(0, -7i64 as u64));
        // Combining a second column changes every hash.
        let before = hashes.clone();
        hash_vector(&v, &mut hashes, false);
        assert!(before.iter().zip(&hashes).all(|(a, b)| a != b));
    }

    #[test]
    fn double_hash_normalizes_zero_and_nan() {
        use eider_vector::{LogicalType, Value};
        let v = Vector::from_values(
            LogicalType::Double,
            &[
                Value::Double(0.0),
                Value::Double(-0.0),
                Value::Double(f64::NAN),
                Value::Double(-f64::NAN),
            ],
        )
        .unwrap();
        let mut hashes = Vec::new();
        hash_vector(&v, &mut hashes, true);
        assert_eq!(hashes[0], hashes[1], "-0.0 and 0.0 are one group");
        assert_eq!(hashes[2], hashes[3], "all NaNs are one group");
    }

    #[test]
    fn string_hash_distinguishes_embedded_nul() {
        assert_ne!(fx_bytes_word(b"a"), fx_bytes_word(b"a\0"));
        assert_ne!(fx_bytes_word(b""), fx_bytes_word(b"\0"));
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Sequential keys must spread over buckets reasonably.
        let mut buckets = [0usize; 64];
        for i in 0..64_000u64 {
            buckets[(fxhash(&i) % 64) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 500 && max < 2000, "min {min}, max {max}");
    }
}
