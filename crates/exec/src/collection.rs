//! Materialized chunk collections with optional intermediate compression.
//!
//! Pipeline breakers (hash join build sides, sort runs) materialize their
//! input. Under application memory pressure the adaptive controller (§4,
//! Figure 1) raises the [`CompressionLevel`]; collections then store
//! chunks as compressed byte buffers, trading CPU on access for RAM
//! footprint — precisely the "compress temporary structures like hash
//! tables in memory" trade-off of the paper.
//!
//! Memory is accounted against the buffer manager so the DBMS respects its
//! budget (§4's hard limits).

use eider_coop::compression::{compress, decompress, CompressionLevel};
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_storage::serde::{read_chunk, write_chunk, BinReader, BinWriter};
use eider_vector::{DataChunk, Result};
use std::sync::Arc;

enum StoredChunk {
    Plain(DataChunk),
    Compressed { bytes: Vec<u8>, rows: usize },
}

/// Run the per-column encoding chooser over an owned chunk; columns the
/// chooser declines stay plain, untouched.
fn encode_columns(chunk: DataChunk) -> Result<DataChunk> {
    let cols =
        chunk.into_columns().into_iter().map(|c| c.encode_auto().unwrap_or(c)).collect::<Vec<_>>();
    DataChunk::from_vectors(cols)
}

impl StoredChunk {
    fn rows(&self) -> usize {
        match self {
            StoredChunk::Plain(c) => c.len(),
            StoredChunk::Compressed { rows, .. } => *rows,
        }
    }

    fn bytes(&self) -> usize {
        match self {
            StoredChunk::Plain(c) => c.size_bytes(),
            StoredChunk::Compressed { bytes, .. } => bytes.len(),
        }
    }
}

/// A bounded FIFO cache of decompressed chunks, owned by each *reader* of
/// a collection rather than by the collection itself: once its build phase
/// ends a collection is immutable, so any number of workers (e.g. the
/// morsel-parallel join probe) can read it concurrently through `&self`,
/// each with a private cache.
///
/// Decompressed chunks kept hot are bounded to `CACHE_SLOTS * chunk size`
/// regardless of collection size; sequential access hits slot after slot,
/// and probe phases that bounce across a modest number of build chunks
/// stay cached instead of re-decompressing per row.
#[derive(Default)]
pub struct ChunkCache {
    slots: Vec<(usize, DataChunk)>,
}

const CACHE_SLOTS: usize = 16;

impl ChunkCache {
    pub fn new() -> Self {
        ChunkCache::default()
    }

    fn get(&self, idx: usize) -> Option<&DataChunk> {
        self.slots.iter().find(|(i, _)| *i == idx).map(|(_, c)| c)
    }

    fn insert(&mut self, idx: usize, chunk: DataChunk) {
        if self.slots.len() >= CACHE_SLOTS {
            self.slots.remove(0);
        }
        self.slots.push((idx, chunk));
    }
}

/// An append-then-read collection of chunks.
pub struct ChunkCollection {
    chunks: Vec<StoredChunk>,
    level: CompressionLevel,
    buffers: Option<(Arc<BufferManager>, MemoryReservation)>,
    rows: usize,
    /// Cache backing the convenience `&mut self` accessors; shared readers
    /// bring their own [`ChunkCache`] instead.
    cache: ChunkCache,
}

impl ChunkCollection {
    /// Unaccounted collection (tests, small intermediates).
    pub fn new(level: CompressionLevel) -> Self {
        ChunkCollection {
            chunks: Vec::new(),
            level,
            buffers: None,
            rows: 0,
            cache: ChunkCache::new(),
        }
    }

    /// Collection whose footprint is reserved against the buffer manager;
    /// appends fail with `OutOfMemory` when the budget is exhausted, which
    /// is the caller's signal to spill or switch strategy.
    pub fn with_accounting(level: CompressionLevel, buffers: Arc<BufferManager>) -> Result<Self> {
        let reservation = buffers.reserve(0)?;
        Ok(ChunkCollection {
            chunks: Vec::new(),
            level,
            buffers: Some((buffers, reservation)),
            rows: 0,
            cache: ChunkCache::new(),
        })
    }

    pub fn compression(&self) -> CompressionLevel {
        self.level
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Stored footprint in bytes (after compression).
    pub fn stored_bytes(&self) -> usize {
        self.chunks.iter().map(StoredChunk::bytes).sum()
    }

    /// Append a chunk, compressing it per the collection's level.
    ///
    /// `Light` runs the stats-driven columnar chooser and stores the chunk
    /// with dictionary/RLE/FOR columns — smaller, yet still directly
    /// queryable (no decompression step; kernels operate on the codes).
    /// `Heavy` additionally serializes the encoded chunk and LZSS-packs
    /// the bytes, maximizing the RAM saving at the price of a decode on
    /// every cache miss.
    pub fn append(&mut self, chunk: DataChunk) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        self.rows += chunk.len();
        let stored = match self.level {
            CompressionLevel::None => StoredChunk::Plain(chunk),
            CompressionLevel::Light => StoredChunk::Plain(encode_columns(chunk)?),
            CompressionLevel::Heavy => {
                let rows = chunk.len();
                let encoded = encode_columns(chunk)?;
                let mut w = BinWriter::with_capacity(encoded.size_bytes());
                write_chunk(&mut w, &encoded);
                let bytes = compress(CompressionLevel::Heavy, w.as_bytes());
                StoredChunk::Compressed { bytes, rows }
            }
        };
        if let Some((_, reservation)) = &mut self.buffers {
            reservation.grow(stored.bytes())?;
        }
        self.chunks.push(stored);
        Ok(())
    }

    /// Fetch chunk `idx` through a caller-owned cache without mutating the
    /// collection — the concurrent read path (shared join build sides).
    pub fn chunk_shared(&self, cache: &mut ChunkCache, idx: usize) -> Result<DataChunk> {
        match &self.chunks[idx] {
            StoredChunk::Plain(c) => Ok(c.clone()),
            StoredChunk::Compressed { bytes, .. } => {
                if let Some(c) = cache.get(idx) {
                    return Ok(c.clone());
                }
                let raw = decompress(bytes)?;
                let chunk = read_chunk(&mut BinReader::new(&raw))?;
                cache.insert(idx, chunk.clone());
                Ok(chunk)
            }
        }
    }

    /// Borrow chunk `idx` when it is stored uncompressed — the zero-copy
    /// path probe-side gathers take; compressed chunks return `None` and
    /// go through [`ChunkCollection::chunk_shared`] instead.
    pub fn plain_chunk(&self, idx: usize) -> Option<&DataChunk> {
        match &self.chunks[idx] {
            StoredChunk::Plain(c) => Some(c),
            StoredChunk::Compressed { .. } => None,
        }
    }

    /// Read one row through a caller-owned cache without cloning whole
    /// chunks (probe-side match gathering calls this once per matched row).
    pub fn row_shared(
        &self,
        cache: &mut ChunkCache,
        chunk_idx: usize,
        row: usize,
    ) -> Result<Vec<eider_vector::Value>> {
        match &self.chunks[chunk_idx] {
            StoredChunk::Plain(c) => Ok(c.row_values(row)),
            StoredChunk::Compressed { .. } => {
                if let Some(c) = cache.get(chunk_idx) {
                    return Ok(c.row_values(row));
                }
                let chunk = self.chunk_shared(cache, chunk_idx)?; // populates the cache
                Ok(chunk.row_values(row))
            }
        }
    }

    /// Fetch chunk `idx`, decompressing if needed, through the collection's
    /// own cache (single-reader convenience).
    pub fn chunk(&mut self, idx: usize) -> Result<DataChunk> {
        let mut cache = std::mem::take(&mut self.cache);
        let result = self.chunk_shared(&mut cache, idx);
        self.cache = cache;
        result
    }

    /// Rows in chunk `idx` without decompressing it.
    pub fn chunk_rows(&self, idx: usize) -> usize {
        self.chunks[idx].rows()
    }

    /// Read one row out through the collection's own cache.
    pub fn row(&mut self, chunk_idx: usize, row: usize) -> Result<Vec<eider_vector::Value>> {
        let mut cache = std::mem::take(&mut self.cache);
        let result = self.row_shared(&mut cache, chunk_idx, row);
        self.cache = cache;
        result
    }

    /// Iterate all chunks in order, decompressing lazily.
    pub fn iter_chunks(&mut self) -> ChunkIter<'_> {
        ChunkIter { collection: self, idx: 0 }
    }
}

/// Sequential iterator over a collection.
pub struct ChunkIter<'a> {
    collection: &'a mut ChunkCollection,
    idx: usize,
}

impl ChunkIter<'_> {
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<DataChunk>> {
        if self.idx >= self.collection.chunk_count() {
            return Ok(None);
        }
        let c = self.collection.chunk(self.idx)?;
        self.idx += 1;
        Ok(Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eider_storage::buffer::BufferManagerConfig;
    use eider_vector::{LogicalType, Value};

    fn chunk(start: i32, n: usize) -> DataChunk {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Integer(start + i as i32), Value::Varchar("payload".into())])
            .collect();
        DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Varchar], &rows).unwrap()
    }

    #[test]
    fn round_trip_all_levels() {
        for level in [CompressionLevel::None, CompressionLevel::Light, CompressionLevel::Heavy] {
            let mut col = ChunkCollection::new(level);
            col.append(chunk(0, 500)).unwrap();
            col.append(chunk(500, 300)).unwrap();
            assert_eq!(col.row_count(), 800);
            let a = col.chunk(0).unwrap();
            assert_eq!(a.len(), 500);
            assert_eq!(a.row_values(0)[0], Value::Integer(0));
            let b = col.chunk(1).unwrap();
            assert_eq!(b.row_values(299)[0], Value::Integer(799));
        }
    }

    #[test]
    fn compression_reduces_footprint() {
        let mut plain = ChunkCollection::new(CompressionLevel::None);
        let mut heavy = ChunkCollection::new(CompressionLevel::Heavy);
        for i in 0..10 {
            plain.append(chunk(i * 1000, 1000)).unwrap();
            heavy.append(chunk(i * 1000, 1000)).unwrap();
        }
        assert!(
            heavy.stored_bytes() < plain.stored_bytes() / 2,
            "heavy {} vs plain {}",
            heavy.stored_bytes(),
            plain.stored_bytes()
        );
    }

    #[test]
    fn light_level_stores_encoded_yet_directly_queryable() {
        let mut plain = ChunkCollection::new(CompressionLevel::None);
        let mut light = ChunkCollection::new(CompressionLevel::Light);
        for i in 0..5 {
            plain.append(chunk(i * 1000, 1000)).unwrap();
            light.append(chunk(i * 1000, 1000)).unwrap();
        }
        // Light chunks stay in the zero-copy Plain arm (no decompression
        // on access) with the varchar column dictionary-coded.
        let c = light.plain_chunk(0).expect("light chunks must stay directly accessible");
        assert!(c.column(1).is_encoded(), "constant varchar column should dict-encode");
        assert!(
            light.stored_bytes() < plain.stored_bytes() / 2,
            "light {} vs plain {}",
            light.stored_bytes(),
            plain.stored_bytes()
        );
        assert_eq!(light.chunk(0).unwrap().to_rows(), plain.chunk(0).unwrap().to_rows());
    }

    #[test]
    fn accounting_enforces_budget() {
        let buffers = BufferManager::new(BufferManagerConfig {
            memory_limit: 64 * 1024,
            memtest_allocations: false,
        });
        let mut col =
            ChunkCollection::with_accounting(CompressionLevel::None, buffers.clone()).unwrap();
        let mut failed = false;
        for i in 0..100 {
            if col.append(chunk(i * 1000, 1000)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "64KiB budget must reject ~megabytes of chunks");
        assert!(buffers.used_memory() > 0);
        drop(col);
        assert_eq!(buffers.used_memory(), 0, "reservation released on drop");
    }

    #[test]
    fn iterator_walks_in_order() {
        let mut col = ChunkCollection::new(CompressionLevel::Light);
        col.append(chunk(0, 10)).unwrap();
        col.append(chunk(10, 10)).unwrap();
        let mut it = col.iter_chunks();
        let mut seen = Vec::new();
        while let Some(c) = it.next().unwrap() {
            seen.push(c.row_values(0)[0].clone());
        }
        assert_eq!(seen, vec![Value::Integer(0), Value::Integer(10)]);
    }

    #[test]
    fn cache_serves_repeated_access() {
        let mut col = ChunkCollection::new(CompressionLevel::Heavy);
        col.append(chunk(0, 100)).unwrap();
        let a = col.row(0, 5).unwrap();
        let b = col.row(0, 6).unwrap();
        assert_eq!(a[0], Value::Integer(5));
        assert_eq!(b[0], Value::Integer(6));
    }
}
