//! Row-format key normalization for grouped aggregation and hash joins.
//!
//! The engine's two dominant hash paths (GROUP BY and join build/probe)
//! used to materialize a heap-allocated `Vec<Value>` per input row — the
//! tuple-at-a-time overhead §2 of the paper rules out. This module
//! replaces that with a *normalized byte encoding*: every key row is
//! serialized into a compact byte string inside a reusable arena, with
//!
//! * **grouping equality by `memcmp`** — two keys are equal iff their
//!   encoded bytes are equal (NULLs form one group via a sentinel byte,
//!   `-0.0` folds into `+0.0`, NaNs fold into one canonical NaN);
//! * **order preservation** — `memcmp` over encodings reproduces the
//!   engine's [`Value::total_cmp`] ordering (NULLs last), so the parallel
//!   aggregate merge can emit key-sorted deterministic output without
//!   ever decoding keys;
//! * **zero per-row allocation** — encoding writes into a [`KeyScratch`]
//!   reused across chunks; inserting a new group copies bytes into the
//!   table arena (amortized growth, no per-row boxes).
//!
//! ### Encoding
//!
//! Per key column: one sentinel byte (`0x01` valid, `0xFF` NULL — NULLs
//! sort last), then the payload:
//!
//! | type | payload |
//! |---|---|
//! | `BOOLEAN` | 1 byte, `0`/`1` |
//! | integers / `DATE` / `TIMESTAMP` | big-endian with the sign bit flipped |
//! | `DOUBLE` | IEEE total-order bits (negative values bit-inverted), big-endian |
//! | `VARCHAR` | bytes with `0x00` escaped as `0x00 0xFF`, terminated by `0x00 0x00` |
//!
//! NULL columns carry a zeroed payload in all-fixed-width layouts (so the
//! row width stays constant) and no payload in layouts containing
//! `VARCHAR`. The escape-terminated varchar form keeps `memcmp` ordering
//! correct for embedded NULs, empty strings and prefixes, which is why it
//! is used instead of a length-prefixed side heap: the parallel merge
//! sorts groups by raw encoded bytes.
//!
//! Hashing is *not* derived from the encoded bytes: [`crate::fxhash::hash_vector`]
//! hashes the typed column data directly (one tight loop per physical
//! type), which is cheaper and agrees with the encoding because both
//! normalize doubles the same way.

use crate::fxhash::{hash_vector, normalize_f64};
use eider_vector::{EiderError, LogicalType, Result, Value, Vector, VectorData};
use std::borrow::Borrow;

/// Sentinel byte of a valid (non-NULL) key column.
pub const KEY_VALID: u8 = 0x01;
/// Sentinel byte of a NULL key column; sorts after every valid value,
/// matching `ORDER BY ... NULLS LAST` ([`Value::total_cmp`]).
pub const KEY_NULL: u8 = 0xFF;

const EMPTY_SLOT: u32 = u32::MAX;

/// Payload width of a fixed-width type's encoding (sentinel excluded).
fn payload_width(ty: LogicalType) -> Option<usize> {
    Some(match ty {
        LogicalType::Boolean | LogicalType::TinyInt => 1,
        LogicalType::SmallInt => 2,
        LogicalType::Integer | LogicalType::Date => 4,
        LogicalType::BigInt | LogicalType::Timestamp | LogicalType::Double => 8,
        LogicalType::Varchar => return None,
    })
}

/// The compile-once shape of a key row: column types plus the derived
/// fixed row width (`None` when a `VARCHAR` column makes rows variable).
#[derive(Debug, Clone)]
pub struct KeyLayout {
    types: Vec<LogicalType>,
    /// Encoded row width when every column is fixed-width.
    fixed_width: Option<usize>,
    /// Per-column payload offset within a fixed-width row (sentinel at
    /// `offset`, payload at `offset + 1`). Empty for variable layouts.
    offsets: Vec<usize>,
}

impl KeyLayout {
    pub fn new(types: Vec<LogicalType>) -> KeyLayout {
        let mut offsets = Vec::with_capacity(types.len());
        let mut width = Some(0usize);
        for &ty in &types {
            if let Some(w) = width {
                offsets.push(w);
                width = payload_width(ty).map(|pw| w + 1 + pw);
            }
        }
        if width.is_none() {
            offsets.clear();
        }
        KeyLayout { types, fixed_width: width, offsets }
    }

    pub fn types(&self) -> &[LogicalType] {
        &self.types
    }

    /// `Some(total row width)` on the all-fixed-width fast path.
    pub fn fixed_width(&self) -> Option<usize> {
        self.fixed_width
    }

    pub fn column_count(&self) -> usize {
        self.types.len()
    }
}

/// Reusable per-chunk encoding buffers: encoded key bytes, per-row
/// offsets, per-row NULL flags and the vectorized hash column. Owned by
/// each table/operator so steady-state chunks allocate nothing.
#[derive(Default)]
pub struct KeyScratch {
    bytes: Vec<u8>,
    /// Start offset of row `i`'s encoding; `bytes.len()` closes the last.
    starts: Vec<u32>,
    has_null: Vec<bool>,
    /// Hash column filled by [`hash_vector`].
    pub hashes: Vec<u64>,
}

impl KeyScratch {
    /// Encoded key bytes of row `row` (valid after [`encode_keys`]).
    #[inline]
    pub fn key(&self, row: usize) -> &[u8] {
        let start = self.starts[row] as usize;
        let end = self.starts.get(row + 1).map_or(self.bytes.len(), |&s| s as usize);
        &self.bytes[start..end]
    }

    /// Whether any key column of row `row` is NULL (NULL keys never join).
    #[inline]
    pub fn has_null(&self, row: usize) -> bool {
        self.has_null[row]
    }

    /// `(offset, length)` of row `row`'s encoding within the byte buffer.
    #[inline]
    pub fn key_range(&self, row: usize) -> (u32, u32) {
        let start = self.starts[row];
        let end = self.starts.get(row + 1).map_or(self.bytes.len() as u32, |&s| s);
        (start, end - start)
    }

    /// Consume the scratch, keeping only the encoded bytes (join-build
    /// partials hand them to the shared build side).
    pub fn take_bytes(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.bytes)
    }

    pub fn heap_bytes(&self) -> usize {
        self.bytes.capacity()
            + self.starts.capacity() * 4
            + self.has_null.capacity()
            + self.hashes.capacity() * 8
    }
}

/// Cast any column whose vector type diverges from the layout's types
/// (rare planner edge) so that *hashing and encoding see the same data*
/// — [`crate::fxhash::hash_vector`] must run over exactly the values the
/// encoder writes, or byte-equal keys could carry different hashes.
/// Returns `None` when every column already matches (the common case;
/// no copies made).
pub fn conform_columns<V: Borrow<Vector>>(
    layout: &KeyLayout,
    columns: &[V],
) -> Result<Option<Vec<Vector>>> {
    if columns.iter().zip(layout.types()).all(|(v, &t)| v.borrow().logical_type() == t) {
        return Ok(None);
    }
    columns
        .iter()
        .zip(layout.types())
        .map(|(v, &t)| {
            let v = v.borrow();
            if v.logical_type() == t {
                Ok(v.clone())
            } else {
                v.cast(t)
            }
        })
        .collect::<Result<Vec<_>>>()
        .map(Some)
}

#[inline(always)]
fn encode_u64_ord(x: i64) -> u64 {
    (x as u64) ^ (1 << 63)
}

#[inline(always)]
fn encode_f64_ord(f: f64) -> u64 {
    let bits = normalize_f64(f).to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

macro_rules! fixed_column_loop {
    ($d:expr, $validity:expr, $bytes:expr, $has_null:expr, $stride:expr, $co:expr, $pw:expr,
     $enc:expr) => {{
        if $validity.all_valid() {
            for (i, x) in $d.iter().enumerate() {
                let p = i * $stride + $co;
                $bytes[p] = KEY_VALID;
                $bytes[p + 1..p + 1 + $pw].copy_from_slice(&$enc(x));
            }
        } else {
            for (i, x) in $d.iter().enumerate() {
                let p = i * $stride + $co;
                if $validity.is_valid(i) {
                    $bytes[p] = KEY_VALID;
                    $bytes[p + 1..p + 1 + $pw].copy_from_slice(&$enc(x));
                } else {
                    $bytes[p] = KEY_NULL;
                    $has_null[i] = true;
                }
            }
        }
    }};
}

/// Append one value's escape-terminated varchar encoding. Strings
/// without embedded NULs — virtually all of them — copy in one memcpy;
/// only strings containing `0x00` take the per-byte escaping loop.
fn encode_str(bytes: &mut Vec<u8>, s: &str) {
    let raw = s.as_bytes();
    if !raw.contains(&0) {
        bytes.extend_from_slice(raw);
    } else {
        for &b in raw {
            if b == 0 {
                bytes.extend_from_slice(&[0x00, 0xFF]);
            } else {
                bytes.push(b);
            }
        }
    }
    bytes.extend_from_slice(&[0x00, 0x00]);
}

/// Serialize the key columns of a chunk into `scratch` (hashes are *not*
/// touched — callers fill them with [`hash_vector`] first or afterwards).
///
/// Columns must match `layout.types()`; a column whose vector type
/// diverges (rare planner edge) is cast once per chunk, never per row.
pub fn encode_keys<V: Borrow<Vector>>(
    layout: &KeyLayout,
    columns: &[V],
    count: usize,
    scratch: &mut KeyScratch,
) -> Result<()> {
    if columns.len() != layout.types.len() {
        return Err(EiderError::Internal(format!(
            "key layout has {} columns, chunk evaluated {}",
            layout.types.len(),
            columns.len()
        )));
    }
    scratch.bytes.clear();
    scratch.starts.clear();
    scratch.has_null.clear();
    scratch.has_null.resize(count, false);
    // Cast stragglers up front so the hot loops see the layout's types.
    let mut casts: Vec<Option<Vector>> = Vec::new();
    for (c, v) in columns.iter().enumerate() {
        let v = v.borrow();
        if v.logical_type() != layout.types[c] {
            if casts.is_empty() {
                casts.resize(columns.len(), None);
            }
            casts[c] = Some(v.cast(layout.types[c])?);
        }
    }
    let col = |c: usize| -> &Vector {
        casts.get(c).and_then(|o| o.as_ref()).unwrap_or_else(|| columns[c].borrow())
    };
    if let Some(stride) = layout.fixed_width {
        scratch.bytes.resize(count * stride, 0);
        scratch.starts.extend((0..count as u32).map(|i| i * stride as u32));
        for c in 0..columns.len() {
            let v = col(c);
            let (validity, co) = (v.validity(), layout.offsets[c]);
            let bytes = &mut scratch.bytes;
            let has_null = &mut scratch.has_null;
            match v.data() {
                VectorData::Bool(d) => {
                    fixed_column_loop!(d, validity, bytes, has_null, stride, co, 1, |x: &bool| [
                        u8::from(*x)
                    ])
                }
                VectorData::I8(d) => {
                    fixed_column_loop!(d, validity, bytes, has_null, stride, co, 1, |x: &i8| [(*x
                        as u8)
                        ^ 0x80])
                }
                VectorData::I16(d) => {
                    fixed_column_loop!(d, validity, bytes, has_null, stride, co, 2, |x: &i16| ((*x
                        as u16)
                        ^ 0x8000)
                        .to_be_bytes())
                }
                VectorData::I32(d) => {
                    fixed_column_loop!(d, validity, bytes, has_null, stride, co, 4, |x: &i32| ((*x
                        as u32)
                        ^ 0x8000_0000)
                        .to_be_bytes())
                }
                VectorData::I64(d) => {
                    fixed_column_loop!(d, validity, bytes, has_null, stride, co, 8, |x: &i64| {
                        encode_u64_ord(*x).to_be_bytes()
                    })
                }
                VectorData::F64(d) => {
                    fixed_column_loop!(d, validity, bytes, has_null, stride, co, 8, |x: &f64| {
                        encode_f64_ord(*x).to_be_bytes()
                    })
                }
                VectorData::Str(_) => unreachable!("varchar in fixed-width layout"),
            }
        }
    } else {
        // Variable layout (VARCHAR present): row-major encoding. NULL
        // columns carry no payload here — the sentinel alone decides both
        // equality and order.
        //
        // Dictionary-coded varchar columns encode each distinct value
        // once per *dictionary* (the escape-terminated fragment is cached
        // on it); per row the encoder then copies the pre-built fragment
        // instead of re-escaping the string bytes.
        type DictParts<'a> = Option<(&'a [Vec<u8>], &'a [u32])>;
        let dict_cols: Vec<DictParts> = (0..columns.len())
            .map(|c| {
                col(c).dict_parts().map(|(dict, codes)| {
                    let frags = dict.key_fragments(|vals| {
                        vals.iter()
                            .map(|s| {
                                let mut b = Vec::with_capacity(s.len() + 2);
                                encode_str(&mut b, s);
                                b
                            })
                            .collect()
                    });
                    (frags, codes)
                })
            })
            .collect();
        for i in 0..count {
            scratch.starts.push(scratch.bytes.len() as u32);
            for (c, dict_col) in dict_cols.iter().enumerate() {
                let v = col(c);
                if v.is_null(i) {
                    scratch.bytes.push(KEY_NULL);
                    scratch.has_null[i] = true;
                    continue;
                }
                if let Some((frags, codes)) = dict_col {
                    scratch.bytes.push(KEY_VALID);
                    scratch.bytes.extend_from_slice(&frags[codes[i] as usize]);
                    continue;
                }
                scratch.bytes.push(KEY_VALID);
                match v.data() {
                    VectorData::Bool(d) => scratch.bytes.push(u8::from(d[i])),
                    VectorData::I8(d) => scratch.bytes.push((d[i] as u8) ^ 0x80),
                    VectorData::I16(d) => {
                        scratch.bytes.extend_from_slice(&((d[i] as u16) ^ 0x8000).to_be_bytes())
                    }
                    VectorData::I32(d) => scratch
                        .bytes
                        .extend_from_slice(&((d[i] as u32) ^ 0x8000_0000).to_be_bytes()),
                    VectorData::I64(d) => {
                        scratch.bytes.extend_from_slice(&encode_u64_ord(d[i]).to_be_bytes())
                    }
                    VectorData::F64(d) => {
                        scratch.bytes.extend_from_slice(&encode_f64_ord(d[i]).to_be_bytes())
                    }
                    VectorData::Str(d) => encode_str(&mut scratch.bytes, &d[i]),
                }
            }
        }
    }
    Ok(())
}

/// Decode one encoded key row, appending one value to each output vector
/// (which must match the layout's types in order).
pub fn decode_key_into(layout: &KeyLayout, key: &[u8], out: &mut [Vector]) -> Result<()> {
    let mut p = 0usize;
    for (c, &ty) in layout.types.iter().enumerate() {
        let sentinel = key[p];
        p += 1;
        if sentinel == KEY_NULL {
            out[c].push_null();
            if layout.fixed_width.is_some() {
                p += payload_width(ty).expect("fixed layout");
            }
            continue;
        }
        let v = &mut out[c];
        match ty {
            LogicalType::Boolean => {
                v.as_bool_mut().push(key[p] != 0);
                p += 1;
            }
            LogicalType::TinyInt => {
                v.as_i8_mut().push((key[p] ^ 0x80) as i8);
                p += 1;
            }
            LogicalType::SmallInt => {
                let raw = u16::from_be_bytes(key[p..p + 2].try_into().expect("2"));
                v.as_i16_mut().push((raw ^ 0x8000) as i16);
                p += 2;
            }
            LogicalType::Integer | LogicalType::Date => {
                let raw = u32::from_be_bytes(key[p..p + 4].try_into().expect("4"));
                v.as_i32_mut().push((raw ^ 0x8000_0000) as i32);
                p += 4;
            }
            LogicalType::BigInt | LogicalType::Timestamp => {
                let raw = u64::from_be_bytes(key[p..p + 8].try_into().expect("8"));
                v.as_i64_mut().push((raw ^ (1 << 63)) as i64);
                p += 8;
            }
            LogicalType::Double => {
                let raw = u64::from_be_bytes(key[p..p + 8].try_into().expect("8"));
                let bits = if raw >> 63 == 0 { !raw } else { raw ^ (1 << 63) };
                v.as_f64_mut().push(f64::from_bits(bits));
                p += 8;
            }
            LogicalType::Varchar => {
                let mut s = Vec::new();
                loop {
                    // Copy whole NUL-free stretches at once; a 0x00 is
                    // either the terminator (followed by 0x00) or an
                    // escaped NUL (followed by 0xFF).
                    let rest = &key[p..];
                    let z = rest.iter().position(|&b| b == 0x00).expect("terminated key");
                    s.extend_from_slice(&rest[..z]);
                    p += z + 2;
                    if rest[z + 1] == 0x00 {
                        break;
                    }
                    s.push(0x00);
                }
                v.as_str_mut().push(String::from_utf8(s).map_err(|_| {
                    EiderError::Internal("key decoding produced invalid UTF-8".into())
                })?);
            }
        }
        v.validity_mut().push(true);
    }
    Ok(())
}

/// Decode a key row into `Value`s (tests and slow paths).
pub fn decode_key_values(layout: &KeyLayout, key: &[u8]) -> Result<Vec<Value>> {
    let mut vectors: Vec<Vector> =
        layout.types.iter().map(|&t| Vector::with_capacity(t, 1)).collect();
    decode_key_into(layout, key, &mut vectors)?;
    Ok(vectors.iter().map(|v| v.get_value(0)).collect())
}

/// An arena-backed hash table keyed by encoded key rows.
///
/// Keys live contiguously in one byte arena; the open-addressing slot
/// array holds indexes into the entry vectors, so the steady state of
/// [`KeyedTable::upsert_rows`] performs no per-row heap allocation:
/// lookups compare hash then bytes, and inserting a new key copies its
/// encoding into the arena (amortized growth only). This is the table
/// behind both the serial [`HashAggregateOp`](crate::ops::HashAggregateOp)
/// and the parallel aggregate sink's per-morsel partials.
pub struct KeyedTable<T> {
    layout: KeyLayout,
    arena: Vec<u8>,
    /// `(offset, len)` of each entry's key in `arena`.
    keys: Vec<(u32, u32)>,
    hashes: Vec<u64>,
    payloads: Vec<T>,
    /// Power-of-two open-addressing slot array of entry indexes.
    slots: Vec<u32>,
    scratch: KeyScratch,
}

impl<T> KeyedTable<T> {
    pub fn new(layout: KeyLayout) -> Self {
        KeyedTable::with_capacity(layout, 0)
    }

    /// Pre-size for about `cap` distinct keys (e.g. the group cardinality
    /// observed on a previous morsel).
    pub fn with_capacity(layout: KeyLayout, cap: usize) -> Self {
        let slots = (cap * 2).next_power_of_two().max(16);
        KeyedTable {
            layout,
            arena: Vec::new(),
            keys: Vec::with_capacity(cap),
            hashes: Vec::with_capacity(cap),
            payloads: Vec::with_capacity(cap),
            slots: vec![EMPTY_SLOT; slots],
            scratch: KeyScratch::default(),
        }
    }

    pub fn layout(&self) -> &KeyLayout {
        &self.layout
    }

    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Encoded key bytes of entry `idx` (insertion order).
    #[inline]
    pub fn key_at(&self, idx: usize) -> &[u8] {
        let (off, len) = self.keys[idx];
        &self.arena[off as usize..(off + len) as usize]
    }

    pub fn payloads(&self) -> &[T] {
        &self.payloads
    }

    pub fn payloads_mut(&mut self) -> &mut [T] {
        &mut self.payloads
    }

    /// Free the per-chunk encode/hash staging buffers. Call when the table
    /// becomes a parked partial awaiting a merge: `merge_from` never
    /// touches scratch, and the buffers otherwise dominate the footprint
    /// of small tables (they are sized per input chunk, not per group).
    pub fn release_scratch(&mut self) {
        self.scratch = KeyScratch::default();
    }

    /// Approximate heap footprint of keys, slots and scratch buffers
    /// (payload internals are the caller's to account).
    pub fn table_bytes(&self) -> usize {
        self.arena.capacity()
            + self.keys.capacity() * 8
            + self.hashes.capacity() * 8
            + self.payloads.capacity() * std::mem::size_of::<T>()
            + self.slots.capacity() * 4
            + self.scratch.heap_bytes()
    }

    /// Home slot of a hash: fold the high half in before masking, so keys
    /// whose hashes differ only in upper bits don't share probe chains.
    #[inline(always)]
    fn slot_of(hash: u64, mask: u64) -> usize {
        ((hash ^ (hash >> 32)) & mask) as usize
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(new_len, EMPTY_SLOT);
        let mask = (new_len - 1) as u64;
        for (idx, &h) in self.hashes.iter().enumerate() {
            let mut i = Self::slot_of(h, mask);
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask as usize;
            }
            self.slots[i] = idx as u32;
        }
    }

    /// Find the entry for `(hash, key)` or insert a fresh payload.
    /// Returns `(entry index, inserted)`.
    pub fn upsert(
        &mut self,
        hash: u64,
        key: &[u8],
        new_payload: impl FnOnce() -> T,
    ) -> (usize, bool) {
        // Cap the load factor at 3/4: linear probing degrades sharply past
        // ~75% occupancy, and slots are only 4 bytes each — far cheaper to
        // keep sparse than the probe chains they would otherwise grow.
        if (self.payloads.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = (self.slots.len() - 1) as u64;
        let mut i = Self::slot_of(hash, mask);
        loop {
            let s = self.slots[i];
            if s == EMPTY_SLOT {
                let idx = self.payloads.len();
                self.slots[i] = idx as u32;
                let off = self.arena.len() as u32;
                self.arena.extend_from_slice(key);
                self.keys.push((off, key.len() as u32));
                self.hashes.push(hash);
                self.payloads.push(new_payload());
                return (idx, true);
            }
            let s = s as usize;
            if self.hashes[s] == hash && self.key_at(s) == key {
                return (s, false);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Look up without inserting.
    pub fn find(&self, hash: u64, key: &[u8]) -> Option<usize> {
        if self.payloads.is_empty() {
            return None;
        }
        let mask = (self.slots.len() - 1) as u64;
        let mut i = Self::slot_of(hash, mask);
        loop {
            let s = self.slots[i];
            if s == EMPTY_SLOT {
                return None;
            }
            let s = s as usize;
            if self.hashes[s] == hash && self.key_at(s) == key {
                return Some(s);
            }
            i = (i + 1) & mask as usize;
        }
    }

    /// Vectorized find-or-insert of a whole chunk's keys: hash every key
    /// column with [`hash_vector`], encode rows into the reused scratch,
    /// then probe each row. `group_ids[row]` receives the entry index.
    pub fn upsert_rows<V: Borrow<Vector>>(
        &mut self,
        columns: &[V],
        count: usize,
        mut new_payload: impl FnMut() -> T,
        group_ids: &mut Vec<u32>,
    ) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let conformed = match conform_columns(&self.layout, columns) {
            Ok(c) => c,
            Err(e) => {
                self.scratch = scratch;
                return Err(e);
            }
        };
        let columns: Vec<&Vector> = match &conformed {
            Some(cast) => cast.iter().collect(),
            None => columns.iter().map(Borrow::borrow).collect(),
        };
        if columns.is_empty() {
            scratch.hashes.clear();
            scratch.hashes.resize(count, 0);
        } else {
            for (c, &v) in columns.iter().enumerate() {
                hash_vector(v, &mut scratch.hashes, c == 0);
            }
        }
        let result = encode_keys(&self.layout, &columns, count, &mut scratch);
        if result.is_ok() {
            group_ids.clear();
            group_ids.reserve(count);
            for row in 0..count {
                let (idx, _) = self.upsert(scratch.hashes[row], scratch.key(row), &mut new_payload);
                group_ids.push(idx as u32);
            }
        }
        self.scratch = scratch;
        result
    }

    /// Fold another table (same layout) into this one: payloads of keys
    /// already present are combined, new keys move their payload over.
    /// Iterates `other` in insertion order, keeping merges deterministic.
    pub fn merge_from(
        &mut self,
        other: KeyedTable<T>,
        mut combine: impl FnMut(&mut T, T) -> Result<()>,
    ) -> Result<()> {
        let KeyedTable { arena, keys, hashes, payloads, .. } = other;
        for ((&(off, len), &h), payload) in keys.iter().zip(&hashes).zip(payloads) {
            let key = &arena[off as usize..(off + len) as usize];
            let mut moved = Some(payload);
            let (idx, inserted) = self.upsert(h, key, || moved.take().expect("payload"));
            if !inserted {
                combine(&mut self.payloads[idx], moved.take().expect("payload"))?;
            }
        }
        Ok(())
    }

    /// Like [`KeyedTable::merge_from`], but for callers that keep
    /// per-entry state *outside* the payload (e.g. a flat aggregate-state
    /// array indexed by entry): reports, in `other`'s insertion order,
    /// each key's entry index in `self` and whether it was newly
    /// inserted. Payloads of keys already present are dropped.
    pub fn merge_from_with(
        &mut self,
        other: KeyedTable<T>,
        mut on_entry: impl FnMut(usize, usize, bool) -> Result<()>,
    ) -> Result<()> {
        let KeyedTable { arena, keys, hashes, payloads, .. } = other;
        let mut payloads = payloads.into_iter();
        for (other_idx, (&(off, len), &h)) in keys.iter().zip(&hashes).enumerate() {
            let key = &arena[off as usize..(off + len) as usize];
            let mut moved = payloads.next();
            let (idx, inserted) = self.upsert(h, key, || moved.take().expect("payload"));
            on_entry(idx, other_idx, inserted)?;
        }
        Ok(())
    }

    /// Entry indexes sorted by encoded key bytes — which, by the ordering
    /// property of the encoding, is [`Value::total_cmp`] order.
    pub fn sorted_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by(|&a, &b| self.key_at(a as usize).cmp(self.key_at(b as usize)));
        order
    }

    /// Decode entry `idx`'s key, appending one value per output vector.
    pub fn decode_key_into(&self, idx: usize, out: &mut [Vector]) -> Result<()> {
        decode_key_into(&self.layout, self.key_at(idx), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_row(types: &[LogicalType], row: &[Value]) -> Vec<u8> {
        let layout = KeyLayout::new(types.to_vec());
        let columns: Vec<Vector> = types
            .iter()
            .zip(row)
            .map(|(&t, v)| Vector::from_values(t, std::slice::from_ref(v)).unwrap())
            .collect();
        let mut scratch = KeyScratch::default();
        encode_keys(&layout, &columns, 1, &mut scratch).unwrap();
        scratch.key(0).to_vec()
    }

    #[test]
    fn round_trip_all_types() {
        let types = [
            LogicalType::Boolean,
            LogicalType::TinyInt,
            LogicalType::SmallInt,
            LogicalType::Integer,
            LogicalType::BigInt,
            LogicalType::Double,
            LogicalType::Varchar,
            LogicalType::Date,
            LogicalType::Timestamp,
        ];
        let row = vec![
            Value::Boolean(true),
            Value::TinyInt(-3),
            Value::SmallInt(-300),
            Value::Integer(70_000),
            Value::BigInt(-(1 << 40)),
            Value::Double(-2.5),
            Value::Varchar("du\0ck".into()),
            Value::Date(18273),
            Value::Timestamp(1_600_000_000_000_000),
        ];
        let layout = KeyLayout::new(types.to_vec());
        let key = encode_row(&types, &row);
        assert_eq!(decode_key_values(&layout, &key).unwrap(), row);
        // All-NULL row round-trips too.
        let nulls: Vec<Value> = types.iter().map(|_| Value::Null).collect();
        let key = encode_row(&types, &nulls);
        assert_eq!(decode_key_values(&layout, &key).unwrap(), nulls);
    }

    #[test]
    fn memcmp_order_matches_total_cmp() {
        let cases: Vec<(LogicalType, Vec<Value>)> = vec![
            (
                LogicalType::Integer,
                vec![
                    Value::Integer(i32::MIN),
                    Value::Integer(-1),
                    Value::Integer(0),
                    Value::Integer(1),
                    Value::Integer(i32::MAX),
                    Value::Null,
                ],
            ),
            (
                LogicalType::Double,
                vec![
                    Value::Double(f64::NEG_INFINITY),
                    Value::Double(-1.5),
                    Value::Double(0.0),
                    Value::Double(2.0),
                    Value::Double(f64::INFINITY),
                    Value::Null,
                ],
            ),
            (
                LogicalType::Varchar,
                vec![
                    Value::Varchar("".into()),
                    Value::Varchar("a".into()),
                    Value::Varchar("a\0".into()),
                    Value::Varchar("ab".into()),
                    Value::Varchar("b".into()),
                    Value::Null,
                ],
            ),
        ];
        for (ty, vals) in cases {
            for a in &vals {
                for b in &vals {
                    let ka = encode_row(&[ty], std::slice::from_ref(a));
                    let kb = encode_row(&[ty], std::slice::from_ref(b));
                    assert_eq!(ka.cmp(&kb), a.total_cmp(b), "{ty}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn fixed_width_layout_has_constant_rows() {
        let layout = KeyLayout::new(vec![LogicalType::Integer, LogicalType::BigInt]);
        assert_eq!(layout.fixed_width(), Some(5 + 9));
        let varchar = KeyLayout::new(vec![LogicalType::Integer, LogicalType::Varchar]);
        assert_eq!(varchar.fixed_width(), None);
    }

    #[test]
    fn keyed_table_groups_and_merges() {
        let layout = KeyLayout::new(vec![LogicalType::Integer]);
        let mut a: KeyedTable<i64> = KeyedTable::new(layout.clone());
        let mut ids = Vec::new();
        let col = Vector::from_values(
            LogicalType::Integer,
            &(0..2048).map(|i| Value::Integer(i % 100)).collect::<Vec<_>>(),
        )
        .unwrap();
        a.upsert_rows(std::slice::from_ref(&col), 2048, || 0i64, &mut ids).unwrap();
        for &g in &ids {
            a.payloads_mut()[g as usize] += 1;
        }
        assert_eq!(a.len(), 100);
        let mut b: KeyedTable<i64> = KeyedTable::new(layout.clone());
        let col2 = Vector::from_values(
            LogicalType::Integer,
            &(0..300).map(|i| Value::Integer(i % 150)).collect::<Vec<_>>(),
        )
        .unwrap();
        b.upsert_rows(std::slice::from_ref(&col2), 300, || 0i64, &mut ids).unwrap();
        for &g in &ids {
            b.payloads_mut()[g as usize] += 1;
        }
        a.merge_from(b, |x, y| {
            *x += y;
            Ok(())
        })
        .unwrap();
        assert_eq!(a.len(), 150);
        let total: i64 = a.payloads().iter().sum();
        assert_eq!(total, 2048 + 300);
        // Sorted order decodes ascending.
        let order = a.sorted_order();
        let decoded: Vec<Vec<Value>> = order
            .iter()
            .map(|&i| decode_key_values(a.layout(), a.key_at(i as usize)).unwrap())
            .collect();
        let expected: Vec<Vec<Value>> = (0..150).map(|i| vec![Value::Integer(i)]).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn null_and_negative_zero_normalize() {
        let ty = [LogicalType::Double];
        assert_eq!(encode_row(&ty, &[Value::Double(0.0)]), encode_row(&ty, &[Value::Double(-0.0)]));
        assert_eq!(
            encode_row(&ty, &[Value::Double(f64::NAN)]),
            encode_row(&ty, &[Value::Double(-f64::NAN)])
        );
        assert_eq!(encode_row(&ty, &[Value::Null]), encode_row(&ty, &[Value::Null]));
        assert_ne!(encode_row(&ty, &[Value::Null]), encode_row(&ty, &[Value::Double(0.0)]));
    }
}
