//! The vectorized "Vector Volcano" execution engine (§6).
//!
//! "Query execution commences by pulling the first 'chunk' of data from
//! the root node of the physical plan. ... This node will recursively pull
//! chunks from child nodes, eventually arriving at a scan operator which
//! produces chunks by reading from the persistent tables. This continues
//! until the chunk arriving at the root is empty, at which point the query
//! is completed."
//!
//! Every operator implements [`PhysicalOperator::next_chunk`]; the client
//! API (eider-client) literally hands the root operator's pull handle to
//! the application (§5's zero-copy transfer).
//!
//! Modules:
//! * [`expression`] — vectorized expression kernels (with typed fast paths,
//!   the "low amount of CPU cycles per value" §2 demands) plus row-wise
//!   evaluation reused by the optimizer's constant folding and the
//!   baseline engine;
//! * [`aggregate`] — aggregate function states (COUNT/SUM/AVG/MIN/MAX/
//!   STDDEV/VAR);
//! * [`collection`] — materialized chunk collections with optional
//!   intermediate compression (Figure 1) and memory accounting;
//! * [`ops`] — the operators: scan, filter, project, hash join, out-of-core
//!   merge join, nested-loop join, cross product, hash/simple aggregate,
//!   external sort, top-n, limit, distinct, insert/update/delete;
//! * [`parallel`] — the morsel-driven parallel executor: a scan is sliced
//!   into row-range morsels dispensed to worker threads, each running the
//!   serial operators above, with explicit merge/finalize steps for
//!   aggregates, sorts and hash-join builds;
//! * [`rowkey`] — normalized row-format key encoding (NULL sentinel,
//!   order-preserving bytes) plus the arena-backed [`rowkey::KeyedTable`]
//!   behind grouped aggregation; [`fxhash`] holds the matching vectorized
//!   hash kernels;
//! * [`row_engine`] — a classical tuple-at-a-time Volcano interpreter, the
//!   baseline the OLAP benchmark compares against (§2/§6: why vectorized).

pub mod aggregate;
pub mod collection;
pub mod expression;
pub mod fxhash;
pub mod ops;
pub mod parallel;
pub mod row_engine;
pub mod rowkey;

pub use collection::ChunkCollection;
pub use expression::{ArithOp, Expr, ScalarFunc};
pub use ops::{OperatorBox, PhysicalOperator};
pub use parallel::{ParallelPipeline, PipelineSink, PipelineStep, TaskScheduler};
