//! Streaming operators: values source, filter, projection, limit, distinct.

use crate::expression::{filter_selection, Expr};
use crate::fxhash::FxBuildHasher;
use crate::ops::{OperatorBox, PhysicalOperator};
use eider_vector::{DataChunk, LogicalType, Result, Value, Vector};
use std::collections::HashSet;

/// Produces a fixed list of chunks (VALUES clauses, function results).
pub struct ValuesOp {
    types: Vec<LogicalType>,
    chunks: std::vec::IntoIter<DataChunk>,
}

impl ValuesOp {
    pub fn new(types: Vec<LogicalType>, chunks: Vec<DataChunk>) -> Self {
        ValuesOp { types, chunks: chunks.into_iter() }
    }

    /// Single-row source (for `SELECT 1`-style queries). Carries one dummy
    /// boolean column because a chunk's cardinality is its columns' length;
    /// the projection above never references it.
    pub fn single_row() -> Self {
        let chunk = DataChunk::from_rows(&[LogicalType::Boolean], &[vec![Value::Boolean(true)]])
            .expect("one row");
        ValuesOp { types: vec![LogicalType::Boolean], chunks: vec![chunk].into_iter() }
    }
}

impl PhysicalOperator for ValuesOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        Ok(self.chunks.next())
    }
}

/// WHERE: evaluates a boolean expression, keeps TRUE rows.
pub struct FilterOp {
    child: OperatorBox,
    predicate: Expr,
}

impl FilterOp {
    pub fn new(child: OperatorBox, predicate: Expr) -> Self {
        FilterOp { child, predicate }
    }
}

impl PhysicalOperator for FilterOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.child.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            let flags = self.predicate.evaluate(&chunk)?;
            let sel = filter_selection(&flags)?;
            if sel.is_empty() {
                continue;
            }
            if sel.len() == chunk.len() {
                return Ok(Some(chunk));
            }
            return Ok(Some(chunk.select(&sel)));
        }
        Ok(None)
    }
}

/// SELECT list: computes one expression per output column.
pub struct ProjectionOp {
    child: OperatorBox,
    exprs: Vec<Expr>,
}

impl ProjectionOp {
    pub fn new(child: OperatorBox, exprs: Vec<Expr>) -> Self {
        ProjectionOp { child, exprs }
    }
}

impl PhysicalOperator for ProjectionOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.exprs.iter().map(Expr::result_type).collect()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        match self.child.next_chunk()? {
            Some(chunk) => {
                // A projection of distinct bare column references (the
                // common prune/reorder after an aggregate or scan) moves
                // the vectors out of the consumed chunk instead of
                // deep-copying them.
                let bare: Option<Vec<usize>> = self
                    .exprs
                    .iter()
                    .map(|e| match e {
                        Expr::ColumnRef { index, .. } => Some(*index),
                        _ => None,
                    })
                    .collect();
                if let Some(idx) = &bare {
                    let distinct = idx.iter().enumerate().all(|(i, c)| !idx[..i].contains(c));
                    if distinct {
                        let mut source = chunk.into_columns();
                        let cols = idx
                            .iter()
                            .map(|&i| {
                                std::mem::replace(&mut source[i], Vector::new(LogicalType::Boolean))
                            })
                            .collect();
                        return Ok(Some(DataChunk::from_vectors(cols)?));
                    }
                }
                let cols =
                    self.exprs.iter().map(|e| e.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
                Ok(Some(DataChunk::from_vectors(cols)?))
            }
            None => Ok(None),
        }
    }
}

/// LIMIT / OFFSET.
pub struct LimitOp {
    child: OperatorBox,
    limit: usize,
    offset: usize,
    skipped: usize,
    produced: usize,
}

impl LimitOp {
    pub fn new(child: OperatorBox, limit: usize, offset: usize) -> Self {
        LimitOp { child, limit, offset, skipped: 0, produced: 0 }
    }
}

impl PhysicalOperator for LimitOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.child.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        while self.produced < self.limit {
            let Some(chunk) = self.child.next_chunk()? else {
                return Ok(None);
            };
            let mut chunk = chunk;
            if self.skipped < self.offset {
                let to_skip = (self.offset - self.skipped).min(chunk.len());
                self.skipped += to_skip;
                if to_skip == chunk.len() {
                    continue;
                }
                chunk = chunk.slice(to_skip, chunk.len() - to_skip);
            }
            let want = self.limit - self.produced;
            if chunk.len() > want {
                chunk = chunk.slice(0, want);
            }
            self.produced += chunk.len();
            if chunk.is_empty() {
                continue;
            }
            return Ok(Some(chunk));
        }
        Ok(None)
    }
}

/// DISTINCT over full rows (hash-based).
pub struct DistinctOp {
    child: OperatorBox,
    seen: HashSet<Vec<Value>, FxBuildHasher>,
}

impl DistinctOp {
    pub fn new(child: OperatorBox) -> Self {
        DistinctOp { child, seen: HashSet::default() }
    }
}

impl PhysicalOperator for DistinctOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.child.output_types()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        while let Some(chunk) = self.child.next_chunk()? {
            let mut out = DataChunk::new(&chunk.types());
            for row in 0..chunk.len() {
                let vals = chunk.row_values(row);
                if self.seen.insert(vals.clone()) {
                    out.append_row(&vals)?;
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain_rows;
    use eider_txn::CmpOp;

    fn source(n: i32) -> OperatorBox {
        let rows: Vec<Vec<Value>> =
            (0..n).map(|i| vec![Value::Integer(i), Value::Integer(i % 3)]).collect();
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]))
    }

    #[test]
    fn filter_keeps_true_rows() {
        let pred = Expr::Compare {
            op: CmpOp::GtEq,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(8))),
        };
        let mut op = FilterOp::new(source(10), pred);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Integer(8));
    }

    #[test]
    fn projection_computes_expressions() {
        let exprs = vec![Expr::Arithmetic {
            op: crate::expression::ArithOp::Mul,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(2))),
            ty: LogicalType::BigInt,
        }];
        let mut op = ProjectionOp::new(source(3), exprs);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::BigInt(0), Value::BigInt(2), Value::BigInt(4)]
        );
    }

    #[test]
    fn limit_and_offset() {
        let mut op = LimitOp::new(source(10), 3, 4);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Integer(4), Value::Integer(5), Value::Integer(6)]
        );
        // Offset beyond input.
        let mut op = LimitOp::new(source(3), 5, 10);
        assert!(drain_rows(&mut op).unwrap().is_empty());
        // Zero limit.
        let mut op = LimitOp::new(source(3), 0, 0);
        assert!(drain_rows(&mut op).unwrap().is_empty());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rows: Vec<Vec<Value>> = (0..9).map(|i| vec![Value::Integer(i % 3)]).collect();
        let chunk = DataChunk::from_rows(&[LogicalType::Integer], &rows).unwrap();
        let src = Box::new(ValuesOp::new(vec![LogicalType::Integer], vec![chunk]));
        let mut op = DistinctOp::new(src);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn single_row_values() {
        let mut op = ValuesOp::single_row();
        let c = op.next_chunk().unwrap().unwrap();
        assert_eq!(c.len(), 1);
        assert!(op.next_chunk().unwrap().is_none());
    }
}
