//! Table scan: the leaf of every plan, reading snapshot-consistent chunks
//! from versioned storage with filter pushdown and zone-map skipping.

use crate::ops::PhysicalOperator;
use eider_txn::table::TableScanState;
use eider_txn::{DataTable, ScanOptions, Transaction};
use eider_vector::{DataChunk, LogicalType, Result};
use std::sync::Arc;

pub struct TableScanOp {
    table: Arc<DataTable>,
    txn: Arc<Transaction>,
    opts: ScanOptions,
    state: Option<TableScanState>,
    types: Vec<LogicalType>,
}

impl TableScanOp {
    pub fn new(table: Arc<DataTable>, txn: Arc<Transaction>, opts: ScanOptions) -> Self {
        let types = opts.output_types(&table);
        TableScanOp { table, txn, opts, state: None, types }
    }
}

impl PhysicalOperator for TableScanOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.state.is_none() {
            self.state = Some(self.table.begin_scan(&self.txn, &self.opts));
        }
        let state = self.state.as_mut().expect("initialized");
        self.table.scan_next(&self.txn, &self.opts, state)
    }
}

/// Serial scan over an external [`TableSource`](eider_etl::TableSource):
/// drains the source's
/// partitions in canonical (`seq`) order, skipping partitions the
/// source's metadata proves empty under the pushed-down filters. The
/// serial twin of the morsel-parallel external scan — both read the same
/// partitions in the same order, so results are bit-identical.
pub struct SourceScanOp {
    source: Arc<dyn eider_etl::TableSource>,
    projection: Vec<usize>,
    filters: Vec<eider_txn::TableFilter>,
    types: Vec<LogicalType>,
    parts: Option<Vec<eider_etl::SourcePartition>>,
    reader: Option<Box<dyn eider_etl::SourceReader>>,
    next_part: usize,
}

impl SourceScanOp {
    pub fn new(
        source: Arc<dyn eider_etl::TableSource>,
        projection: Vec<usize>,
        filters: Vec<eider_txn::TableFilter>,
    ) -> Self {
        let all = source.column_types();
        let types = projection.iter().map(|&i| all[i]).collect();
        SourceScanOp { source, projection, filters, types, parts: None, reader: None, next_part: 0 }
    }
}

impl PhysicalOperator for SourceScanOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.parts.is_none() {
            let mut parts = self.source.partitions(1)?;
            parts.sort_by_key(|p| p.seq);
            parts.retain(|p| !self.source.prunable(p, &self.filters));
            self.parts = Some(parts);
        }
        loop {
            if let Some(reader) = self.reader.as_mut() {
                if let Some(chunk) = reader.next_chunk()? {
                    return Ok(Some(chunk));
                }
                self.reader = None;
            }
            let parts = self.parts.as_ref().expect("initialized");
            let Some(part) = parts.get(self.next_part) else {
                return Ok(None);
            };
            self.reader = Some(self.source.open(part, &self.projection)?);
            self.next_part += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain_rows;
    use eider_txn::{CmpOp, TableFilter, TransactionManager};
    use eider_vector::Value;

    #[test]
    fn scan_projects_and_filters() {
        let mgr = TransactionManager::new();
        let table = DataTable::new(vec![LogicalType::Integer, LogicalType::Varchar]);
        let txn = Arc::new(mgr.begin());
        let chunk = DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Varchar],
            &(0..100)
                .map(|i| vec![Value::Integer(i), Value::Varchar(format!("r{i}"))])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        table.append_chunk(&txn, &chunk).unwrap();
        let opts = ScanOptions {
            columns: vec![1, 0],
            filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(3))],
            emit_row_ids: false,
        };
        let mut op = TableScanOp::new(table, Arc::clone(&txn), opts);
        assert_eq!(op.output_types(), vec![LogicalType::Varchar, LogicalType::Integer]);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Varchar("r0".into()), Value::Integer(0)]);
    }
}
