//! External sort and Top-N.
//!
//! The sort accumulates input until its memory budget is reached, sorts
//! the run and spills it to a checksummed spill file, then k-way merges
//! all runs — the disk-for-RAM trade §4 relies on ("The merge requires
//! fewer main memory resources to run, but O(n log n) CPU cycles as well
//! as disk IO"). With enough budget it degenerates to a fast in-memory
//! sort with no I/O.

use crate::expression::Expr;
use crate::ops::{OperatorBox, PhysicalOperator};
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_storage::spill::{SpillFile, SpillReader};
use eider_vector::{DataChunk, LogicalType, Result, Value, VECTOR_SIZE};
use std::cmp::Ordering;
use std::sync::Arc;

/// One ORDER BY term.
#[derive(Debug, Clone)]
pub struct SortKey {
    pub expr: Expr,
    pub descending: bool,
    /// Default in eider is NULLS LAST for ascending, NULLS FIRST for
    /// descending (matching most engines' symmetric behaviour).
    pub nulls_first: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> Self {
        SortKey { expr, descending: false, nulls_first: false }
    }

    pub fn desc(expr: Expr) -> Self {
        SortKey { expr, descending: true, nulls_first: true }
    }
}

/// Compare two precomputed key tuples under the ORDER BY spec.
pub fn compare_keys(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let (x, y) = (&a[i], &b[i]);
        let ord = match (x.is_null(), y.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let base = x.sql_cmp(y).unwrap_or(Ordering::Equal);
                if k.descending {
                    base.reverse()
                } else {
                    base
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// A sorted row: key values followed by payload values.
type Row = Vec<Value>;

fn row_bytes(row: &[Value]) -> usize {
    row.iter().map(Value::size_bytes).sum()
}

/// External merge sort operator.
pub struct ExternalSortOp {
    child: Option<OperatorBox>,
    keys: Vec<SortKey>,
    /// Bytes of rows buffered before a run spills.
    budget: usize,
    /// Optional accounting against the shared buffer manager.
    buffers: Option<Arc<BufferManager>>,
    /// Emit the computed key columns ahead of the payload (merge join
    /// wants them; plain ORDER BY strips them).
    emit_keys: bool,
    payload_types: Vec<LogicalType>,
    key_types: Vec<LogicalType>,
    merge: Option<MergeState>,
    spilled_runs: usize,
}

struct MergeState {
    runs: Vec<RunCursor>,
}

enum RunCursor {
    Memory { rows: std::vec::IntoIter<Row> },
    Spill { reader: SpillReader, chunk: Option<DataChunk>, row: usize },
}

impl RunCursor {
    fn peek_or_next(&mut self, peeked: &mut Option<Row>) -> Result<Option<Row>> {
        if let Some(r) = peeked.take() {
            return Ok(Some(r));
        }
        match self {
            RunCursor::Memory { rows } => Ok(rows.next()),
            RunCursor::Spill { reader, chunk, row } => loop {
                if let Some(c) = chunk {
                    if *row < c.len() {
                        let r = c.row_values(*row);
                        *row += 1;
                        return Ok(Some(r));
                    }
                }
                *chunk = reader.next_chunk()?;
                *row = 0;
                if chunk.is_none() {
                    return Ok(None);
                }
            },
        }
    }
}

impl ExternalSortOp {
    pub fn new(
        child: OperatorBox,
        keys: Vec<SortKey>,
        budget: usize,
        buffers: Option<Arc<BufferManager>>,
        emit_keys: bool,
    ) -> Self {
        let payload_types = child.output_types();
        let key_types = keys.iter().map(|k| k.expr.result_type()).collect();
        ExternalSortOp {
            child: Some(child),
            keys,
            budget: budget.max(1 << 16),
            buffers,
            emit_keys,
            payload_types,
            key_types,
            merge: None,
            spilled_runs: 0,
        }
    }

    /// Number of runs that went to disk (diagnostics for the §4 benches).
    pub fn spilled_runs(&self) -> usize {
        self.spilled_runs
    }

    fn all_types(&self) -> Vec<LogicalType> {
        let mut t = self.key_types.clone();
        t.extend(self.payload_types.iter().copied());
        t
    }

    fn sort_phase(&mut self) -> Result<()> {
        let mut child = self.child.take().expect("sort runs once");
        let mut run: Vec<Row> = Vec::new();
        let mut run_bytes = 0usize;
        let mut spills: Vec<SpillReader> = Vec::new();
        let all_types = self.all_types();
        // Claim the sort budget from the ledger, degrading under pressure:
        // when concurrent sessions hold the pool, halve the ask until it
        // fits (smaller in-memory runs, more spilling — same rows out).
        // Below the 64 KB floor, run unaccounted at the floor, the same
        // bounded exception the other serial scratch buffers use.
        let mut _reservation = None;
        if let Some(b) = &self.buffers {
            let mut want = self.budget.min(b.memory_limit());
            loop {
                if want < (1 << 16) {
                    self.budget = 1 << 16;
                    break;
                }
                if let Ok(r) = b.reserve(want) {
                    self.budget = want;
                    _reservation = Some(r);
                    break;
                }
                want /= 2;
            }
        }
        while let Some(chunk) = child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            let key_vectors =
                self.keys.iter().map(|k| k.expr.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
            for row in 0..chunk.len() {
                let mut r: Row = Vec::with_capacity(self.keys.len() + chunk.column_count());
                for kv in &key_vectors {
                    r.push(kv.get_value(row));
                }
                r.extend(chunk.row_values(row));
                run_bytes += row_bytes(&r);
                run.push(r);
                if run_bytes >= self.budget {
                    let keys = std::mem::take(&mut self.keys);
                    run.sort_by(|a, b| compare_keys(a, b, &keys));
                    self.keys = keys;
                    spills.push(self.spill_run(&run, &all_types)?);
                    self.spilled_runs += 1;
                    run.clear();
                    run_bytes = 0;
                }
            }
        }
        let keys = std::mem::take(&mut self.keys);
        run.sort_by(|a, b| compare_keys(a, b, &keys));
        self.keys = keys;
        let mut runs: Vec<RunCursor> = spills
            .into_iter()
            .map(|reader| RunCursor::Spill { reader, chunk: None, row: 0 })
            .collect();
        if !run.is_empty() {
            runs.push(RunCursor::Memory { rows: run.into_iter() });
        }
        self.merge = Some(MergeState { runs });
        Ok(())
    }

    fn spill_run(&self, run: &[Row], types: &[LogicalType]) -> Result<SpillReader> {
        let mut spill = SpillFile::create()?;
        for rows in run.chunks(VECTOR_SIZE) {
            let chunk = DataChunk::from_rows(types, rows)?;
            spill.write_chunk(&chunk)?;
        }
        spill.finish()
    }
}

impl PhysicalOperator for ExternalSortOp {
    fn output_types(&self) -> Vec<LogicalType> {
        if self.emit_keys {
            self.all_types()
        } else {
            self.payload_types.clone()
        }
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.merge.is_none() {
            self.sort_phase()?;
        }
        let nkeys = self.keys.len();
        let out_types = self.output_types();
        let all_types = self.all_types();
        let merge = self.merge.as_mut().expect("sorted");
        // K-way merge: peek the head of every run, emit the smallest.
        let mut peeked: Vec<Option<Row>> = (0..merge.runs.len()).map(|_| None).collect();
        let mut out = DataChunk::new(&out_types);
        while out.len() < VECTOR_SIZE {
            let mut best: Option<usize> = None;
            for i in 0..merge.runs.len() {
                if peeked[i].is_none() {
                    let mut slot = None;
                    if let Some(r) = merge.runs[i].peek_or_next(&mut slot)? {
                        peeked[i] = Some(r);
                    }
                }
                if let Some(r) = &peeked[i] {
                    best = match best {
                        None => Some(i),
                        Some(j) => {
                            let cur = peeked[j].as_ref().expect("peeked");
                            if compare_keys(r, cur, &self.keys) == Ordering::Less {
                                Some(i)
                            } else {
                                Some(j)
                            }
                        }
                    };
                }
            }
            let Some(i) = best else { break };
            let row = peeked[i].take().expect("present");
            if self.emit_keys {
                out.append_row(&row)?;
            } else {
                out.append_row(&row[nkeys..])?;
            }
        }
        // Stash surviving peeks back into their runs.
        for (i, p) in peeked.into_iter().enumerate() {
            if let Some(r) = p {
                match &mut merge.runs[i] {
                    RunCursor::Memory { rows } => {
                        // Re-prefix: cheapest is to chain a one-element iter.
                        let mut v: Vec<Row> = vec![r];
                        v.extend(rows.by_ref());
                        merge.runs[i] = RunCursor::Memory { rows: v.into_iter() };
                    }
                    RunCursor::Spill { chunk, row, .. } => {
                        // Push back by rebuilding a single-row chunk ahead.
                        // Spilled chunks always carry keys + payload.
                        let mut c = DataChunk::new(&all_types);
                        c.append_row(&r)?;
                        if let Some(rest) = chunk {
                            c.append_from(rest, *row, rest.len() - *row)?;
                        }
                        *chunk = Some(c);
                        *row = 0;
                    }
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

/// Top-N: ORDER BY + LIMIT without a full sort — a bounded insertion
/// buffer of `limit + offset` rows, its real footprint charged against
/// the buffer manager like the parallel cap-mode path.
pub struct TopNOp {
    child: Option<OperatorBox>,
    keys: Vec<SortKey>,
    limit: usize,
    offset: usize,
    out: Option<std::vec::IntoIter<Row>>,
    types: Vec<LogicalType>,
    buffers: Option<Arc<BufferManager>>,
    /// Charge for the buffered candidate rows, synced per input chunk and
    /// held until the operator drops (the survivors stay resident while
    /// the consumer drains them).
    reservation: Option<MemoryReservation>,
}

impl TopNOp {
    pub fn new(child: OperatorBox, keys: Vec<SortKey>, limit: usize, offset: usize) -> Self {
        let types = child.output_types();
        TopNOp {
            child: Some(child),
            keys,
            limit,
            offset,
            out: None,
            types,
            buffers: None,
            reservation: None,
        }
    }

    /// Account the candidate buffer against `buffers` (§4 budget).
    pub fn with_buffers(mut self, buffers: Option<Arc<BufferManager>>) -> Self {
        self.buffers = buffers;
        self
    }

    /// Bytes currently charged for the candidate buffer (0 when
    /// unaccounted).
    pub fn accounted_bytes(&self) -> usize {
        self.reservation.as_ref().map_or(0, MemoryReservation::bytes)
    }

    /// Keep the reservation equal to the buffered candidate bytes. Unlike
    /// the parallel cap-mode path there is no per-worker spill fallback
    /// here: a refused grow surfaces as an out-of-memory error in the
    /// issuing session's own quota.
    fn sync_charge(&mut self, bytes: usize) -> Result<()> {
        let Some(buffers) = &self.buffers else { return Ok(()) };
        match self.reservation.as_mut() {
            None => self.reservation = Some(buffers.reserve(bytes)?),
            Some(res) => {
                let held = res.bytes();
                if bytes > held {
                    res.grow(bytes - held)?;
                } else {
                    res.shrink(held - bytes);
                }
            }
        }
        Ok(())
    }

    fn fill(&mut self) -> Result<()> {
        let mut child = self.child.take().expect("runs once");
        let cap = self.limit + self.offset;
        // (keys, payload) rows kept sorted ascending; worst row trimmed.
        let mut top: Vec<(Row, Row)> = Vec::with_capacity(cap + 1);
        let mut bytes = 0usize;
        while let Some(chunk) = child.next_chunk()? {
            let key_vectors =
                self.keys.iter().map(|k| k.expr.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
            for row in 0..chunk.len() {
                let key: Row = key_vectors.iter().map(|v| v.get_value(row)).collect();
                if top.len() == cap {
                    if let Some(last) = top.last() {
                        if compare_keys(&key, &last.0, &self.keys) != Ordering::Less {
                            continue;
                        }
                    }
                }
                let payload = chunk.row_values(row);
                bytes += row_bytes(&key) + row_bytes(&payload);
                let pos = top
                    .binary_search_by(|(k, _)| compare_keys(k, &key, &self.keys))
                    .unwrap_or_else(|p| p);
                top.insert(pos, (key, payload));
                if top.len() > cap {
                    let (k, p) = top.pop().expect("over cap");
                    bytes -= row_bytes(&k) + row_bytes(&p);
                }
            }
            self.sync_charge(bytes)?;
        }
        let rows: Vec<Row> =
            top.into_iter().skip(self.offset).map(|(_, payload)| payload).collect();
        self.out = Some(rows.into_iter());
        Ok(())
    }
}

impl PhysicalOperator for TopNOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.out.is_none() {
            self.fill()?;
        }
        let it = self.out.as_mut().expect("filled");
        let mut out = DataChunk::new(&self.types);
        for row in it.by_ref().take(VECTOR_SIZE) {
            out.append_row(&row)?;
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::basic::ValuesOp;
    use crate::ops::drain_rows;

    fn shuffled_source(n: i32) -> OperatorBox {
        // Deterministic shuffle via multiplicative hashing.
        let mut rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                let v = (i64::from(i) * 2654435761 % i64::from(n.max(1))) as i32;
                vec![Value::Integer(v), Value::Varchar(format!("p{v}"))]
            })
            .collect();
        rows.push(vec![Value::Null, Value::Varchar("null-row".into())]);
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Varchar], &rows).unwrap();
        Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Varchar], vec![chunk]))
    }

    fn first_col(rows: &[Vec<Value>]) -> Vec<Value> {
        rows.iter().map(|r| r[0].clone()).collect()
    }

    #[test]
    fn in_memory_sort_ascending_nulls_last() {
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let mut op = ExternalSortOp::new(shuffled_source(100), keys, 1 << 30, None, false);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 101);
        let vals = first_col(&rows);
        for w in vals.windows(2) {
            assert!(w[0].total_cmp(&w[1]) != Ordering::Greater, "{w:?}");
        }
        assert!(vals.last().unwrap().is_null(), "NULLS LAST");
        assert_eq!(op.spilled_runs(), 0);
    }

    #[test]
    fn descending_puts_nulls_first() {
        let keys = vec![SortKey::desc(Expr::column(0, LogicalType::Integer))];
        let mut op = ExternalSortOp::new(shuffled_source(50), keys, 1 << 30, None, false);
        let rows = drain_rows(&mut op).unwrap();
        assert!(rows[0][0].is_null());
        let non_null: Vec<i64> = rows[1..].iter().filter_map(|r| r[0].as_i64()).collect();
        for w in non_null.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn external_sort_spills_and_merges_correctly() {
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        // Tiny budget forces multiple spill runs.
        let mut op = ExternalSortOp::new(shuffled_source(5000), keys, 1 << 16, None, false);
        let rows = drain_rows(&mut op).unwrap();
        assert!(op.spilled_runs() >= 2, "expected spills, got {}", op.spilled_runs());
        assert_eq!(rows.len(), 5001);
        let vals: Vec<i64> = rows.iter().filter_map(|r| r[0].as_i64()).collect();
        assert_eq!(vals.len(), 5000);
        for w in vals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Every input value present exactly as often as produced.
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted);
    }

    #[test]
    fn sort_with_emitted_keys() {
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let mut op = ExternalSortOp::new(shuffled_source(10), keys, 1 << 30, None, true);
        assert_eq!(op.output_types().len(), 3); // key + 2 payload columns
        let rows = drain_rows(&mut op).unwrap();
        // Key column equals the original first payload column.
        for r in &rows {
            assert_eq!(r[0], r[1]);
        }
    }

    #[test]
    fn multi_key_sort() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Integer(1), Value::Integer(9)],
            vec![Value::Integer(1), Value::Integer(3)],
            vec![Value::Integer(0), Value::Integer(5)],
        ];
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        let src: OperatorBox =
            Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]));
        let keys = vec![
            SortKey::asc(Expr::column(0, LogicalType::Integer)),
            SortKey::desc(Expr::column(1, LogicalType::Integer)),
        ];
        let mut op = ExternalSortOp::new(src, keys, 1 << 30, None, false);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(first_col(&rows), vec![Value::Integer(0), Value::Integer(1), Value::Integer(1)]);
        assert_eq!(rows[1][1], Value::Integer(9));
        assert_eq!(rows[2][1], Value::Integer(3));
    }

    #[test]
    fn topn_matches_full_sort() {
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let mut full =
            ExternalSortOp::new(shuffled_source(1000), keys.clone(), 1 << 30, None, false);
        let all = drain_rows(&mut full).unwrap();
        let mut topn = TopNOp::new(shuffled_source(1000), keys, 7, 3);
        let top = drain_rows(&mut topn).unwrap();
        assert_eq!(top.len(), 7);
        assert_eq!(first_col(&top), first_col(&all[3..10]));
    }

    #[test]
    fn topn_smaller_input_than_limit() {
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let mut topn = TopNOp::new(shuffled_source(3), keys, 100, 0);
        let rows = drain_rows(&mut topn).unwrap();
        assert_eq!(rows.len(), 4);
    }

    fn test_buffers(limit: usize) -> Arc<BufferManager> {
        BufferManager::new(eider_storage::buffer::BufferManagerConfig {
            memory_limit: limit,
            memtest_allocations: false,
        })
    }

    #[test]
    fn topn_charges_its_buffer_and_releases_on_drop() {
        let mgr = test_buffers(1 << 30);
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let mut topn =
            TopNOp::new(shuffled_source(1000), keys, 7, 3).with_buffers(Some(Arc::clone(&mgr)));
        let rows = drain_rows(&mut topn).unwrap();
        assert_eq!(rows.len(), 7);
        // The charge pins the *retained* footprint: the `limit + offset`
        // buffered rows (each one key tuple + payload row), not the 1001
        // rows streamed through — losers are refunded as they are trimmed.
        let per_row: usize =
            rows.iter().map(|r| row_bytes(&[r[0].clone()]) + row_bytes(r)).sum::<usize>() / 7;
        let expected = per_row * 10; // limit=7 + offset=3 rows held
        assert_eq!(topn.accounted_bytes(), mgr.used_memory());
        assert!(
            topn.accounted_bytes() >= expected - expected / 4
                && topn.accounted_bytes() <= expected + expected / 4,
            "accounted {} should pin ~{} (10 buffered rows), not the whole input",
            topn.accounted_bytes(),
            expected
        );
        drop(topn);
        assert_eq!(mgr.used_memory(), 0, "reservation released with the operator");
    }

    #[test]
    fn topn_over_budget_errors_instead_of_silently_buffering() {
        // 64 bytes cannot hold 100 buffered rows: the charge must surface
        // as an out-of-memory error rather than an unaccounted allocation.
        let mgr = test_buffers(64);
        let keys = vec![SortKey::asc(Expr::column(0, LogicalType::Integer))];
        let mut topn =
            TopNOp::new(shuffled_source(1000), keys, 100, 0).with_buffers(Some(Arc::clone(&mgr)));
        let err = drain_rows(&mut topn).unwrap_err();
        assert!(err.to_string().contains("emory"), "unexpected error: {err}");
        drop(topn);
        assert_eq!(mgr.used_memory(), 0);
    }
}
