//! Out-of-core sort-merge join: the RAM-frugal alternative to hash join.
//!
//! §4: "a hash join can be transparently replaced with a out-of-core merge
//! join. ... The merge requires fewer main memory resources to run, but
//! O(n log n) CPU cycles as well as disk IO. If the DBMS detects that the
//! application currently uses a large amount of main memory but not a lot
//! of CPU cores, it can switch to merge join to reduce the load on RAM."
//!
//! Both inputs are sorted by the join keys through [`ExternalSortOp`]
//! (which spills under its memory budget), then merged with duplicate-run
//! buffering. Only the current duplicate run of the right side is held in
//! memory.

use crate::expression::Expr;
use crate::ops::sort::{compare_keys, ExternalSortOp, SortKey};
use crate::ops::{OperatorBox, PhysicalOperator};
use eider_storage::buffer::BufferManager;
use eider_vector::{DataChunk, LogicalType, Result, Value, VECTOR_SIZE};
use std::cmp::Ordering;
use std::sync::Arc;

/// Row cursor over a sorted input.
struct Cursor {
    op: ExternalSortOp,
    chunk: Option<DataChunk>,
    row: usize,
}

impl Cursor {
    fn new(op: ExternalSortOp) -> Self {
        Cursor { op, chunk: None, row: 0 }
    }

    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        loop {
            if let Some(c) = &self.chunk {
                if self.row < c.len() {
                    let r = c.row_values(self.row);
                    self.row += 1;
                    return Ok(Some(r));
                }
            }
            self.chunk = self.op.next_chunk()?;
            self.row = 0;
            if self.chunk.is_none() {
                return Ok(None);
            }
        }
    }
}

/// Inner equi-join over sorted inputs.
pub struct MergeJoinOp {
    left: Cursor,
    right: Cursor,
    nkeys: usize,
    sort_spec: Vec<SortKey>,
    left_payload: usize,
    right_payload: usize,
    out_types: Vec<LogicalType>,
    current_left: Option<Vec<Value>>,
    /// Buffered right duplicate run and its key.
    right_run: Vec<Vec<Value>>,
    right_run_key: Option<Vec<Value>>,
    /// Next right row already pulled but past the current run.
    right_lookahead: Option<Vec<Value>>,
    /// Position within the run × current left row emission.
    run_pos: usize,
    exhausted: bool,
}

impl MergeJoinOp {
    /// Wrap both children in external sorts on the join keys and merge.
    /// `budget` bounds each sort's in-memory run size.
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        budget: usize,
        buffers: Option<Arc<BufferManager>>,
    ) -> Self {
        assert_eq!(left_keys.len(), right_keys.len());
        let nkeys = left_keys.len();
        let left_payload = left.output_types().len();
        let right_payload = right.output_types().len();
        let mut out_types = left.output_types();
        out_types.extend(right.output_types());
        // NULL keys never join: ascending with NULLS LAST lets us stop a
        // side when its key goes NULL.
        let lspec: Vec<SortKey> = left_keys.into_iter().map(SortKey::asc).collect();
        let rspec: Vec<SortKey> = right_keys.into_iter().map(SortKey::asc).collect();
        let sort_spec: Vec<SortKey> = (0..nkeys)
            .map(|i| SortKey::asc(Expr::column(i, lspec[i].expr.result_type())))
            .collect();
        let lsort = ExternalSortOp::new(left, lspec, budget, buffers.clone(), true);
        let rsort = ExternalSortOp::new(right, rspec, budget, buffers, true);
        MergeJoinOp {
            left: Cursor::new(lsort),
            right: Cursor::new(rsort),
            nkeys,
            sort_spec,
            left_payload,
            right_payload,
            out_types,
            current_left: None,
            right_run: Vec::new(),
            right_run_key: None,
            right_lookahead: None,
            run_pos: 0,
            exhausted: false,
        }
    }

    /// Runs the two input sorts spilled to disk (diagnostics, §4 bench).
    pub fn spilled_runs(&self) -> (usize, usize) {
        (self.left.op.spilled_runs(), self.right.op.spilled_runs())
    }

    fn key_of(row: &[Value], nkeys: usize) -> Vec<Value> {
        row[..nkeys].to_vec()
    }

    /// Load the next right duplicate run (all rows sharing one key).
    fn load_right_run(&mut self) -> Result<bool> {
        self.right_run.clear();
        self.right_run_key = None;
        let first = match self.right_lookahead.take() {
            Some(r) => Some(r),
            None => self.right.next_row()?,
        };
        let Some(first) = first else {
            return Ok(false);
        };
        let key = Self::key_of(&first, self.nkeys);
        if key.iter().any(Value::is_null) {
            return Ok(false); // NULL keys sort last; nothing joins anymore
        }
        self.right_run.push(first);
        while let Some(r) = self.right.next_row()? {
            let k = Self::key_of(&r, self.nkeys);
            if k == key && !k.iter().any(Value::is_null) {
                self.right_run.push(r);
            } else {
                self.right_lookahead = Some(r);
                break;
            }
        }
        self.right_run_key = Some(key);
        Ok(true)
    }
}

impl PhysicalOperator for MergeJoinOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.exhausted {
            return Ok(None);
        }
        let mut out = DataChunk::new(&self.out_types);
        'produce: while out.len() < VECTOR_SIZE {
            // Ensure a current left row.
            if self.current_left.is_none() {
                match self.left.next_row()? {
                    Some(r) => {
                        if Self::key_of(&r, self.nkeys).iter().any(Value::is_null) {
                            // NULLS LAST: no further left row can join.
                            self.exhausted = true;
                            break 'produce;
                        }
                        self.current_left = Some(r);
                        self.run_pos = 0;
                    }
                    None => {
                        self.exhausted = true;
                        break 'produce;
                    }
                }
            }
            // Ensure a right run.
            if self.right_run_key.is_none() && !self.load_right_run()? {
                self.exhausted = true;
                break 'produce;
            }
            let left_row = self.current_left.as_ref().expect("present");
            let lkey = Self::key_of(left_row, self.nkeys);
            let rkey = self.right_run_key.as_ref().expect("present");
            match compare_keys(&lkey, rkey, &self.sort_spec) {
                Ordering::Less => {
                    self.current_left = None;
                }
                Ordering::Greater => {
                    if !self.load_right_run()? {
                        self.exhausted = true;
                        break 'produce;
                    }
                }
                Ordering::Equal => {
                    while self.run_pos < self.right_run.len() && out.len() < VECTOR_SIZE {
                        let rrow = &self.right_run[self.run_pos];
                        let mut vals =
                            left_row[self.nkeys..self.nkeys + self.left_payload].to_vec();
                        vals.extend_from_slice(&rrow[self.nkeys..self.nkeys + self.right_payload]);
                        out.append_row(&vals)?;
                        self.run_pos += 1;
                    }
                    if self.run_pos >= self.right_run.len() {
                        // Left row done against this run; next left row may
                        // share the key, so keep the run.
                        self.current_left = None;
                        self.run_pos = 0;
                    } else {
                        // Chunk full mid-run; resume next call.
                        break 'produce;
                    }
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::basic::ValuesOp;
    use crate::ops::drain_rows;

    fn table(rows: Vec<Vec<Value>>, types: Vec<LogicalType>) -> OperatorBox {
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        Box::new(ValuesOp::new(types, vec![chunk]))
    }

    fn key_expr() -> Vec<Expr> {
        vec![Expr::column(0, LogicalType::Integer)]
    }

    #[test]
    fn matches_hash_join_semantics() {
        let left = table(
            vec![
                vec![Value::Integer(3), Value::Varchar("c".into())],
                vec![Value::Integer(1), Value::Varchar("a".into())],
                vec![Value::Null, Value::Varchar("n".into())],
                vec![Value::Integer(1), Value::Varchar("a2".into())],
            ],
            vec![LogicalType::Integer, LogicalType::Varchar],
        );
        let right = table(
            vec![
                vec![Value::Integer(1), Value::Varchar("one".into())],
                vec![Value::Integer(1), Value::Varchar("uno".into())],
                vec![Value::Integer(2), Value::Varchar("two".into())],
                vec![Value::Null, Value::Varchar("null".into())],
                vec![Value::Integer(3), Value::Varchar("three".into())],
            ],
            vec![LogicalType::Integer, LogicalType::Varchar],
        );
        let mut op = MergeJoinOp::new(left, right, key_expr(), key_expr(), 1 << 30, None);
        let rows = drain_rows(&mut op).unwrap();
        // left key 1 (x2 left rows) matches two right rows -> 4; key 3 -> 1.
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.len() == 4));
        // No NULL keys joined.
        assert!(rows.iter().all(|r| !r[0].is_null()));
    }

    #[test]
    fn large_join_with_tiny_budget_spills() {
        let n = 20_000;
        let left_rows: Vec<Vec<Value>> =
            (0..n).map(|i| vec![Value::Integer(i % 1000), Value::Integer(i)]).collect();
        let right_rows: Vec<Vec<Value>> =
            (0..1000).map(|i| vec![Value::Integer(i), Value::Integer(i * 10)]).collect();
        let left = table(left_rows, vec![LogicalType::Integer, LogicalType::Integer]);
        let right = table(right_rows, vec![LogicalType::Integer, LogicalType::Integer]);
        let mut op = MergeJoinOp::new(left, right, key_expr(), key_expr(), 1 << 16, None);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), n as usize, "every left row matches exactly once");
        // Verify a sample join result.
        let sample = rows.iter().find(|r| r[1] == Value::Integer(1500)).unwrap();
        assert_eq!(sample[0], Value::Integer(500));
        assert_eq!(sample[3], Value::Integer(5000));
    }

    #[test]
    fn disjoint_keys_produce_nothing() {
        let left = table(
            vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
            vec![LogicalType::Integer],
        );
        let right = table(
            vec![vec![Value::Integer(10)], vec![Value::Integer(20)]],
            vec![LogicalType::Integer],
        );
        let mut op = MergeJoinOp::new(left, right, key_expr(), key_expr(), 1 << 20, None);
        assert!(drain_rows(&mut op).unwrap().is_empty());
    }

    #[test]
    fn empty_inputs() {
        let left = table(vec![], vec![LogicalType::Integer]);
        let right = table(vec![vec![Value::Integer(1)]], vec![LogicalType::Integer]);
        let mut op = MergeJoinOp::new(left, right, key_expr(), key_expr(), 1 << 20, None);
        assert!(drain_rows(&mut op).unwrap().is_empty());
    }
}
