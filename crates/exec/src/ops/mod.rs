//! Physical operators of the Vector Volcano engine (§6).

use eider_vector::{DataChunk, LogicalType, Result};

pub mod agg;
pub mod basic;
pub mod join;
pub mod merge_join;
pub mod modify;
pub mod scan;
pub mod sort;

pub use agg::{AggExpr, HashAggregateOp, SimpleAggregateOp};
pub use basic::{DistinctOp, FilterOp, LimitOp, ProjectionOp, ValuesOp};
pub use join::{
    BuildPartial, BuildSide, CrossProductOp, HashJoinOp, JoinProbeOp, JoinType, NestedLoopJoinOp,
};
pub use merge_join::MergeJoinOp;
pub use modify::{DeleteOp, InsertOp, UpdateOp};
pub use scan::{SourceScanOp, TableScanOp};
pub use sort::{ExternalSortOp, SortKey, TopNOp};

/// The pull interface: every operator produces chunks until exhausted.
/// "Query execution commences by pulling the first chunk of data from the
/// root node of the physical plan" — and the client API exposes exactly
/// this handle to the application (§5).
pub trait PhysicalOperator: Send {
    /// Output column types.
    fn output_types(&self) -> Vec<LogicalType>;

    /// Pull the next chunk; `None` when the operator is exhausted.
    fn next_chunk(&mut self) -> Result<Option<DataChunk>>;
}

/// Boxed operator, the edge type of physical plans.
pub type OperatorBox = Box<dyn PhysicalOperator>;

/// Pull an operator to completion (tests, pipeline breakers).
pub fn drain(op: &mut dyn PhysicalOperator) -> Result<Vec<DataChunk>> {
    let mut out = Vec::new();
    while let Some(chunk) = op.next_chunk()? {
        if !chunk.is_empty() {
            out.push(chunk);
        }
    }
    Ok(out)
}

/// Total row count across drained chunks (test helper).
pub fn drain_rows(op: &mut dyn PhysicalOperator) -> Result<Vec<Vec<eider_vector::Value>>> {
    let mut rows = Vec::new();
    for chunk in drain(op)? {
        rows.extend(chunk.to_rows());
    }
    Ok(rows)
}
