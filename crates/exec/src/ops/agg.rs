//! Aggregation operators: ungrouped (simple) and hash-grouped.
//!
//! Grouping runs on the row-format key path ([`crate::rowkey`]): group
//! keys are hashed vectorized, normalized into byte rows and deduplicated
//! in an arena-backed [`KeyedTable`], and aggregate states update through
//! the typed scatter kernels of [`crate::aggregate`] — no per-row
//! `Vec<Value>` anywhere on the hot path (§2's cycles-per-value budget).

use crate::aggregate::{update_grouped_states, AggKind, AggState};
use crate::expression::Expr;
use crate::ops::{OperatorBox, PhysicalOperator};
use crate::rowkey::{KeyLayout, KeyedTable};
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_vector::{DataChunk, LogicalType, Result, Value, Vector, VECTOR_SIZE};
use std::sync::Arc;

/// One aggregate of the SELECT list: kind + argument expression.
#[derive(Debug, Clone)]
pub struct AggExpr {
    pub kind: AggKind,
    /// `None` only for COUNT(*).
    pub arg: Option<Expr>,
    pub distinct: bool,
}

impl AggExpr {
    pub fn result_type(&self) -> LogicalType {
        self.kind.result_type(self.arg.as_ref().map(Expr::result_type))
    }

    fn new_state(&self) -> AggState {
        AggState::new(self.kind, self.arg.as_ref().map(Expr::result_type), self.distinct)
    }
}

/// Fold one chunk into ungrouped aggregate states — the single
/// definition of per-chunk update semantics (COUNT(*) counts every row
/// via a non-null sentinel; other aggregates evaluate their argument),
/// shared by the serial operator and the parallel executor's sink.
/// Each aggregate first tries the typed bulk kernel
/// ([`AggState::update_vector`]); DISTINCT and rare type combinations
/// fall back to the per-row `Value` path with identical semantics.
pub fn update_simple_states(
    aggs: &[AggExpr],
    states: &mut [AggState],
    chunk: &DataChunk,
) -> Result<()> {
    for (agg, state) in aggs.iter().zip(states.iter_mut()) {
        match &agg.arg {
            Some(expr) => {
                let v = expr.evaluate(chunk)?;
                if !state.update_vector(&v, None)? {
                    for row in 0..v.len() {
                        state.update(&v.get_value(row))?;
                    }
                }
            }
            None => {
                // COUNT(*): every row counts.
                if let AggState::Count(c) = state {
                    *c += chunk.len() as i64;
                } else {
                    for _ in 0..chunk.len() {
                        state.update(&Value::Boolean(true))?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// The GROUP BY hash table: an arena-backed [`KeyedTable`] of group keys
/// plus one *flat* aggregate-state array — group `g`'s state for
/// aggregate `a` lives at `states[g * state_width + a]`, so a million
/// groups cost one allocation, not a `Vec` each. One instance per serial
/// operator; the parallel sink keeps one per morsel and merges them on
/// encoded byte keys.
pub struct GroupTable {
    table: KeyedTable<()>,
    states: Vec<AggState>,
    group_ids: Vec<u32>,
    /// Aggregates per group: the stride of `states`.
    state_width: usize,
}

impl GroupTable {
    pub fn new(groups: &[Expr], aggs: &[AggExpr]) -> GroupTable {
        GroupTable::with_capacity(groups, aggs, 0)
    }

    /// Pre-size for `cap` expected groups (e.g. the cardinality the first
    /// morsel of a parallel aggregate observed).
    pub fn with_capacity(groups: &[Expr], aggs: &[AggExpr], cap: usize) -> GroupTable {
        let layout = KeyLayout::new(groups.iter().map(Expr::result_type).collect());
        GroupTable {
            table: KeyedTable::with_capacity(layout, cap),
            states: Vec::new(),
            group_ids: Vec::new(),
            state_width: aggs.len(),
        }
    }

    /// Number of distinct groups seen so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Seal a finished partial before parking it for the merge: frees the
    /// per-chunk scratch buffers (encode/hash staging and group-id
    /// gather), which are sized by input chunks rather than groups and
    /// would otherwise dominate the retained footprint of low-cardinality
    /// partials — per morsel, not per query.
    pub fn seal(&mut self) {
        self.table.release_scratch();
        self.group_ids = Vec::new();
    }

    /// Heap footprint of the table: key arena + buckets + scratch, plus
    /// the per-group aggregate-state rows. DISTINCT dedup sets are charged
    /// coarsely via [`AggState::size_bytes`]'s base cost only when states
    /// are enumerated, so treat this as a lower bound like every other
    /// estimate the buffer manager consumes.
    pub fn memory_bytes(&self) -> usize {
        self.table.table_bytes()
            + self.table.len() * self.state_width * std::mem::size_of::<AggState>()
    }

    /// Fold one chunk in: vectorized hash + encode + upsert of the keys,
    /// then one scatter-kernel pass per aggregate.
    pub fn update_chunk(
        &mut self,
        groups: &[Expr],
        aggs: &[AggExpr],
        chunk: &DataChunk,
    ) -> Result<()> {
        // Bare column references — the overwhelmingly common GROUP BY
        // shape — borrow the chunk's vector directly; evaluating them
        // would deep-copy every string in the key column per chunk.
        let mut computed: Vec<Vector> = Vec::new();
        for g in groups {
            if !matches!(g, Expr::ColumnRef { .. }) {
                computed.push(g.evaluate(chunk)?);
            }
        }
        let mut computed_iter = computed.iter();
        let key_vectors: Vec<&Vector> = groups
            .iter()
            .map(|g| match g {
                Expr::ColumnRef { index, .. } => chunk.column(*index),
                _ => computed_iter.next().expect("evaluated above"),
            })
            .collect();
        let known_groups = self.table.len();
        self.table.upsert_rows(&key_vectors, chunk.len(), || (), &mut self.group_ids)?;
        // New groups are appended in insertion order; their fresh states
        // extend the flat array to keep `states[g * width + a]` aligned.
        self.states.reserve((self.table.len() - known_groups) * self.state_width);
        for _ in known_groups..self.table.len() {
            self.states.extend(aggs.iter().map(AggExpr::new_state));
        }
        for (i, agg) in aggs.iter().enumerate() {
            let arg = agg.arg.as_ref().map(|e| e.evaluate(chunk)).transpose()?;
            update_grouped_states(
                &mut self.states,
                self.state_width,
                i,
                &self.group_ids,
                arg.as_ref(),
            )?;
        }
        Ok(())
    }

    /// Merge another table's groups into this one (parallel partials, in
    /// the other table's insertion order — deterministic given morsel
    /// order). States of shared keys combine via [`AggState::merge`].
    pub fn merge_from(&mut self, other: GroupTable) -> Result<()> {
        let GroupTable { table, states, state_width, .. } = self;
        let w = *state_width;
        let mut incoming: Vec<Option<AggState>> = other.states.into_iter().map(Some).collect();
        table.merge_from_with(other.table, |idx, other_idx, inserted| {
            let partial = incoming[other_idx * w..(other_idx + 1) * w].iter_mut().map(|s| s.take());
            if inserted {
                debug_assert_eq!(idx * w, states.len(), "new groups append in order");
                states.extend(partial.map(|s| s.expect("moved once")));
            } else {
                for (a, p) in partial.enumerate() {
                    states[idx * w + a].merge(&p.expect("moved once"))?;
                }
            }
            Ok(())
        })
    }

    /// Emit the groups named by `indices` as one output chunk: decoded key
    /// columns first, then finalized aggregate columns.
    pub fn emit(&self, indices: &[u32], aggs: &[AggExpr]) -> Result<DataChunk> {
        let mut columns: Vec<Vector> = self
            .table
            .layout()
            .types()
            .iter()
            .map(|&t| Vector::with_capacity(t, indices.len()))
            .collect();
        let key_width = columns.len();
        columns.extend(aggs.iter().map(|a| Vector::with_capacity(a.result_type(), indices.len())));
        for &idx in indices {
            self.table.decode_key_into(idx as usize, &mut columns[..key_width])?;
            let states = &self.states
                [idx as usize * self.state_width..(idx as usize + 1) * self.state_width];
            for (i, s) in states.iter().enumerate() {
                columns[key_width + i].push_value(&s.finalize()?)?;
            }
        }
        DataChunk::from_vectors(columns)
    }

    /// Group indices in encoded-key (= [`Value::total_cmp`]) order — what
    /// the parallel merge emits so output is thread-count independent.
    pub fn sorted_order(&self) -> Vec<u32> {
        self.table.sorted_order()
    }
}

/// Fold one chunk into a GROUP BY table (grouping equality: NULL keys
/// form one group). Shared by the serial operator and the parallel
/// executor's per-morsel partials so the two engines cannot diverge.
pub fn update_group_table(
    groups: &[Expr],
    aggs: &[AggExpr],
    table: &mut GroupTable,
    chunk: &DataChunk,
) -> Result<()> {
    table.update_chunk(groups, aggs, chunk)
}

/// Aggregation without GROUP BY: exactly one output row.
pub struct SimpleAggregateOp {
    child: OperatorBox,
    aggs: Vec<AggExpr>,
    done: bool,
}

impl SimpleAggregateOp {
    pub fn new(child: OperatorBox, aggs: Vec<AggExpr>) -> Self {
        SimpleAggregateOp { child, aggs, done: false }
    }
}

impl PhysicalOperator for SimpleAggregateOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.aggs.iter().map(AggExpr::result_type).collect()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut states: Vec<AggState> = self.aggs.iter().map(AggExpr::new_state).collect();
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            update_simple_states(&self.aggs, &mut states, &chunk)?;
        }
        let row: Vec<Value> = states.iter().map(AggState::finalize).collect::<Result<_>>()?;
        let mut out = DataChunk::new(&self.output_types());
        out.append_row(&row)?;
        Ok(Some(out))
    }
}

/// GROUP BY aggregation via a hash table of row-format group keys.
///
/// Group keys use *grouping equality* (NULLs form one group), realized as
/// byte equality of the normalized key encoding. Memory is accounted
/// against the buffer manager as the table grows, charging the real
/// arena/bucket/state footprint (§4's hard limits apply to aggregation
/// state too).
pub struct HashAggregateOp {
    child: OperatorBox,
    groups: Vec<Expr>,
    aggs: Vec<AggExpr>,
    buffers: Option<Arc<BufferManager>>,
    table: Option<GroupTable>,
    emit_pos: usize,
    _reservation: Option<MemoryReservation>,
}

impl HashAggregateOp {
    pub fn new(
        child: OperatorBox,
        groups: Vec<Expr>,
        aggs: Vec<AggExpr>,
        buffers: Option<Arc<BufferManager>>,
    ) -> Self {
        HashAggregateOp {
            child,
            groups,
            aggs,
            buffers,
            table: None,
            emit_pos: 0,
            _reservation: None,
        }
    }

    fn aggregate_phase(&mut self) -> Result<()> {
        let mut table = GroupTable::new(&self.groups, &self.aggs);
        let mut reservation = match &self.buffers {
            Some(b) => Some(b.reserve(0)?),
            None => None,
        };
        let mut accounted = 0usize;
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            table.update_chunk(&self.groups, &self.aggs, &chunk)?;
            // Periodic accounting of the real key-arena/bucket/state
            // footprint (capacities only grow, so the delta is monotonic).
            if let Some(res) = &mut reservation {
                let bytes = table.memory_bytes();
                if bytes > accounted {
                    res.grow(bytes - accounted)?;
                    accounted = bytes;
                }
            }
        }
        self._reservation = reservation;
        self.table = Some(table);
        Ok(())
    }
}

impl PhysicalOperator for HashAggregateOp {
    fn output_types(&self) -> Vec<LogicalType> {
        let mut t: Vec<LogicalType> = self.groups.iter().map(Expr::result_type).collect();
        t.extend(self.aggs.iter().map(AggExpr::result_type));
        t
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.table.is_none() {
            self.aggregate_phase()?;
        }
        let table = self.table.as_ref().expect("aggregated");
        if self.emit_pos >= table.len() {
            return Ok(None);
        }
        let end = (self.emit_pos + VECTOR_SIZE).min(table.len());
        // Serial emission streams groups in first-seen (insertion) order.
        let indices: Vec<u32> = (self.emit_pos as u32..end as u32).collect();
        self.emit_pos = end;
        Ok(Some(table.emit(&indices, &self.aggs)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::basic::ValuesOp;
    use crate::ops::drain_rows;

    fn source() -> OperatorBox {
        // (group, value): groups 0,1,2 with values i.
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                let v = if i % 10 == 0 { Value::Null } else { Value::Integer(i) };
                vec![Value::Integer(i % 3), v]
            })
            .collect();
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]))
    }

    #[test]
    fn simple_aggregate_all_functions() {
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Count,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Min,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Max,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut op = SimpleAggregateOp::new(source(), aggs);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r[0], Value::BigInt(100)); // COUNT(*)
        assert_eq!(r[1], Value::BigInt(90)); // COUNT(v) skips 10 NULLs
        let expected_sum: i64 = (0..100).filter(|i| i % 10 != 0).sum();
        assert_eq!(r[2], Value::BigInt(expected_sum));
        assert_eq!(r[3], Value::Integer(1));
        assert_eq!(r[4], Value::Integer(99));
    }

    #[test]
    fn empty_input_aggregates() {
        let empty = Box::new(ValuesOp::new(vec![LogicalType::Integer], vec![]));
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut op = SimpleAggregateOp::new(empty, aggs);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows[0][0], Value::BigInt(0));
        assert!(rows[0][1].is_null(), "SUM of nothing is NULL");
    }

    #[test]
    fn hash_aggregate_groups() {
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Avg,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut op = HashAggregateOp::new(source(), groups, aggs, None);
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 3);
        // 100 rows over 3 groups: counts 34/33/33.
        assert_eq!(rows[0][1], Value::BigInt(34));
        assert_eq!(rows[1][1], Value::BigInt(33));
        assert_eq!(rows[2][1], Value::BigInt(33));
        // AVG is a double for every group.
        assert!(matches!(rows[0][2], Value::Double(_)));
    }

    #[test]
    fn null_group_key_forms_a_group() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Null, Value::Integer(1)],
            vec![Value::Null, Value::Integer(2)],
            vec![Value::Integer(1), Value::Integer(3)],
        ];
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        let src: OperatorBox =
            Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]));
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![AggExpr {
            kind: AggKind::Sum,
            arg: Some(Expr::column(1, LogicalType::Integer)),
            distinct: false,
        }];
        let mut op = HashAggregateOp::new(src, groups, aggs, None);
        let mut out = drain_rows(&mut op).unwrap();
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][1], Value::BigInt(3)); // group 1
        assert!(out[1][0].is_null());
        assert_eq!(out[1][1], Value::BigInt(3)); // NULL group: 1 + 2
    }

    #[test]
    fn distinct_count_per_group() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Integer(0), Value::Integer(5)],
            vec![Value::Integer(0), Value::Integer(5)],
            vec![Value::Integer(0), Value::Integer(6)],
        ];
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        let src: OperatorBox =
            Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]));
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![AggExpr {
            kind: AggKind::Count,
            arg: Some(Expr::column(1, LogicalType::Integer)),
            distinct: true,
        }];
        let mut op = HashAggregateOp::new(src, groups, aggs, None);
        let out = drain_rows(&mut op).unwrap();
        assert_eq!(out[0][1], Value::BigInt(2));
    }

    #[test]
    fn grouped_count_values() {
        // 100 rows over 3 groups: group 0 gets 34, groups 1/2 get 33.
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![AggExpr { kind: AggKind::CountStar, arg: None, distinct: false }];
        let mut op = HashAggregateOp::new(source(), groups, aggs, None);
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows[0][1], Value::BigInt(34));
        assert_eq!(rows[1][1], Value::BigInt(33));
        assert_eq!(rows[2][1], Value::BigInt(33));
    }
}
