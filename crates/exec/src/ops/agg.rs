//! Aggregation operators: ungrouped (simple) and hash-grouped.

use crate::aggregate::{AggKind, AggState};
use crate::expression::Expr;
use crate::fxhash::FxHashMap;
use crate::ops::{OperatorBox, PhysicalOperator};
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_vector::{DataChunk, LogicalType, Result, Value, VECTOR_SIZE};
use std::sync::Arc;

/// One aggregate of the SELECT list: kind + argument expression.
#[derive(Debug, Clone)]
pub struct AggExpr {
    pub kind: AggKind,
    /// `None` only for COUNT(*).
    pub arg: Option<Expr>,
    pub distinct: bool,
}

impl AggExpr {
    pub fn result_type(&self) -> LogicalType {
        self.kind.result_type(self.arg.as_ref().map(Expr::result_type))
    }

    fn new_state(&self) -> AggState {
        AggState::new(self.kind, self.arg.as_ref().map(Expr::result_type), self.distinct)
    }
}

/// Fold one chunk into ungrouped aggregate states — the single
/// definition of per-chunk update semantics (COUNT(*) counts every row
/// via a non-null sentinel; other aggregates evaluate their argument),
/// shared by the serial operator and the parallel executor's sink.
pub fn update_simple_states(
    aggs: &[AggExpr],
    states: &mut [AggState],
    chunk: &DataChunk,
) -> Result<()> {
    for (agg, state) in aggs.iter().zip(states.iter_mut()) {
        match &agg.arg {
            Some(expr) => {
                let v = expr.evaluate(chunk)?;
                for row in 0..v.len() {
                    state.update(&v.get_value(row))?;
                }
            }
            None => {
                // COUNT(*): every row counts.
                for _ in 0..chunk.len() {
                    state.update(&Value::Boolean(true))?;
                }
            }
        }
    }
    Ok(())
}

/// Fold one chunk into a GROUP BY hash table (grouping equality: NULL
/// keys form one group). Shared by the serial operator and the parallel
/// executor's per-morsel partials so the two engines cannot diverge.
pub fn update_group_table(
    groups: &[Expr],
    aggs: &[AggExpr],
    table: &mut FxHashMap<Vec<Value>, Vec<AggState>>,
    chunk: &DataChunk,
) -> Result<()> {
    let key_vectors = groups.iter().map(|g| g.evaluate(chunk)).collect::<Result<Vec<_>>>()?;
    let arg_vectors: Vec<Option<eider_vector::Vector>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.evaluate(chunk)).transpose())
        .collect::<Result<_>>()?;
    for row in 0..chunk.len() {
        let key: Vec<Value> = key_vectors.iter().map(|v| v.get_value(row)).collect();
        let states = match table.get_mut(&key) {
            Some(s) => s,
            None => {
                let fresh: Vec<AggState> = aggs.iter().map(AggExpr::new_state).collect();
                table.insert(key.clone(), fresh);
                table.get_mut(&key).expect("just inserted")
            }
        };
        for (i, state) in states.iter_mut().enumerate() {
            match &arg_vectors[i] {
                Some(v) => state.update(&v.get_value(row))?,
                None => state.update(&Value::Boolean(true))?,
            }
        }
    }
    Ok(())
}

/// Aggregation without GROUP BY: exactly one output row.
pub struct SimpleAggregateOp {
    child: OperatorBox,
    aggs: Vec<AggExpr>,
    done: bool,
}

impl SimpleAggregateOp {
    pub fn new(child: OperatorBox, aggs: Vec<AggExpr>) -> Self {
        SimpleAggregateOp { child, aggs, done: false }
    }
}

impl PhysicalOperator for SimpleAggregateOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.aggs.iter().map(AggExpr::result_type).collect()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut states: Vec<AggState> = self.aggs.iter().map(AggExpr::new_state).collect();
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            update_simple_states(&self.aggs, &mut states, &chunk)?;
        }
        let row: Vec<Value> = states.iter().map(AggState::finalize).collect::<Result<_>>()?;
        let mut out = DataChunk::new(&self.output_types());
        out.append_row(&row)?;
        Ok(Some(out))
    }
}

/// GROUP BY aggregation via a hash table of group keys.
///
/// Group keys use *grouping equality* (NULLs form one group), which is the
/// `Eq`/`Hash` of [`Value`]. Memory is accounted against the buffer manager
/// as the table grows (§4's hard limits apply to aggregation state too).
pub struct HashAggregateOp {
    child: OperatorBox,
    groups: Vec<Expr>,
    aggs: Vec<AggExpr>,
    buffers: Option<Arc<BufferManager>>,
    output: Option<std::vec::IntoIter<(Vec<Value>, Vec<AggState>)>>,
    _reservation: Option<MemoryReservation>,
}

impl HashAggregateOp {
    pub fn new(
        child: OperatorBox,
        groups: Vec<Expr>,
        aggs: Vec<AggExpr>,
        buffers: Option<Arc<BufferManager>>,
    ) -> Self {
        HashAggregateOp { child, groups, aggs, buffers, output: None, _reservation: None }
    }

    fn aggregate_phase(&mut self) -> Result<()> {
        let mut table: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
        let mut reservation = match &self.buffers {
            Some(b) => Some(b.reserve(0)?),
            None => None,
        };
        let mut accounted_groups = 0usize;
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            update_group_table(&self.groups, &self.aggs, &mut table, &chunk)?;
            // Periodic memory accounting: ~96 bytes per group + key data.
            if let Some(res) = &mut reservation {
                if table.len() > accounted_groups {
                    let growth = (table.len() - accounted_groups) * 96;
                    res.grow(growth)?;
                    accounted_groups = table.len();
                }
            }
        }
        self._reservation = reservation;
        self.output = Some(table.into_iter().collect::<Vec<_>>().into_iter());
        Ok(())
    }
}

impl PhysicalOperator for HashAggregateOp {
    fn output_types(&self) -> Vec<LogicalType> {
        let mut t: Vec<LogicalType> = self.groups.iter().map(Expr::result_type).collect();
        t.extend(self.aggs.iter().map(AggExpr::result_type));
        t
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.output.is_none() {
            self.aggregate_phase()?;
        }
        let out_types = self.output_types();
        let it = self.output.as_mut().expect("aggregated");
        let mut out = DataChunk::new(&out_types);
        for (key, states) in it.by_ref().take(VECTOR_SIZE) {
            let mut row = key;
            for s in &states {
                row.push(s.finalize()?);
            }
            out.append_row(&row)?;
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::basic::ValuesOp;
    use crate::ops::drain_rows;

    fn source() -> OperatorBox {
        // (group, value): groups 0,1,2 with values i.
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                let v = if i % 10 == 0 { Value::Null } else { Value::Integer(i) };
                vec![Value::Integer(i % 3), v]
            })
            .collect();
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]))
    }

    #[test]
    fn simple_aggregate_all_functions() {
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Count,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Min,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
            AggExpr {
                kind: AggKind::Max,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut op = SimpleAggregateOp::new(source(), aggs);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r[0], Value::BigInt(100)); // COUNT(*)
        assert_eq!(r[1], Value::BigInt(90)); // COUNT(v) skips 10 NULLs
        let expected_sum: i64 = (0..100).filter(|i| i % 10 != 0).sum();
        assert_eq!(r[2], Value::BigInt(expected_sum));
        assert_eq!(r[3], Value::Integer(1));
        assert_eq!(r[4], Value::Integer(99));
    }

    #[test]
    fn empty_input_aggregates() {
        let empty = Box::new(ValuesOp::new(vec![LogicalType::Integer], vec![]));
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Sum,
                arg: Some(Expr::column(0, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut op = SimpleAggregateOp::new(empty, aggs);
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows[0][0], Value::BigInt(0));
        assert!(rows[0][1].is_null(), "SUM of nothing is NULL");
    }

    #[test]
    fn hash_aggregate_groups() {
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![
            AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
            AggExpr {
                kind: AggKind::Avg,
                arg: Some(Expr::column(1, LogicalType::Integer)),
                distinct: false,
            },
        ];
        let mut op = HashAggregateOp::new(source(), groups, aggs, None);
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows.len(), 3);
        // 100 rows over 3 groups: counts 34/33/33.
        assert_eq!(rows[0][1], Value::BigInt(34));
        assert_eq!(rows[1][1], Value::BigInt(33));
        assert_eq!(rows[2][1], Value::BigInt(33));
        // AVG is a double for every group.
        assert!(matches!(rows[0][2], Value::Double(_)));
    }

    #[test]
    fn null_group_key_forms_a_group() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Null, Value::Integer(1)],
            vec![Value::Null, Value::Integer(2)],
            vec![Value::Integer(1), Value::Integer(3)],
        ];
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        let src: OperatorBox =
            Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]));
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![AggExpr {
            kind: AggKind::Sum,
            arg: Some(Expr::column(1, LogicalType::Integer)),
            distinct: false,
        }];
        let mut op = HashAggregateOp::new(src, groups, aggs, None);
        let mut out = drain_rows(&mut op).unwrap();
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][1], Value::BigInt(3)); // group 1
        assert!(out[1][0].is_null());
        assert_eq!(out[1][1], Value::BigInt(3)); // NULL group: 1 + 2
    }

    #[test]
    fn distinct_count_per_group() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Integer(0), Value::Integer(5)],
            vec![Value::Integer(0), Value::Integer(5)],
            vec![Value::Integer(0), Value::Integer(6)],
        ];
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap();
        let src: OperatorBox =
            Box::new(ValuesOp::new(vec![LogicalType::Integer, LogicalType::Integer], vec![chunk]));
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![AggExpr {
            kind: AggKind::Count,
            arg: Some(Expr::column(1, LogicalType::Integer)),
            distinct: true,
        }];
        let mut op = HashAggregateOp::new(src, groups, aggs, None);
        let out = drain_rows(&mut op).unwrap();
        assert_eq!(out[0][1], Value::BigInt(2));
    }

    #[test]
    fn grouped_count_values() {
        // 100 rows over 3 groups: group 0 gets 34, groups 1/2 get 33.
        let groups = vec![Expr::column(0, LogicalType::Integer)];
        let aggs = vec![AggExpr { kind: AggKind::CountStar, arg: None, distinct: false }];
        let mut op = HashAggregateOp::new(source(), groups, aggs, None);
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(rows[0][1], Value::BigInt(34));
        assert_eq!(rows[1][1], Value::BigInt(33));
        assert_eq!(rows[2][1], Value::BigInt(33));
    }
}
