//! Data modification operators: INSERT, UPDATE, DELETE.
//!
//! These are the §2 ETL path. UPDATE is column-wise: the plan scans the
//! target table emitting row ids plus the *new* values for exactly the
//! assigned columns, and [`UpdateOp`] pushes them into versioned storage —
//! unchanged columns are never touched, let alone rewritten.

use crate::ops::{OperatorBox, PhysicalOperator};
use eider_catalog::TableEntry;
use eider_txn::{RowId, Transaction};
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, Vector};
use std::sync::Arc;

fn count_chunk(n: u64) -> Result<DataChunk> {
    let v = Vector::from_values(LogicalType::BigInt, &[Value::BigInt(n as i64)])?;
    DataChunk::from_vectors(vec![v])
}

fn check_not_null(entry: &TableEntry, column: usize, vector: &Vector) -> Result<()> {
    let def = &entry.columns[column];
    if def.not_null && !vector.validity().all_valid() {
        return Err(EiderError::Constraint(format!(
            "NOT NULL constraint violated: column \"{}\" of table \"{}\"",
            def.name, entry.name
        )));
    }
    Ok(())
}

/// INSERT: pulls chunks matching the table layout and appends them.
pub struct InsertOp {
    entry: Arc<TableEntry>,
    child: OperatorBox,
    txn: Arc<Transaction>,
    done: bool,
}

impl InsertOp {
    pub fn new(entry: Arc<TableEntry>, child: OperatorBox, txn: Arc<Transaction>) -> Self {
        InsertOp { entry, child, txn, done: false }
    }
}

impl PhysicalOperator for InsertOp {
    fn output_types(&self) -> Vec<LogicalType> {
        vec![LogicalType::BigInt]
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let table_types = self.entry.column_types();
        let mut inserted = 0u64;
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            // Cast to the table layout and validate constraints.
            let mut columns = Vec::with_capacity(table_types.len());
            for (i, &ty) in table_types.iter().enumerate() {
                let col = chunk.column(i).cast(ty)?;
                check_not_null(&self.entry, i, &col)?;
                columns.push(col);
            }
            let chunk = DataChunk::from_vectors(columns)?;
            inserted += chunk.len() as u64;
            self.entry.data.append_chunk(&self.txn, &chunk)?;
        }
        Ok(Some(count_chunk(inserted)?))
    }
}

/// DELETE: pulls row ids (single BigInt column) and deletes them.
pub struct DeleteOp {
    entry: Arc<TableEntry>,
    child: OperatorBox,
    txn: Arc<Transaction>,
    done: bool,
}

impl DeleteOp {
    pub fn new(entry: Arc<TableEntry>, child: OperatorBox, txn: Arc<Transaction>) -> Self {
        DeleteOp { entry, child, txn, done: false }
    }
}

impl PhysicalOperator for DeleteOp {
    fn output_types(&self) -> Vec<LogicalType> {
        vec![LogicalType::BigInt]
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut deleted = 0u64;
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            let id_col = chunk.column(chunk.column_count() - 1);
            let mut rows: Vec<RowId> = Vec::with_capacity(chunk.len());
            for row in 0..chunk.len() {
                match id_col.get_value(row) {
                    Value::BigInt(v) => rows.push(RowId::decode(v)),
                    other => {
                        return Err(EiderError::Internal(format!(
                            "DELETE plan produced non-row-id value {other}"
                        )))
                    }
                }
            }
            deleted += self.entry.data.delete_rows(&self.txn, &rows)? as u64;
        }
        Ok(Some(count_chunk(deleted)?))
    }
}

/// UPDATE: the child emits `[new values for each SET column..., row id]`;
/// each column is pushed into storage independently (in-place + undo).
pub struct UpdateOp {
    entry: Arc<TableEntry>,
    child: OperatorBox,
    txn: Arc<Transaction>,
    /// Physical column indexes being assigned, in child-column order.
    columns: Vec<usize>,
    done: bool,
}

impl UpdateOp {
    pub fn new(
        entry: Arc<TableEntry>,
        child: OperatorBox,
        txn: Arc<Transaction>,
        columns: Vec<usize>,
    ) -> Self {
        UpdateOp { entry, child, txn, columns, done: false }
    }
}

impl PhysicalOperator for UpdateOp {
    fn output_types(&self) -> Vec<LogicalType> {
        vec![LogicalType::BigInt]
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut updated = 0u64;
        while let Some(chunk) = self.child.next_chunk()? {
            if chunk.is_empty() {
                continue;
            }
            let id_col = chunk.column(chunk.column_count() - 1);
            let mut rows: Vec<RowId> = Vec::with_capacity(chunk.len());
            for row in 0..chunk.len() {
                match id_col.get_value(row) {
                    Value::BigInt(v) => rows.push(RowId::decode(v)),
                    other => {
                        return Err(EiderError::Internal(format!(
                            "UPDATE plan produced non-row-id value {other}"
                        )))
                    }
                }
            }
            for (child_idx, &table_col) in self.columns.iter().enumerate() {
                let values = chunk.column(child_idx).cast(self.entry.columns[table_col].ty)?;
                check_not_null(&self.entry, table_col, &values)?;
                self.entry.data.update_rows(&self.txn, &rows, table_col, &values)?;
            }
            updated += chunk.len() as u64;
        }
        Ok(Some(count_chunk(updated)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::Expr;
    use crate::ops::basic::ValuesOp;
    use crate::ops::scan::TableScanOp;
    use crate::ops::{drain_rows, ProjectionOp};
    use eider_catalog::{Catalog, ColumnDefinition};
    use eider_txn::{CmpOp, ScanOptions, TableFilter, TransactionManager};

    fn setup() -> (Arc<TransactionManager>, Arc<TableEntry>) {
        let cat = Catalog::new();
        let entry = cat
            .create_table(
                "t",
                vec![
                    ColumnDefinition::new("id", LogicalType::Integer).not_null(),
                    ColumnDefinition::new("d", LogicalType::Integer),
                ],
                false,
            )
            .unwrap();
        (TransactionManager::new(), entry)
    }

    fn values_source(rows: Vec<Vec<Value>>) -> OperatorBox {
        let types = vec![LogicalType::Integer, LogicalType::Integer];
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        Box::new(ValuesOp::new(types, vec![chunk]))
    }

    #[test]
    fn insert_then_scan() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let src = values_source(vec![
            vec![Value::Integer(1), Value::Integer(-999)],
            vec![Value::Integer(2), Value::Integer(42)],
        ]);
        let mut ins = InsertOp::new(Arc::clone(&entry), src, Arc::clone(&txn));
        let rows = drain_rows(&mut ins).unwrap();
        assert_eq!(rows[0][0], Value::BigInt(2));
        assert_eq!(entry.data.count_visible(&txn), 2);
    }

    #[test]
    fn insert_violating_not_null_fails() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let src = values_source(vec![vec![Value::Null, Value::Integer(1)]]);
        let mut ins = InsertOp::new(Arc::clone(&entry), src, Arc::clone(&txn));
        let err = ins.next_chunk().unwrap_err();
        assert!(matches!(err, EiderError::Constraint(_)), "{err}");
    }

    #[test]
    fn the_papers_wrangling_update() {
        // UPDATE t SET d = NULL WHERE d = -999 (§2), as the physical plan
        // the planner emits: scan(filter d=-999, emit row ids) ->
        // project(NULL, rowid) -> update(column d).
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| {
                let d = if i % 4 == 0 { Value::Integer(-999) } else { Value::Integer(i) };
                vec![Value::Integer(i), d]
            })
            .collect();
        let mut ins = InsertOp::new(Arc::clone(&entry), values_source(rows), Arc::clone(&txn));
        drain_rows(&mut ins).unwrap();
        txn.is_read_write();

        let scan = TableScanOp::new(
            Arc::clone(&entry.data),
            Arc::clone(&txn),
            ScanOptions {
                columns: vec![],
                filters: vec![TableFilter::new(1, CmpOp::Eq, Value::Integer(-999))],
                emit_row_ids: true,
            },
        );
        let proj = ProjectionOp::new(
            Box::new(scan),
            vec![
                Expr::Cast {
                    child: Box::new(Expr::constant(Value::Null)),
                    to: LogicalType::Integer,
                },
                Expr::column(0, LogicalType::BigInt),
            ],
        );
        let mut update =
            UpdateOp::new(Arc::clone(&entry), Box::new(proj), Arc::clone(&txn), vec![1]);
        let rows = drain_rows(&mut update).unwrap();
        assert_eq!(rows[0][0], Value::BigInt(250));
        // All sentinels are now NULL under this transaction's view.
        let scan2 = TableScanOp::new(
            Arc::clone(&entry.data),
            Arc::clone(&txn),
            ScanOptions {
                columns: vec![1],
                filters: vec![TableFilter::new(1, CmpOp::Eq, Value::Integer(-999))],
                emit_row_ids: false,
            },
        );
        let mut scan2 = scan2;
        assert!(drain_rows(&mut scan2).unwrap().is_empty());
    }

    #[test]
    fn delete_via_row_ids() {
        let (mgr, entry) = setup();
        let txn = Arc::new(mgr.begin());
        let rows: Vec<Vec<Value>> =
            (0..100).map(|i| vec![Value::Integer(i), Value::Integer(i)]).collect();
        let mut ins = InsertOp::new(Arc::clone(&entry), values_source(rows), Arc::clone(&txn));
        drain_rows(&mut ins).unwrap();

        let scan = TableScanOp::new(
            Arc::clone(&entry.data),
            Arc::clone(&txn),
            ScanOptions {
                columns: vec![],
                filters: vec![TableFilter::new(0, CmpOp::Lt, Value::Integer(10))],
                emit_row_ids: true,
            },
        );
        let mut del = DeleteOp::new(Arc::clone(&entry), Box::new(scan), Arc::clone(&txn));
        let out = drain_rows(&mut del).unwrap();
        assert_eq!(out[0][0], Value::BigInt(10));
        assert_eq!(entry.data.count_visible(&txn), 90);
    }
}
