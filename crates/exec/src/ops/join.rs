//! Hash join, nested-loop join and cross product.
//!
//! The hash join is the RAM-hungry/CPU-cheap end of §4's trade-off: the
//! build side materializes into a [`ChunkCollection`] (optionally
//! compressed under memory pressure, Figure 1) with an Fx-hashed bucket
//! table on top. When the build side would blow the memory budget, the
//! planner (or the cooperation policy at runtime) uses
//! [`crate::ops::merge_join::MergeJoinOp`] instead.
//!
//! The build and probe phases are split into first-class pieces so the
//! pipeline-DAG executor can schedule them as separate pipelines:
//!
//! * [`BuildSide`] — the immutable hashed build table. Built either
//!   serially chunk-by-chunk or spliced from morsel-parallel
//!   [`BuildPartial`]s; once finished it is read through `&self` only, so
//!   any number of probe workers can share one `Arc<BuildSide>`.
//! * [`JoinProbeOp`] — a streaming operator that probes its child's chunks
//!   against a borrowed build side. The serial [`HashJoinOp`] is exactly
//!   "drain right into a `BuildSide`, then `JoinProbeOp` over left"; the
//!   parallel executor stacks the same `JoinProbeOp` on every worker's
//!   morsel chain.

use crate::collection::{ChunkCache, ChunkCollection};
use crate::expression::Expr;
use crate::fxhash::hash_vector;
use crate::ops::{OperatorBox, PhysicalOperator};
use crate::rowkey::{encode_keys, KeyLayout, KeyScratch};
use eider_coop::compression::CompressionLevel;
use eider_storage::buffer::{BufferManager, MemoryReservation};
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, Vector, VECTOR_SIZE};
use std::collections::VecDeque;
use std::sync::Arc;

const EMPTY_SLOT: u32 = u32::MAX;
/// Entry marker for an unmatched output row (LEFT joins pad with NULLs).
const NULL_ENTRY: u32 = u32::MAX;

/// Join flavours supported by the hash and nested-loop joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    /// All left rows; right columns NULL where unmatched.
    Left,
    /// Left rows with at least one match (EXISTS / IN).
    Semi,
    /// Left rows with no match (NOT EXISTS).
    Anti,
}

impl JoinType {
    /// Whether the join's output rows carry the build side's columns.
    pub fn emits_right_columns(self) -> bool {
        matches!(self, JoinType::Inner | JoinType::Left)
    }
}

/// The immutable hashed build side of an equi-join: materialized rows plus
/// a chained hash table over *row-format* key encodings
/// ([`crate::rowkey`]): every build key lives as normalized bytes in one
/// arena, probed by `memcmp` after a vectorized hash — no `Vec<Value>` per
/// row anywhere on the build or probe path.
///
/// Mutable only while building ([`BuildSide::append_chunk`] /
/// [`BuildSide::append_partial`]); every probe accessor takes `&self` with
/// a caller-owned [`ChunkCache`], so one `Arc<BuildSide>` serves any number
/// of concurrent probe workers — the pipeline-DAG executor's join-breaker
/// state.
pub struct BuildSide {
    rows: ChunkCollection,
    /// Key layout shared with probers; `None` until the first partial.
    layout: Option<KeyLayout>,
    /// Encoded key bytes of all entries, contiguous.
    key_arena: Vec<u8>,
    /// `(offset, len)` of each entry's key in `key_arena`.
    key_locs: Vec<(u32, u32)>,
    hashes: Vec<u64>,
    positions: Vec<(u32, u32)>,
    /// Power-of-two bucket heads (entry indexes) + per-entry chain links.
    slots: Vec<u32>,
    next: Vec<u32>,
    /// Charges the key table (arena + buckets + chains) to the buffer
    /// manager on top of the rows the `ChunkCollection` accounts itself.
    key_reservation: Option<MemoryReservation>,
    key_accounted: usize,
}

impl BuildSide {
    /// An empty build side; `buffers` (when given) accounts the
    /// materialized rows against the shared memory budget.
    pub fn new(
        compression: CompressionLevel,
        buffers: Option<Arc<BufferManager>>,
    ) -> Result<BuildSide> {
        let key_reservation = match &buffers {
            Some(b) => Some(b.reserve(0)?),
            None => None,
        };
        Ok(BuildSide {
            rows: match buffers {
                Some(b) => ChunkCollection::with_accounting(compression, b)?,
                None => ChunkCollection::new(compression),
            },
            layout: None,
            key_arena: Vec::new(),
            key_locs: Vec::new(),
            hashes: Vec::new(),
            positions: Vec::new(),
            slots: Vec::new(),
            next: Vec::new(),
            key_reservation,
            key_accounted: 0,
        })
    }

    /// Splice morsel-parallel build partials (in scan order) into one
    /// build side — the merge/finalize step of a parallel build pipeline.
    /// The expensive part (expression evaluation, hashing, key encoding)
    /// happened on the workers; this only fills the bucket table.
    pub fn from_partials(
        partials: Vec<BuildPartial>,
        compression: CompressionLevel,
        buffers: Option<Arc<BufferManager>>,
    ) -> Result<BuildSide> {
        let mut build = BuildSide::new(compression, buffers)?;
        for partial in partials {
            build.append_partial(partial)?;
        }
        Ok(build)
    }

    /// Serial incremental build: hash one chunk's keys and append it.
    pub fn append_chunk(&mut self, chunk: DataChunk, key_exprs: &[Expr]) -> Result<()> {
        self.append_partial(BuildPartial::compute(chunk, key_exprs)?)
    }

    /// Ensure the bucket array can absorb `additional` entries at < 50%
    /// load, rebuilding the chains from stored hashes when it grows.
    fn ensure_slots(&mut self, additional: usize) {
        let needed = ((self.positions.len() + additional) * 2).next_power_of_two().max(16);
        if self.slots.len() >= needed {
            return;
        }
        self.slots.clear();
        self.slots.resize(needed, EMPTY_SLOT);
        self.next.clear();
        self.next.reserve(self.positions.len() + additional);
        let mask = (needed - 1) as u64;
        for (idx, &h) in self.hashes.iter().enumerate() {
            let slot = (h & mask) as usize;
            self.next.push(self.slots[slot]);
            self.slots[slot] = idx as u32;
        }
    }

    /// Append one precomputed partial (see [`BuildPartial::compute`]).
    pub fn append_partial(&mut self, partial: BuildPartial) -> Result<()> {
        let chunk_idx = self.rows.chunk_count() as u32;
        if self.layout.is_none() {
            self.layout = Some(partial.layout.clone());
        }
        self.ensure_slots(partial.entries.len());
        let mask = (self.slots.len() - 1) as u64;
        for &(row, off, len, hash) in &partial.entries {
            let idx = self.positions.len() as u32;
            let dst = self.key_arena.len() as u32;
            self.key_arena
                .extend_from_slice(&partial.key_bytes[off as usize..(off + len) as usize]);
            self.key_locs.push((dst, len));
            self.hashes.push(hash);
            self.positions.push((chunk_idx, row));
            let slot = (hash & mask) as usize;
            self.next.push(self.slots[slot]);
            self.slots[slot] = idx;
        }
        if self.key_reservation.is_some() {
            let bytes = self.key_table_bytes();
            if bytes > self.key_accounted {
                let growth = bytes - self.key_accounted;
                if let Some(res) = self.key_reservation.as_mut() {
                    res.grow(growth)?;
                }
                self.key_accounted = bytes;
            }
        }
        self.rows.append(partial.chunk)
    }

    /// Number of join-eligible (non-NULL-key) build rows.
    pub fn entry_count(&self) -> usize {
        self.positions.len()
    }

    /// Total materialized build rows (including NULL-key rows).
    pub fn row_count(&self) -> usize {
        self.rows.row_count()
    }

    /// The key layout probers must encode with (`None` while empty).
    pub fn key_layout(&self) -> Option<&KeyLayout> {
        self.layout.as_ref()
    }

    /// Heap footprint of the key table (arena + buckets + chains), charged
    /// by memory accounting on top of the materialized rows.
    pub fn key_table_bytes(&self) -> usize {
        self.key_arena.capacity()
            + self.key_locs.capacity() * 8
            + self.hashes.capacity() * 8
            + self.positions.capacity() * 8
            + self.slots.capacity() * 4
            + self.next.capacity() * 4
    }

    #[inline]
    fn key_at(&self, idx: u32) -> &[u8] {
        let (off, len) = self.key_locs[idx as usize];
        &self.key_arena[off as usize..(off + len) as usize]
    }

    /// Iterate the build entries matching `(hash, key)` — a bucket-chain
    /// walk comparing hash first, then raw key bytes. Allocation-free.
    #[inline]
    pub fn probe<'a>(&'a self, hash: u64, key: &'a [u8]) -> BuildMatches<'a> {
        let head = if self.slots.is_empty() {
            EMPTY_SLOT
        } else {
            self.slots[(hash & (self.slots.len() - 1) as u64) as usize]
        };
        BuildMatches { build: self, cur: head, hash, key }
    }

    /// Gather build rows into output vectors (one per build column), with
    /// `NULL_ENTRY` padding NULLs (LEFT-join misses). Uncompressed chunks
    /// are read in place; compressed ones go through the caller's cache.
    pub fn gather_entries(
        &self,
        cache: &mut ChunkCache,
        entries: &[u32],
        out: &mut [Vector],
    ) -> Result<()> {
        for &e in entries {
            if e == NULL_ENTRY {
                for v in out.iter_mut() {
                    v.push_null();
                }
                continue;
            }
            let (c, r) = self.positions[e as usize];
            if let Some(chunk) = self.rows.plain_chunk(c as usize) {
                for (j, v) in out.iter_mut().enumerate() {
                    v.push_from(chunk.column(j), r as usize)?;
                }
            } else {
                let vals = self.rows.row_shared(cache, c as usize, r as usize)?;
                for (j, v) in out.iter_mut().enumerate() {
                    v.push_value(&vals[j])?;
                }
            }
        }
        Ok(())
    }
}

/// Iterator over build entries whose key matches a probe key (chain walk).
pub struct BuildMatches<'a> {
    build: &'a BuildSide,
    cur: u32,
    hash: u64,
    key: &'a [u8],
}

impl Iterator for BuildMatches<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.cur != EMPTY_SLOT {
            let e = self.cur;
            self.cur = self.build.next[e as usize];
            if self.build.hashes[e as usize] == self.hash && self.build.key_at(e) == self.key {
                return Some(e);
            }
        }
        None
    }
}

// The probe phase shares one `Arc<BuildSide>` across worker threads.
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<BuildSide>()
};

/// One build-side chunk with its hash-eligible rows (keys pre-encoded and
/// pre-hashed), produced by a parallel-build worker and consumed by
/// [`BuildSide::from_partials`].
pub struct BuildPartial {
    /// The build-side rows as produced by the worker's pipeline.
    pub chunk: DataChunk,
    layout: KeyLayout,
    /// Encoded key bytes of the whole chunk (entries reference subranges).
    key_bytes: Vec<u8>,
    /// `(row, key offset, key len, hash)` for every row whose key has no
    /// NULLs (NULL keys never join).
    entries: Vec<(u32, u32, u32, u64)>,
}

impl BuildPartial {
    /// Evaluate `keys` over `chunk`, hash them vectorized and encode them
    /// into row format — the per-worker (parallel) half of the build.
    pub fn compute(chunk: DataChunk, keys: &[Expr]) -> Result<BuildPartial> {
        let layout = KeyLayout::new(keys.iter().map(Expr::result_type).collect());
        let key_vectors = keys.iter().map(|k| k.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
        // Hash and encode must see the same (possibly cast) values.
        let conformed = crate::rowkey::conform_columns(&layout, &key_vectors)?;
        let key_vectors = conformed.unwrap_or(key_vectors);
        let mut scratch = KeyScratch::default();
        for (c, v) in key_vectors.iter().enumerate() {
            hash_vector(v, &mut scratch.hashes, c == 0);
        }
        encode_keys(&layout, &key_vectors, chunk.len(), &mut scratch)?;
        let mut entries = Vec::with_capacity(chunk.len());
        for row in 0..chunk.len() {
            if scratch.has_null(row) {
                continue;
            }
            let (off, len) = scratch.key_range(row);
            entries.push((row as u32, off, len, scratch.hashes[row]));
        }
        Ok(BuildPartial { chunk, layout, key_bytes: scratch.take_bytes(), entries })
    }

    /// Number of join-eligible rows in this partial.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap footprint (chunk plus encoded keys and entries),
    /// used by the parallel build's memory accounting.
    pub fn footprint_bytes(&self) -> usize {
        self.chunk.size_bytes() + self.key_bytes.capacity() + self.entries.len() * 16
    }
}

/// Streaming probe against a borrowed build side: pulls chunks from its
/// child, joins each row via [`BuildSide::probe`], and emits the joined
/// chunks in child-row order.
///
/// This single implementation serves both engines: [`HashJoinOp`] wraps it
/// after a serial build, and the parallel executor stacks one on every
/// worker's morsel chain (`PipelineStep::JoinProbe`) so the probe side
/// runs morsel-parallel against one shared `Arc<BuildSide>`.
pub struct JoinProbeOp {
    child: OperatorBox,
    build: Arc<BuildSide>,
    left_keys: Vec<Expr>,
    join_type: JoinType,
    out_types: Vec<LogicalType>,
    cache: ChunkCache,
    pending: VecDeque<DataChunk>,
    /// Reused per-chunk buffers: encoded probe keys + matched pair lists.
    scratch: KeyScratch,
    probe_rows: Vec<u32>,
    match_entries: Vec<u32>,
}

impl JoinProbeOp {
    pub fn new(
        child: OperatorBox,
        build: Arc<BuildSide>,
        left_keys: Vec<Expr>,
        join_type: JoinType,
        right_types: Vec<LogicalType>,
    ) -> Self {
        let mut out_types = child.output_types();
        if join_type.emits_right_columns() {
            out_types.extend(right_types.iter().copied());
        }
        JoinProbeOp {
            child,
            build,
            left_keys,
            join_type,
            out_types,
            cache: ChunkCache::new(),
            pending: VecDeque::new(),
            scratch: KeyScratch::default(),
            probe_rows: Vec::new(),
            match_entries: Vec::new(),
        }
    }

    /// Probe one chunk, queueing output chunks in row order.
    ///
    /// The key path is fully vectorized: hash every probe key column with
    /// [`hash_vector`], encode the keys into the reused scratch (zero
    /// per-row allocation), then walk bucket chains per row collecting
    /// `(probe row, build entry)` pairs. Output rows materialize as batch
    /// gathers — typed column copies, not per-row `Vec<Value>`s.
    fn probe_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        let count = chunk.len();
        self.probe_rows.clear();
        self.match_entries.clear();
        let emits_right = self.join_type.emits_right_columns();
        if self.build.entry_count() == 0 {
            // Empty build side: nothing matches.
            match self.join_type {
                JoinType::Inner | JoinType::Semi => return Ok(()),
                JoinType::Left | JoinType::Anti => {
                    self.probe_rows.extend(0..count as u32);
                    self.match_entries.extend(std::iter::repeat_n(NULL_ENTRY, count));
                }
            }
        } else {
            let layout = self.build.key_layout().expect("non-empty build has a layout").clone();
            let key_vectors =
                self.left_keys.iter().map(|k| k.evaluate(chunk)).collect::<Result<Vec<_>>>()?;
            // Probe keys conform to the *build* layout before hashing, so
            // hash and encoded bytes agree with the build side's.
            let conformed = crate::rowkey::conform_columns(&layout, &key_vectors)?;
            let key_vectors = conformed.unwrap_or(key_vectors);
            let mut scratch = std::mem::take(&mut self.scratch);
            for (c, v) in key_vectors.iter().enumerate() {
                hash_vector(v, &mut scratch.hashes, c == 0);
            }
            encode_keys(&layout, &key_vectors, count, &mut scratch)?;
            for row in 0..count {
                let mut matched = false;
                if !scratch.has_null(row) {
                    // NULL keys never join; everything else walks its chain.
                    for e in self.build.probe(scratch.hashes[row], scratch.key(row)) {
                        matched = true;
                        match self.join_type {
                            JoinType::Inner | JoinType::Left => {
                                self.probe_rows.push(row as u32);
                                self.match_entries.push(e);
                            }
                            JoinType::Semi | JoinType::Anti => break,
                        }
                    }
                }
                match self.join_type {
                    JoinType::Left if !matched => {
                        self.probe_rows.push(row as u32);
                        self.match_entries.push(NULL_ENTRY);
                    }
                    JoinType::Semi if matched => self.probe_rows.push(row as u32),
                    JoinType::Anti if !matched => self.probe_rows.push(row as u32),
                    _ => {}
                }
            }
            self.scratch = scratch;
        }
        // Materialize in bounded slices (many-to-many joins can fan out).
        let total = self.probe_rows.len();
        let mut start = 0usize;
        while start < total {
            let end = (start + VECTOR_SIZE * 4).min(total);
            let rows = &self.probe_rows[start..end];
            let mut columns: Vec<Vector> =
                self.out_types.iter().map(|&t| Vector::with_capacity(t, rows.len())).collect();
            let left_width = chunk.column_count();
            for (c, col) in chunk.columns().iter().enumerate() {
                columns[c].append_selected(col, rows)?;
            }
            if emits_right {
                self.build.gather_entries(
                    &mut self.cache,
                    &self.match_entries[start..end],
                    &mut columns[left_width..],
                )?;
            }
            self.pending.push_back(DataChunk::from_vectors(columns)?);
            start = end;
        }
        Ok(())
    }
}

impl PhysicalOperator for JoinProbeOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        loop {
            if let Some(chunk) = self.pending.pop_front() {
                return Ok(Some(chunk));
            }
            match self.child.next_chunk()? {
                Some(chunk) => {
                    if !chunk.is_empty() {
                        self.probe_chunk(&chunk)?;
                    }
                }
                None => return Ok(None),
            }
        }
    }
}

/// Equi-join via an in-memory hash table on the right (build) side —
/// the serial composition "build [`BuildSide`] from right, then
/// [`JoinProbeOp`] over left".
pub struct HashJoinOp {
    /// Present until the build phase runs.
    inputs: Option<(OperatorBox, OperatorBox)>,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    join_type: JoinType,
    compression: CompressionLevel,
    buffers: Option<Arc<BufferManager>>,
    out_types: Vec<LogicalType>,
    right_types: Vec<LogicalType>,
    probe: Option<JoinProbeOp>,
}

impl HashJoinOp {
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        join_type: JoinType,
        compression: CompressionLevel,
        buffers: Option<Arc<BufferManager>>,
    ) -> Result<Self> {
        assert_eq!(left_keys.len(), right_keys.len());
        let right_types = right.output_types();
        let mut out_types = left.output_types();
        if join_type.emits_right_columns() {
            out_types.extend(right_types.iter().copied());
        }
        Ok(HashJoinOp {
            inputs: Some((left, right)),
            left_keys,
            right_keys,
            join_type,
            compression,
            buffers,
            out_types,
            right_types,
            probe: None,
        })
    }

    /// Pull the whole build side and hash it, then stand up the probe.
    /// Fails with `OutOfMemory` when the collection exceeds the
    /// buffer-manager budget — the signal that the cooperation policy
    /// should have chosen a merge join.
    fn build_phase(&mut self) -> Result<()> {
        let (left, mut right) = self.inputs.take().expect("build runs once");
        let mut build = BuildSide::new(self.compression, self.buffers.clone())?;
        while let Some(chunk) = right.next_chunk()? {
            if !chunk.is_empty() {
                build.append_chunk(chunk, &self.right_keys)?;
            }
        }
        self.probe = Some(JoinProbeOp::new(
            left,
            Arc::new(build),
            self.left_keys.clone(),
            self.join_type,
            self.right_types.clone(),
        ));
        Ok(())
    }
}

impl PhysicalOperator for HashJoinOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.probe.is_none() {
            self.build_phase()?;
        }
        self.probe.as_mut().expect("built").next_chunk()
    }
}

/// Cross product (no predicate): every left row with every right row.
/// The right side materializes in memory.
pub struct CrossProductOp {
    left: OperatorBox,
    right: Option<OperatorBox>,
    right_rows: Vec<Vec<Value>>,
    out_types: Vec<LogicalType>,
    current_left: Option<DataChunk>,
    left_row: usize,
    right_row: usize,
}

impl CrossProductOp {
    pub fn new(left: OperatorBox, right: OperatorBox) -> Self {
        let mut out_types = left.output_types();
        out_types.extend(right.output_types());
        CrossProductOp {
            left,
            right: Some(right),
            right_rows: Vec::new(),
            out_types,
            current_left: None,
            left_row: 0,
            right_row: 0,
        }
    }
}

impl PhysicalOperator for CrossProductOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if let Some(mut right) = self.right.take() {
            while let Some(chunk) = right.next_chunk()? {
                self.right_rows.extend(chunk.to_rows());
            }
        }
        if self.right_rows.is_empty() {
            return Ok(None);
        }
        let mut out = DataChunk::new(&self.out_types);
        while out.len() < VECTOR_SIZE {
            if self.current_left.is_none() {
                self.current_left = self.left.next_chunk()?;
                self.left_row = 0;
                self.right_row = 0;
                if self.current_left.is_none() {
                    break;
                }
            }
            let left_chunk = self.current_left.as_ref().expect("present");
            if self.left_row >= left_chunk.len() {
                self.current_left = None;
                continue;
            }
            let mut vals = left_chunk.row_values(self.left_row);
            vals.extend(self.right_rows[self.right_row].iter().cloned());
            out.append_row(&vals)?;
            self.right_row += 1;
            if self.right_row >= self.right_rows.len() {
                self.right_row = 0;
                self.left_row += 1;
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

/// Join with an arbitrary predicate (inequality joins): block nested loop
/// over a materialized right side. The predicate sees left columns first,
/// then right columns.
pub struct NestedLoopJoinOp {
    cross: CrossProductOp,
    predicate: Expr,
    join_type: JoinType,
    left_width: usize,
    out_types: Vec<LogicalType>,
}

impl NestedLoopJoinOp {
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        predicate: Expr,
        join_type: JoinType,
    ) -> Result<Self> {
        if join_type != JoinType::Inner {
            return Err(EiderError::NotImplemented(
                "nested-loop join currently supports INNER joins only".into(),
            ));
        }
        let left_width = left.output_types().len();
        let cross = CrossProductOp::new(left, right);
        let out_types = cross.output_types();
        Ok(NestedLoopJoinOp { cross, predicate, join_type, left_width, out_types })
    }
}

impl PhysicalOperator for NestedLoopJoinOp {
    fn output_types(&self) -> Vec<LogicalType> {
        let _ = (self.join_type, self.left_width);
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        while let Some(chunk) = self.cross.next_chunk()? {
            let flags = self.predicate.evaluate(&chunk)?;
            let sel = crate::expression::filter_selection(&flags)?;
            if !sel.is_empty() {
                return Ok(Some(chunk.select(&sel)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::basic::ValuesOp;
    use crate::ops::drain_rows;
    use eider_txn::CmpOp;

    fn table(rows: Vec<Vec<Value>>, types: Vec<LogicalType>) -> OperatorBox {
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        Box::new(ValuesOp::new(types, vec![chunk]))
    }

    fn left_side() -> OperatorBox {
        table(
            vec![
                vec![Value::Integer(1), Value::Varchar("a".into())],
                vec![Value::Integer(2), Value::Varchar("b".into())],
                vec![Value::Integer(3), Value::Varchar("c".into())],
                vec![Value::Null, Value::Varchar("n".into())],
            ],
            vec![LogicalType::Integer, LogicalType::Varchar],
        )
    }

    fn right_side() -> OperatorBox {
        table(
            vec![
                vec![Value::Integer(1), Value::Varchar("one".into())],
                vec![Value::Integer(1), Value::Varchar("uno".into())],
                vec![Value::Integer(3), Value::Varchar("three".into())],
                vec![Value::Null, Value::Varchar("null".into())],
            ],
            vec![LogicalType::Integer, LogicalType::Varchar],
        )
    }

    fn keys() -> (Vec<Expr>, Vec<Expr>) {
        (vec![Expr::column(0, LogicalType::Integer)], vec![Expr::column(0, LogicalType::Integer)])
    }

    #[test]
    fn inner_join_with_duplicates_and_nulls() {
        let (lk, rk) = keys();
        let mut op = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Inner,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        // key 1 matches twice, key 3 once; NULLs never join.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn left_join_pads_unmatched_with_nulls() {
        let (lk, rk) = keys();
        let mut op = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Left,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 5); // 2 for key 1, 1 for key 3, 1 null-padded key 2, 1 null-padded NULL
        let unmatched: Vec<_> = rows.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn semi_and_anti_joins() {
        let (lk, rk) = keys();
        let mut semi = HashJoinOp::new(
            left_side(),
            right_side(),
            lk.clone(),
            rk.clone(),
            JoinType::Semi,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut semi).unwrap();
        // keys 1 and 3 have matches; each left row appears once.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 2));

        let mut anti = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Anti,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut anti).unwrap();
        // key 2 and the NULL-key row have no matches.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn build_side_charges_key_table_to_buffer_manager() {
        use eider_storage::buffer::{BufferManager, BufferManagerConfig};
        let buffers = BufferManager::new(BufferManagerConfig {
            memory_limit: 64 << 20,
            memtest_allocations: false,
        });
        let rows: Vec<Vec<Value>> =
            (0..5000).map(|i| vec![Value::Integer(i), Value::Varchar(format!("row{i}"))]).collect();
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Varchar], &rows).unwrap();
        let mut build = BuildSide::new(CompressionLevel::None, Some(Arc::clone(&buffers))).unwrap();
        build.append_chunk(chunk, &[Expr::column(0, LogicalType::Integer)]).unwrap();
        assert!(build.key_table_bytes() > 0);
        assert!(
            buffers.used_memory() >= build.rows.stored_bytes() + build.key_table_bytes(),
            "rows ({}) AND key table ({}) must be charged, used = {}",
            build.rows.stored_bytes(),
            build.key_table_bytes(),
            buffers.used_memory()
        );
        let used = buffers.used_memory();
        drop(build);
        assert!(buffers.used_memory() < used, "reservations release on drop");
    }

    #[test]
    fn join_with_compressed_build_side() {
        let (lk, rk) = keys();
        let mut op = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Inner,
            CompressionLevel::Heavy,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn cross_product_cardinality() {
        let mut op = CrossProductOp::new(
            table(
                vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
                vec![LogicalType::Integer],
            ),
            table(
                vec![vec![Value::Integer(10)], vec![Value::Integer(20)], vec![Value::Integer(30)]],
                vec![LogicalType::Integer],
            ),
        );
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn nested_loop_inequality_join() {
        let pred = Expr::Compare {
            op: CmpOp::Lt,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::column(1, LogicalType::Integer)),
        };
        let mut op = NestedLoopJoinOp::new(
            table(
                vec![vec![Value::Integer(1)], vec![Value::Integer(25)]],
                vec![LogicalType::Integer],
            ),
            table(
                vec![vec![Value::Integer(10)], vec![Value::Integer(20)]],
                vec![LogicalType::Integer],
            ),
            pred,
            JoinType::Inner,
        )
        .unwrap();
        let rows = drain_rows(&mut op).unwrap();
        // 1 < 10, 1 < 20; 25 matches nothing.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn empty_build_side() {
        let (lk, rk) = keys();
        let empty = table(vec![], vec![LogicalType::Integer, LogicalType::Varchar]);
        let mut op = HashJoinOp::new(
            left_side(),
            empty,
            lk,
            rk,
            JoinType::Inner,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        assert!(drain_rows(&mut op).unwrap().is_empty());
    }
}
