//! Hash join, nested-loop join and cross product.
//!
//! The hash join is the RAM-hungry/CPU-cheap end of §4's trade-off: the
//! build side materializes into a [`ChunkCollection`] (optionally
//! compressed under memory pressure, Figure 1) with an Fx-hashed bucket
//! table on top. When the build side would blow the memory budget, the
//! planner (or the cooperation policy at runtime) uses
//! [`crate::ops::merge_join::MergeJoinOp`] instead.
//!
//! The build and probe phases are split into first-class pieces so the
//! pipeline-DAG executor can schedule them as separate pipelines:
//!
//! * [`BuildSide`] — the immutable hashed build table. Built either
//!   serially chunk-by-chunk or spliced from morsel-parallel
//!   [`BuildPartial`]s; once finished it is read through `&self` only, so
//!   any number of probe workers can share one `Arc<BuildSide>`.
//! * [`JoinProbeOp`] — a streaming operator that probes its child's chunks
//!   against a borrowed build side. The serial [`HashJoinOp`] is exactly
//!   "drain right into a `BuildSide`, then `JoinProbeOp` over left"; the
//!   parallel executor stacks the same `JoinProbeOp` on every worker's
//!   morsel chain.

use crate::collection::{ChunkCache, ChunkCollection};
use crate::expression::Expr;
use crate::fxhash::{fxhash, FxHashMap};
use crate::ops::{OperatorBox, PhysicalOperator};
use eider_coop::compression::CompressionLevel;
use eider_storage::buffer::BufferManager;
use eider_vector::{DataChunk, EiderError, LogicalType, Result, Value, VECTOR_SIZE};
use std::collections::VecDeque;
use std::sync::Arc;

/// Join flavours supported by the hash and nested-loop joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    /// All left rows; right columns NULL where unmatched.
    Left,
    /// Left rows with at least one match (EXISTS / IN).
    Semi,
    /// Left rows with no match (NOT EXISTS).
    Anti,
}

impl JoinType {
    /// Whether the join's output rows carry the build side's columns.
    pub fn emits_right_columns(self) -> bool {
        matches!(self, JoinType::Inner | JoinType::Left)
    }
}

/// The immutable hashed build side of an equi-join: materialized rows plus
/// an Fx-hashed bucket table over the precomputed key values.
///
/// Mutable only while building ([`BuildSide::append_chunk`] /
/// [`BuildSide::append_partial`]); every probe accessor takes `&self` with
/// a caller-owned [`ChunkCache`], so one `Arc<BuildSide>` serves any number
/// of concurrent probe workers — the pipeline-DAG executor's join-breaker
/// state.
pub struct BuildSide {
    rows: ChunkCollection,
    /// Key values per build row, parallel to (chunk, row) positions.
    keys: Vec<Vec<Value>>,
    positions: Vec<(u32, u32)>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

impl BuildSide {
    /// An empty build side; `buffers` (when given) accounts the
    /// materialized rows against the shared memory budget.
    pub fn new(
        compression: CompressionLevel,
        buffers: Option<Arc<BufferManager>>,
    ) -> Result<BuildSide> {
        Ok(BuildSide {
            rows: match buffers {
                Some(b) => ChunkCollection::with_accounting(compression, b)?,
                None => ChunkCollection::new(compression),
            },
            keys: Vec::new(),
            positions: Vec::new(),
            buckets: FxHashMap::default(),
        })
    }

    /// Splice morsel-parallel build partials (in scan order) into one
    /// build side — the merge/finalize step of a parallel build pipeline.
    /// The expensive part (expression evaluation, hashing) happened on the
    /// workers; this only fills the bucket table.
    pub fn from_partials(
        partials: Vec<BuildPartial>,
        compression: CompressionLevel,
        buffers: Option<Arc<BufferManager>>,
    ) -> Result<BuildSide> {
        let mut build = BuildSide::new(compression, buffers)?;
        for partial in partials {
            build.append_partial(partial)?;
        }
        Ok(build)
    }

    /// Serial incremental build: hash one chunk's keys and append it.
    pub fn append_chunk(&mut self, chunk: DataChunk, key_exprs: &[Expr]) -> Result<()> {
        self.append_partial(BuildPartial::compute(chunk, key_exprs)?)
    }

    /// Append one precomputed partial (see [`BuildPartial::compute`]).
    pub fn append_partial(&mut self, partial: BuildPartial) -> Result<()> {
        let chunk_idx = self.rows.chunk_count() as u32;
        for (row, key, hash) in partial.entries {
            let idx = self.positions.len() as u32;
            self.positions.push((chunk_idx, row));
            self.keys.push(key);
            self.buckets.entry(hash).or_default().push(idx);
        }
        self.rows.append(partial.chunk)
    }

    /// Number of join-eligible (non-NULL-key) build rows.
    pub fn entry_count(&self) -> usize {
        self.positions.len()
    }

    /// Total materialized build rows (including NULL-key rows).
    pub fn row_count(&self) -> usize {
        self.rows.row_count()
    }

    /// Indices of build entries whose key equals `key` (empty for NULL
    /// keys — they never join).
    pub fn matches(&self, key: &[Value]) -> Vec<u32> {
        if key.iter().any(Value::is_null) {
            return Vec::new();
        }
        let h = fxhash(key);
        self.buckets
            .get(&h)
            .map(|cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let bk = &self.keys[i as usize];
                        bk.iter()
                            .zip(key)
                            .all(|(a, b)| a.sql_cmp(b) == Some(std::cmp::Ordering::Equal))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Values of build entry `idx` (as returned by [`BuildSide::matches`]),
    /// read through the caller's decompression cache.
    pub fn entry_values(&self, cache: &mut ChunkCache, idx: u32) -> Result<Vec<Value>> {
        let (c, r) = self.positions[idx as usize];
        self.rows.row_shared(cache, c as usize, r as usize)
    }
}

// The probe phase shares one `Arc<BuildSide>` across worker threads.
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<BuildSide>()
};

/// One build-side chunk with its hash-eligible rows, produced by a
/// parallel-build worker and consumed by [`BuildSide::from_partials`].
pub struct BuildPartial {
    /// The build-side rows as produced by the worker's pipeline.
    pub chunk: DataChunk,
    /// `(row index, key values, fxhash of the key)` for every row whose
    /// key has no NULLs (NULL keys never join).
    pub entries: Vec<(u32, Vec<Value>, u64)>,
}

impl BuildPartial {
    /// Evaluate `keys` over `chunk` and precompute the hash-table entries
    /// — the per-worker (parallel) half of the build.
    pub fn compute(chunk: DataChunk, keys: &[Expr]) -> Result<BuildPartial> {
        let key_vectors = keys.iter().map(|k| k.evaluate(&chunk)).collect::<Result<Vec<_>>>()?;
        let mut entries = Vec::with_capacity(chunk.len());
        for row in 0..chunk.len() {
            let key: Vec<Value> = key_vectors.iter().map(|v| v.get_value(row)).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            let h = fxhash(&key);
            entries.push((row as u32, key, h));
        }
        Ok(BuildPartial { chunk, entries })
    }

    /// Approximate heap footprint (chunk plus hash entries), used by the
    /// parallel build's memory accounting.
    pub fn footprint_bytes(&self) -> usize {
        self.chunk.size_bytes()
            + self
                .entries
                .iter()
                .map(|(_, key, _)| 24 + key.iter().map(Value::size_bytes).sum::<usize>())
                .sum::<usize>()
    }
}

/// Streaming probe against a borrowed build side: pulls chunks from its
/// child, joins each row via [`BuildSide::matches`], and emits the joined
/// chunks in child-row order.
///
/// This single implementation serves both engines: [`HashJoinOp`] wraps it
/// after a serial build, and the parallel executor stacks one on every
/// worker's morsel chain (`PipelineStep::JoinProbe`) so the probe side
/// runs morsel-parallel against one shared `Arc<BuildSide>`.
pub struct JoinProbeOp {
    child: OperatorBox,
    build: Arc<BuildSide>,
    left_keys: Vec<Expr>,
    join_type: JoinType,
    right_types: Vec<LogicalType>,
    out_types: Vec<LogicalType>,
    cache: ChunkCache,
    pending: VecDeque<DataChunk>,
}

impl JoinProbeOp {
    pub fn new(
        child: OperatorBox,
        build: Arc<BuildSide>,
        left_keys: Vec<Expr>,
        join_type: JoinType,
        right_types: Vec<LogicalType>,
    ) -> Self {
        let mut out_types = child.output_types();
        if join_type.emits_right_columns() {
            out_types.extend(right_types.iter().copied());
        }
        JoinProbeOp {
            child,
            build,
            left_keys,
            join_type,
            right_types,
            out_types,
            cache: ChunkCache::new(),
            pending: VecDeque::new(),
        }
    }

    /// Probe one chunk, queueing output chunks in row order.
    fn probe_chunk(&mut self, chunk: &DataChunk) -> Result<()> {
        let key_vectors =
            self.left_keys.iter().map(|k| k.evaluate(chunk)).collect::<Result<Vec<_>>>()?;
        let mut out = DataChunk::new(&self.out_types);
        for row in 0..chunk.len() {
            let key: Vec<Value> = key_vectors.iter().map(|v| v.get_value(row)).collect();
            let matches = self.build.matches(&key);
            match self.join_type {
                JoinType::Inner => {
                    for &m in &matches {
                        let mut vals = chunk.row_values(row);
                        vals.extend(self.build.entry_values(&mut self.cache, m)?);
                        out.append_row(&vals)?;
                    }
                }
                JoinType::Left => {
                    if matches.is_empty() {
                        let mut vals = chunk.row_values(row);
                        vals.extend(self.right_types.iter().map(|_| Value::Null));
                        out.append_row(&vals)?;
                    } else {
                        for &m in &matches {
                            let mut vals = chunk.row_values(row);
                            vals.extend(self.build.entry_values(&mut self.cache, m)?);
                            out.append_row(&vals)?;
                        }
                    }
                }
                JoinType::Semi => {
                    if !matches.is_empty() {
                        out.append_row(&chunk.row_values(row))?;
                    }
                }
                JoinType::Anti => {
                    if matches.is_empty() {
                        out.append_row(&chunk.row_values(row))?;
                    }
                }
            }
            // Split oversized outputs (many-to-many joins can fan out).
            if out.len() >= VECTOR_SIZE * 4 {
                self.pending.push_back(out);
                out = DataChunk::new(&self.out_types);
            }
        }
        if !out.is_empty() {
            self.pending.push_back(out);
        }
        Ok(())
    }
}

impl PhysicalOperator for JoinProbeOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        loop {
            if let Some(chunk) = self.pending.pop_front() {
                return Ok(Some(chunk));
            }
            match self.child.next_chunk()? {
                Some(chunk) => {
                    if !chunk.is_empty() {
                        self.probe_chunk(&chunk)?;
                    }
                }
                None => return Ok(None),
            }
        }
    }
}

/// Equi-join via an in-memory hash table on the right (build) side —
/// the serial composition "build [`BuildSide`] from right, then
/// [`JoinProbeOp`] over left".
pub struct HashJoinOp {
    /// Present until the build phase runs.
    inputs: Option<(OperatorBox, OperatorBox)>,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    join_type: JoinType,
    compression: CompressionLevel,
    buffers: Option<Arc<BufferManager>>,
    out_types: Vec<LogicalType>,
    right_types: Vec<LogicalType>,
    probe: Option<JoinProbeOp>,
}

impl HashJoinOp {
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        join_type: JoinType,
        compression: CompressionLevel,
        buffers: Option<Arc<BufferManager>>,
    ) -> Result<Self> {
        assert_eq!(left_keys.len(), right_keys.len());
        let right_types = right.output_types();
        let mut out_types = left.output_types();
        if join_type.emits_right_columns() {
            out_types.extend(right_types.iter().copied());
        }
        Ok(HashJoinOp {
            inputs: Some((left, right)),
            left_keys,
            right_keys,
            join_type,
            compression,
            buffers,
            out_types,
            right_types,
            probe: None,
        })
    }

    /// Pull the whole build side and hash it, then stand up the probe.
    /// Fails with `OutOfMemory` when the collection exceeds the
    /// buffer-manager budget — the signal that the cooperation policy
    /// should have chosen a merge join.
    fn build_phase(&mut self) -> Result<()> {
        let (left, mut right) = self.inputs.take().expect("build runs once");
        let mut build = BuildSide::new(self.compression, self.buffers.clone())?;
        while let Some(chunk) = right.next_chunk()? {
            if !chunk.is_empty() {
                build.append_chunk(chunk, &self.right_keys)?;
            }
        }
        self.probe = Some(JoinProbeOp::new(
            left,
            Arc::new(build),
            self.left_keys.clone(),
            self.join_type,
            self.right_types.clone(),
        ));
        Ok(())
    }
}

impl PhysicalOperator for HashJoinOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.probe.is_none() {
            self.build_phase()?;
        }
        self.probe.as_mut().expect("built").next_chunk()
    }
}

/// Cross product (no predicate): every left row with every right row.
/// The right side materializes in memory.
pub struct CrossProductOp {
    left: OperatorBox,
    right: Option<OperatorBox>,
    right_rows: Vec<Vec<Value>>,
    out_types: Vec<LogicalType>,
    current_left: Option<DataChunk>,
    left_row: usize,
    right_row: usize,
}

impl CrossProductOp {
    pub fn new(left: OperatorBox, right: OperatorBox) -> Self {
        let mut out_types = left.output_types();
        out_types.extend(right.output_types());
        CrossProductOp {
            left,
            right: Some(right),
            right_rows: Vec::new(),
            out_types,
            current_left: None,
            left_row: 0,
            right_row: 0,
        }
    }
}

impl PhysicalOperator for CrossProductOp {
    fn output_types(&self) -> Vec<LogicalType> {
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if let Some(mut right) = self.right.take() {
            while let Some(chunk) = right.next_chunk()? {
                self.right_rows.extend(chunk.to_rows());
            }
        }
        if self.right_rows.is_empty() {
            return Ok(None);
        }
        let mut out = DataChunk::new(&self.out_types);
        while out.len() < VECTOR_SIZE {
            if self.current_left.is_none() {
                self.current_left = self.left.next_chunk()?;
                self.left_row = 0;
                self.right_row = 0;
                if self.current_left.is_none() {
                    break;
                }
            }
            let left_chunk = self.current_left.as_ref().expect("present");
            if self.left_row >= left_chunk.len() {
                self.current_left = None;
                continue;
            }
            let mut vals = left_chunk.row_values(self.left_row);
            vals.extend(self.right_rows[self.right_row].iter().cloned());
            out.append_row(&vals)?;
            self.right_row += 1;
            if self.right_row >= self.right_rows.len() {
                self.right_row = 0;
                self.left_row += 1;
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

/// Join with an arbitrary predicate (inequality joins): block nested loop
/// over a materialized right side. The predicate sees left columns first,
/// then right columns.
pub struct NestedLoopJoinOp {
    cross: CrossProductOp,
    predicate: Expr,
    join_type: JoinType,
    left_width: usize,
    out_types: Vec<LogicalType>,
}

impl NestedLoopJoinOp {
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        predicate: Expr,
        join_type: JoinType,
    ) -> Result<Self> {
        if join_type != JoinType::Inner {
            return Err(EiderError::NotImplemented(
                "nested-loop join currently supports INNER joins only".into(),
            ));
        }
        let left_width = left.output_types().len();
        let cross = CrossProductOp::new(left, right);
        let out_types = cross.output_types();
        Ok(NestedLoopJoinOp { cross, predicate, join_type, left_width, out_types })
    }
}

impl PhysicalOperator for NestedLoopJoinOp {
    fn output_types(&self) -> Vec<LogicalType> {
        let _ = (self.join_type, self.left_width);
        self.out_types.clone()
    }

    fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        while let Some(chunk) = self.cross.next_chunk()? {
            let flags = self.predicate.evaluate(&chunk)?;
            let sel = crate::expression::filter_selection(&flags)?;
            if !sel.is_empty() {
                return Ok(Some(chunk.select(&sel)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::basic::ValuesOp;
    use crate::ops::drain_rows;
    use eider_txn::CmpOp;

    fn table(rows: Vec<Vec<Value>>, types: Vec<LogicalType>) -> OperatorBox {
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        Box::new(ValuesOp::new(types, vec![chunk]))
    }

    fn left_side() -> OperatorBox {
        table(
            vec![
                vec![Value::Integer(1), Value::Varchar("a".into())],
                vec![Value::Integer(2), Value::Varchar("b".into())],
                vec![Value::Integer(3), Value::Varchar("c".into())],
                vec![Value::Null, Value::Varchar("n".into())],
            ],
            vec![LogicalType::Integer, LogicalType::Varchar],
        )
    }

    fn right_side() -> OperatorBox {
        table(
            vec![
                vec![Value::Integer(1), Value::Varchar("one".into())],
                vec![Value::Integer(1), Value::Varchar("uno".into())],
                vec![Value::Integer(3), Value::Varchar("three".into())],
                vec![Value::Null, Value::Varchar("null".into())],
            ],
            vec![LogicalType::Integer, LogicalType::Varchar],
        )
    }

    fn keys() -> (Vec<Expr>, Vec<Expr>) {
        (vec![Expr::column(0, LogicalType::Integer)], vec![Expr::column(0, LogicalType::Integer)])
    }

    #[test]
    fn inner_join_with_duplicates_and_nulls() {
        let (lk, rk) = keys();
        let mut op = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Inner,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let mut rows = drain_rows(&mut op).unwrap();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        // key 1 matches twice, key 3 once; NULLs never join.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn left_join_pads_unmatched_with_nulls() {
        let (lk, rk) = keys();
        let mut op = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Left,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 5); // 2 for key 1, 1 for key 3, 1 null-padded key 2, 1 null-padded NULL
        let unmatched: Vec<_> = rows.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn semi_and_anti_joins() {
        let (lk, rk) = keys();
        let mut semi = HashJoinOp::new(
            left_side(),
            right_side(),
            lk.clone(),
            rk.clone(),
            JoinType::Semi,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut semi).unwrap();
        // keys 1 and 3 have matches; each left row appears once.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 2));

        let mut anti = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Anti,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut anti).unwrap();
        // key 2 and the NULL-key row have no matches.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn join_with_compressed_build_side() {
        let (lk, rk) = keys();
        let mut op = HashJoinOp::new(
            left_side(),
            right_side(),
            lk,
            rk,
            JoinType::Inner,
            CompressionLevel::Heavy,
            None,
        )
        .unwrap();
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn cross_product_cardinality() {
        let mut op = CrossProductOp::new(
            table(
                vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
                vec![LogicalType::Integer],
            ),
            table(
                vec![vec![Value::Integer(10)], vec![Value::Integer(20)], vec![Value::Integer(30)]],
                vec![LogicalType::Integer],
            ),
        );
        let rows = drain_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn nested_loop_inequality_join() {
        let pred = Expr::Compare {
            op: CmpOp::Lt,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::column(1, LogicalType::Integer)),
        };
        let mut op = NestedLoopJoinOp::new(
            table(
                vec![vec![Value::Integer(1)], vec![Value::Integer(25)]],
                vec![LogicalType::Integer],
            ),
            table(
                vec![vec![Value::Integer(10)], vec![Value::Integer(20)]],
                vec![LogicalType::Integer],
            ),
            pred,
            JoinType::Inner,
        )
        .unwrap();
        let rows = drain_rows(&mut op).unwrap();
        // 1 < 10, 1 < 20; 25 matches nothing.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn empty_build_side() {
        let (lk, rk) = keys();
        let empty = table(vec![], vec![LogicalType::Integer, LogicalType::Varchar]);
        let mut op = HashJoinOp::new(
            left_side(),
            empty,
            lk,
            rk,
            JoinType::Inner,
            CompressionLevel::None,
            None,
        )
        .unwrap();
        assert!(drain_rows(&mut op).unwrap().is_empty());
    }
}
