//! Aggregate functions and their accumulation states.
//!
//! OLAP queries "involve multiple aggregates" (§2); these states are the
//! targets of both the vectorized engine's hash aggregation and the
//! row-at-a-time baseline, so the two engines share semantics exactly.

use eider_vector::{EiderError, LogicalType, Result, SelectionVector, Value, Vector, VectorData};
use std::cmp::Ordering;
use std::collections::HashSet;

/// The aggregate function kinds eider supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample standard deviation (Welford's online algorithm).
    StdDevSamp,
    /// Sample variance.
    VarSamp,
}

impl AggKind {
    pub fn by_name(name: &str) -> Option<AggKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "avg" | "mean" => AggKind::Avg,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "stddev" | "stddev_samp" => AggKind::StdDevSamp,
            "variance" | "var_samp" => AggKind::VarSamp,
            _ => return None,
        })
    }

    /// Result type given the argument type.
    pub fn result_type(&self, input: Option<LogicalType>) -> LogicalType {
        match self {
            AggKind::CountStar | AggKind::Count => LogicalType::BigInt,
            AggKind::Sum => match input {
                Some(LogicalType::Double) => LogicalType::Double,
                _ => LogicalType::BigInt,
            },
            AggKind::Avg | AggKind::StdDevSamp | AggKind::VarSamp => LogicalType::Double,
            AggKind::Min | AggKind::Max => input.unwrap_or(LogicalType::Varchar),
        }
    }
}

/// Accumulator state for one aggregate in one group.
#[derive(Debug, Clone)]
pub enum AggState {
    Count(i64),
    SumInt {
        sum: i128,
        seen: bool,
    },
    SumDouble {
        sum: f64,
        seen: bool,
    },
    Avg {
        sum: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Welford {
        count: i64,
        mean: f64,
        m2: f64,
        variance: bool,
    },
    /// DISTINCT wrapper: dedup first, feed the inner state at finalize.
    Distinct {
        seen: HashSet<Value>,
        inner: Box<AggState>,
    },
}

impl AggState {
    /// Fresh state for an aggregate over the given input type.
    pub fn new(kind: AggKind, input: Option<LogicalType>, distinct: bool) -> AggState {
        let inner = match kind {
            AggKind::CountStar | AggKind::Count => AggState::Count(0),
            AggKind::Sum => match input {
                Some(LogicalType::Double) => AggState::SumDouble { sum: 0.0, seen: false },
                _ => AggState::SumInt { sum: 0, seen: false },
            },
            AggKind::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggKind::Min => AggState::Min(None),
            AggKind::Max => AggState::Max(None),
            AggKind::StdDevSamp => {
                AggState::Welford { count: 0, mean: 0.0, m2: 0.0, variance: false }
            }
            AggKind::VarSamp => AggState::Welford { count: 0, mean: 0.0, m2: 0.0, variance: true },
        };
        if distinct {
            AggState::Distinct { seen: HashSet::new(), inner: Box::new(inner) }
        } else {
            inner
        }
    }

    /// Fold one input value into the state. `COUNT(*)` passes a non-null
    /// placeholder for every row; all other aggregates skip NULLs.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Distinct { seen, inner } => {
                if v.is_null() {
                    return Ok(());
                }
                if seen.insert(v.clone()) {
                    inner.update(v)?;
                }
                Ok(())
            }
            _ => self.update_inner(v),
        }
    }

    fn update_inner(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt { sum, seen } => {
                let x = v
                    .as_i64()
                    .ok_or_else(|| EiderError::TypeMismatch(format!("SUM over non-numeric {v}")))?;
                *sum += i128::from(x);
                *seen = true;
            }
            AggState::SumDouble { sum, seen } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| EiderError::TypeMismatch(format!("SUM over non-numeric {v}")))?;
                *sum += x;
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| EiderError::TypeMismatch(format!("AVG over non-numeric {v}")))?;
                *sum += x;
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m) == Ordering::Less) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|m| v.total_cmp(m) == Ordering::Greater) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Welford { count, mean, m2, .. } => {
                let x = v.as_f64().ok_or_else(|| {
                    EiderError::TypeMismatch(format!("STDDEV/VAR over non-numeric {v}"))
                })?;
                *count += 1;
                let delta = x - *mean;
                *mean += delta / *count as f64;
                *m2 += delta * (x - *mean);
            }
            AggState::Distinct { .. } => unreachable!("handled in update"),
        }
        Ok(())
    }

    /// Fold another accumulator of the *same shape* into this one, as if
    /// every value `other` saw had been fed to `self`. This is the
    /// combine step of parallel aggregation: each worker accumulates a
    /// partial state over its morsels and the finalize phase merges them.
    ///
    /// All states merge exactly except `Welford`, which uses Chan et al.'s
    /// parallel variance combination (exact in real arithmetic, subject to
    /// the usual floating-point rounding), and `Distinct`, which unions
    /// the seen sets.
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += *b,
            (
                AggState::SumInt { sum, seen },
                AggState::SumInt { sum: other_sum, seen: other_seen },
            ) => {
                *sum += *other_sum;
                *seen |= *other_seen;
            }
            (
                AggState::SumDouble { sum, seen },
                AggState::SumDouble { sum: other_sum, seen: other_seen },
            ) => {
                *sum += *other_sum;
                *seen |= *other_seen;
            }
            (
                AggState::Avg { sum, count },
                AggState::Avg { sum: other_sum, count: other_count },
            ) => {
                *sum += *other_sum;
                *count += *other_count;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v.total_cmp(m) == Ordering::Less) {
                        *cur = Some(v.clone());
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|m| v.total_cmp(m) == Ordering::Greater) {
                        *cur = Some(v.clone());
                    }
                }
            }
            (
                AggState::Welford { count, mean, m2, .. },
                AggState::Welford { count: count2, mean: mean2, m2: m2_2, .. },
            ) => {
                if *count2 > 0 {
                    if *count == 0 {
                        (*count, *mean, *m2) = (*count2, *mean2, *m2_2);
                    } else {
                        let total = *count + *count2;
                        let delta = *mean2 - *mean;
                        *mean += delta * *count2 as f64 / total as f64;
                        *m2 += *m2_2
                            + delta * delta * (*count as f64) * (*count2 as f64) / total as f64;
                        *count = total;
                    }
                }
            }
            (AggState::Distinct { seen, inner }, AggState::Distinct { seen: other_seen, .. }) => {
                // Iterate the incoming set in value order, not HashSet
                // order: the inner accumulator may be order-sensitive in
                // floating point (SUM(DISTINCT v)), and parallel merges
                // must be reproducible run to run.
                let mut incoming: Vec<&Value> = other_seen.iter().collect();
                incoming.sort_by(|a, b| a.total_cmp(b));
                for v in incoming {
                    if seen.insert(v.clone()) {
                        inner.update(v)?;
                    }
                }
            }
            (a, b) => {
                return Err(EiderError::Internal(format!(
                    "cannot merge mismatched aggregate states {a:?} / {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the aggregate result.
    pub fn finalize(&self) -> Result<Value> {
        Ok(match self {
            AggState::Count(c) => Value::BigInt(*c),
            AggState::SumInt { sum, seen } => {
                if !*seen {
                    Value::Null
                } else {
                    Value::BigInt(i64::try_from(*sum).map_err(|_| {
                        EiderError::Execution("SUM result exceeds BIGINT range".into())
                    })?)
                }
            }
            AggState::SumDouble { sum, seen } => {
                if !*seen {
                    Value::Null
                } else {
                    Value::Double(*sum)
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Welford { count, m2, variance, .. } => {
                if *count < 2 {
                    Value::Null
                } else {
                    let var = *m2 / (*count - 1) as f64;
                    Value::Double(if *variance { var } else { var.sqrt() })
                }
            }
            AggState::Distinct { inner, .. } => inner.finalize()?,
        })
    }

    /// Bulk-update kernel: fold a whole vector (optionally restricted to
    /// `sel`'s rows) into this state in one typed loop — the §2
    /// "low cycles per value" path for SUM/COUNT/AVG/MIN/MAX/STDDEV over
    /// the numeric physical types. Returns `Ok(false)` when no kernel
    /// covers this state/vector combination (DISTINCT, booleans, string
    /// sums, ...); the caller then falls back to per-row [`AggState::update`].
    pub fn update_vector(&mut self, v: &Vector, sel: Option<&SelectionVector>) -> Result<bool> {
        // COUNT only needs validity, not data.
        if let AggState::Count(c) = self {
            match sel {
                None => *c += v.validity().count_valid() as i64,
                Some(sel) => {
                    let validity = v.validity();
                    *c += sel.iter().filter(|&&i| validity.is_valid(i as usize)).count() as i64;
                }
            }
            return Ok(true);
        }
        // Compressed-domain fast paths. Only the exact-integer states
        // (SUM over an integer input, MIN/MAX) aggregate straight off the
        // encoded form: integer arithmetic is associative, so folding a
        // whole FOR frame or RLE run at once is bit-identical to the
        // per-row loop. Floating-point states fall through to the lazily
        // decoded path below, which keeps their summation order.
        if let Some((frame, deltas)) = v.for_parts() {
            let validity = v.validity();
            match self {
                AggState::SumInt { sum, seen } => {
                    // sum = frame * valid_count + sum(valid deltas).
                    let (mut acc, mut n): (i128, i128) = (0, 0);
                    match sel {
                        None if validity.all_valid() => {
                            n = deltas.len() as i128;
                            acc = deltas.iter().map(|&d| i128::from(d)).sum();
                        }
                        None => {
                            for (i, &d) in deltas.iter().enumerate() {
                                if validity.is_valid(i) {
                                    acc += i128::from(d);
                                    n += 1;
                                }
                            }
                        }
                        Some(sel) => {
                            for &i in sel.iter() {
                                let i = i as usize;
                                if validity.is_valid(i) {
                                    acc += i128::from(deltas[i]);
                                    n += 1;
                                }
                            }
                        }
                    }
                    *sum += i128::from(frame) * n + acc;
                    *seen |= n > 0;
                    return Ok(true);
                }
                AggState::Min(_) | AggState::Max(_) => {
                    // The frame offset is order-preserving: reduce over the
                    // u32 deltas and add the frame back once at the end.
                    let want = if matches!(self, AggState::Max(_)) {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    };
                    let mut best: Option<u32> = None;
                    let mut consider = |d: u32| {
                        best = Some(match best {
                            None => d,
                            Some(b) if d.cmp(&b) == want => d,
                            Some(b) => b,
                        });
                    };
                    match sel {
                        None => {
                            for (i, &d) in deltas.iter().enumerate() {
                                if validity.is_valid(i) {
                                    consider(d);
                                }
                            }
                        }
                        Some(sel) => {
                            for &i in sel.iter() {
                                let i = i as usize;
                                if validity.is_valid(i) {
                                    consider(deltas[i]);
                                }
                            }
                        }
                    }
                    if let Some(b) = best {
                        self.update(&value_of(v.logical_type(), &(frame + i64::from(b))))?;
                    }
                    return Ok(true);
                }
                _ => {}
            }
        }
        if sel.is_none() && v.validity().all_valid() {
            if let Some((runs, starts)) = v.rle_parts() {
                let len = v.len();
                let run_len =
                    |i: usize| starts.get(i + 1).map_or(len, |&s| s as usize) - starts[i] as usize;
                macro_rules! rle_kernels {
                    ($rv:expr, $t:ty, $as_i64:expr) => {
                        match self {
                            AggState::SumInt { sum, seen } => {
                                // One multiply per run instead of one add
                                // per row; exact in i128.
                                for (i, x) in $rv.iter().enumerate() {
                                    *sum += i128::from($as_i64(x)) * run_len(i) as i128;
                                }
                                *seen |= !$rv.is_empty();
                                return Ok(true);
                            }
                            AggState::Min(_) | AggState::Max(_) => {
                                // Run lengths are irrelevant to extremes:
                                // reduce over the run values alone.
                                let want = if matches!(self, AggState::Max(_)) {
                                    Ordering::Greater
                                } else {
                                    Ordering::Less
                                };
                                let mut best: Option<$t> = None;
                                for x in $rv.iter() {
                                    best = Some(match best {
                                        None => *x,
                                        Some(b) if x.cmp(&b) == want => *x,
                                        Some(b) => b,
                                    });
                                }
                                if let Some(b) = best {
                                    self.update(&value_of(v.logical_type(), &b))?;
                                }
                                return Ok(true);
                            }
                            _ => {}
                        }
                    };
                }
                match runs {
                    VectorData::I8(rv) => rle_kernels!(rv, i8, |x: &i8| i64::from(*x)),
                    VectorData::I16(rv) => rle_kernels!(rv, i16, |x: &i16| i64::from(*x)),
                    VectorData::I32(rv) => rle_kernels!(rv, i32, |x: &i32| i64::from(*x)),
                    VectorData::I64(rv) => rle_kernels!(rv, i64, |x: &i64| *x),
                    _ => {}
                }
            }
        }
        macro_rules! reduce {
            ($d:expr, $body:expr) => {{
                let d = $d;
                let validity = v.validity();
                let mut apply = $body;
                match sel {
                    None => {
                        if validity.all_valid() {
                            for x in d.iter() {
                                apply(x);
                            }
                        } else {
                            for (i, x) in d.iter().enumerate() {
                                if validity.is_valid(i) {
                                    apply(x);
                                }
                            }
                        }
                    }
                    Some(sel) => {
                        for &i in sel.iter() {
                            let i = i as usize;
                            if validity.is_valid(i) {
                                apply(&d[i]);
                            }
                        }
                    }
                }
            }};
        }
        macro_rules! numeric_kernels {
            ($d:expr, $t:ty, $as_i64:expr, $as_f64:expr) => {
                match self {
                    AggState::SumInt { sum, seen } => {
                        let mut acc: i128 = 0;
                        let mut any = false;
                        reduce!($d, |x| {
                            acc += i128::from($as_i64(x));
                            any = true;
                        });
                        *sum += acc;
                        *seen |= any;
                        Ok(true)
                    }
                    AggState::SumDouble { sum, seen } => {
                        let mut any = false;
                        reduce!($d, |x| {
                            *sum += $as_f64(x);
                            any = true;
                        });
                        *seen |= any;
                        Ok(true)
                    }
                    AggState::Avg { sum, count } => {
                        reduce!($d, |x| {
                            *sum += $as_f64(x);
                            *count += 1;
                        });
                        Ok(true)
                    }
                    AggState::Min(_) | AggState::Max(_) => {
                        // Reduce to the chunk-local extreme first, then do a
                        // single Value comparison against the stored state.
                        // `partial_cmp` (not `<`/`>`) keeps the per-row
                        // path's semantics for doubles: an incomparable
                        // pair (NaN) never replaces the held value, exactly
                        // like `Value::total_cmp`'s Equal fallback.
                        let want = if matches!(self, AggState::Max(_)) {
                            Ordering::Greater
                        } else {
                            Ordering::Less
                        };
                        let mut best: Option<$t> = None;
                        reduce!($d, |x: &$t| {
                            best = match best {
                                None => Some(*x),
                                Some(b) => {
                                    if (*x).partial_cmp(&b) == Some(want) {
                                        Some(*x)
                                    } else {
                                        Some(b)
                                    }
                                }
                            };
                        });
                        if let Some(b) = best {
                            self.update(&value_of(v.logical_type(), &b))?;
                        }
                        Ok(true)
                    }
                    AggState::Welford { count, mean, m2, .. } => {
                        reduce!($d, |x| {
                            let xf = $as_f64(x);
                            *count += 1;
                            let delta = xf - *mean;
                            *mean += delta / *count as f64;
                            *m2 += delta * (xf - *mean);
                        });
                        Ok(true)
                    }
                    _ => Ok(false),
                }
            };
        }
        match v.data() {
            VectorData::I8(d) => {
                numeric_kernels!(d, i8, |x: &i8| i64::from(*x), |x: &i8| *x as f64)
            }
            VectorData::I16(d) => {
                numeric_kernels!(d, i16, |x: &i16| i64::from(*x), |x: &i16| *x as f64)
            }
            VectorData::I32(d) => {
                numeric_kernels!(d, i32, |x: &i32| i64::from(*x), |x: &i32| *x as f64)
            }
            VectorData::I64(d) => numeric_kernels!(d, i64, |x: &i64| *x, |x: &i64| *x as f64),
            VectorData::F64(d) => match self {
                // SUM over an integer state never sees doubles (the state is
                // chosen from the input type), so only the double-native
                // kernels apply here; the rest falls back.
                AggState::SumDouble { .. }
                | AggState::Avg { .. }
                | AggState::Min(_)
                | AggState::Max(_)
                | AggState::Welford { .. } => {
                    numeric_kernels!(d, f64, |x: &f64| *x as i64, |x: &f64| *x)
                }
                _ => Ok(false),
            },
            VectorData::Bool(_) | VectorData::Str(_) => Ok(false),
        }
    }

    /// Rough heap footprint for memory accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<AggState>()
            + match self {
                AggState::Distinct { seen, .. } => seen.len() * 48,
                _ => 0,
            }
    }
}

/// Native-to-`Value` lift that preserves the column's logical type
/// (`I32` storage may be `INTEGER` or `DATE`, `I64` may be `TIMESTAMP`).
trait TypedValue: Copy {
    fn to_value(self, ty: LogicalType) -> Value;
}

impl TypedValue for i8 {
    fn to_value(self, _ty: LogicalType) -> Value {
        Value::TinyInt(self)
    }
}
impl TypedValue for i16 {
    fn to_value(self, _ty: LogicalType) -> Value {
        Value::SmallInt(self)
    }
}
impl TypedValue for i32 {
    fn to_value(self, ty: LogicalType) -> Value {
        if ty == LogicalType::Date {
            Value::Date(self)
        } else {
            Value::Integer(self)
        }
    }
}
impl TypedValue for i64 {
    fn to_value(self, ty: LogicalType) -> Value {
        if ty == LogicalType::Timestamp {
            Value::Timestamp(self)
        } else {
            Value::BigInt(self)
        }
    }
}
impl TypedValue for f64 {
    fn to_value(self, _ty: LogicalType) -> Value {
        Value::Double(self)
    }
}

fn value_of<T: TypedValue>(ty: LogicalType, x: &T) -> Value {
    x.to_value(ty)
}

/// Scatter-update kernel for grouped aggregation: fold every row of `arg`
/// into `states[group_ids[row]][agg_idx]` with the aggregate's typed
/// update inlined per physical type. `arg = None` is COUNT(*) (every row
/// counts). DISTINCT states and unkernelled combinations fall back to the
/// per-row [`AggState::update`] semantics inside the same loop, so the
/// two paths cannot diverge.
pub fn update_grouped_states(
    states: &mut [AggState],
    width: usize,
    agg_idx: usize,
    group_ids: &[u32],
    arg: Option<&Vector>,
) -> Result<()> {
    let Some(v) = arg else {
        for &g in group_ids {
            match &mut states[g as usize * width + agg_idx] {
                AggState::Count(c) => *c += 1,
                st => st.update(&Value::Boolean(true))?,
            }
        }
        return Ok(());
    };
    debug_assert_eq!(v.len(), group_ids.len());
    let validity = v.validity();
    let ty = v.logical_type();
    macro_rules! grouped_loop {
        ($d:expr, $as_i64:expr, $as_f64:expr) => {{
            let d = $d;
            for (row, &g) in group_ids.iter().enumerate() {
                if !validity.is_valid(row) {
                    continue;
                }
                let x = d[row];
                match &mut states[g as usize * width + agg_idx] {
                    AggState::Count(c) => *c += 1,
                    AggState::SumInt { sum, seen } => {
                        *sum += i128::from($as_i64(x));
                        *seen = true;
                    }
                    AggState::SumDouble { sum, seen } => {
                        *sum += $as_f64(x);
                        *seen = true;
                    }
                    AggState::Avg { sum, count } => {
                        *sum += $as_f64(x);
                        *count += 1;
                    }
                    AggState::Welford { count, mean, m2, .. } => {
                        let xf = $as_f64(x);
                        *count += 1;
                        let delta = xf - *mean;
                        *mean += delta / *count as f64;
                        *m2 += delta * (xf - *mean);
                    }
                    // MIN/MAX and DISTINCT go through the shared per-row
                    // update (stack-only `Value`s for these types).
                    st => st.update(&value_of(ty, &x))?,
                }
            }
        }};
    }
    match v.data() {
        VectorData::I8(d) => grouped_loop!(d, |x: i8| i64::from(x), |x: i8| x as f64),
        VectorData::I16(d) => grouped_loop!(d, |x: i16| i64::from(x), |x: i16| x as f64),
        VectorData::I32(d) => grouped_loop!(d, |x: i32| i64::from(x), |x: i32| x as f64),
        VectorData::I64(d) => grouped_loop!(d, |x: i64| x, |x: i64| x as f64),
        VectorData::F64(d) => {
            // An integral SUM state never legitimately sees doubles; route
            // that combination through the per-row path so it errors the
            // same way the `Value` path always has.
            for (row, &g) in group_ids.iter().enumerate() {
                if !validity.is_valid(row) {
                    continue;
                }
                let x = d[row];
                match &mut states[g as usize * width + agg_idx] {
                    AggState::Count(c) => *c += 1,
                    AggState::SumDouble { sum, seen } => {
                        *sum += x;
                        *seen = true;
                    }
                    AggState::Avg { sum, count } => {
                        *sum += x;
                        *count += 1;
                    }
                    AggState::Welford { count, mean, m2, .. } => {
                        *count += 1;
                        let delta = x - *mean;
                        *mean += delta / *count as f64;
                        *m2 += delta * (x - *mean);
                    }
                    st => st.update(&Value::Double(x))?,
                }
            }
        }
        VectorData::Str(d) => {
            // MIN/MAX over strings compare borrowed; the fallback only
            // clones when a row actually becomes the new extreme.
            for (row, &g) in group_ids.iter().enumerate() {
                if !validity.is_valid(row) {
                    continue;
                }
                let x = &d[row];
                match &mut states[g as usize * width + agg_idx] {
                    AggState::Count(c) => *c += 1,
                    AggState::Min(cur) => {
                        if cur.as_ref().and_then(Value::as_str).is_none_or(|m| x.as_str() < m) {
                            *cur = Some(Value::Varchar(x.clone()));
                        }
                    }
                    AggState::Max(cur) => {
                        if cur.as_ref().and_then(Value::as_str).is_none_or(|m| x.as_str() > m) {
                            *cur = Some(Value::Varchar(x.clone()));
                        }
                    }
                    st => st.update(&Value::Varchar(x.clone()))?,
                }
            }
        }
        VectorData::Bool(d) => {
            for (row, &g) in group_ids.iter().enumerate() {
                if !validity.is_valid(row) {
                    continue;
                }
                match &mut states[g as usize * width + agg_idx] {
                    AggState::Count(c) => *c += 1,
                    st => st.update(&Value::Boolean(d[row]))?,
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, ty: Option<LogicalType>, distinct: bool, vals: &[Value]) -> Value {
        let mut s = AggState::new(kind, ty, distinct);
        for v in vals {
            s.update(v).unwrap();
        }
        s.finalize().unwrap()
    }

    #[test]
    fn count_ignores_nulls() {
        let vals = vec![Value::Integer(1), Value::Null, Value::Integer(3)];
        assert_eq!(run(AggKind::Count, None, false, &vals), Value::BigInt(2));
    }

    #[test]
    fn sum_int_and_double() {
        let ints = vec![Value::Integer(1), Value::Integer(2), Value::Null];
        assert_eq!(run(AggKind::Sum, Some(LogicalType::Integer), false, &ints), Value::BigInt(3));
        let dbls = vec![Value::Double(1.5), Value::Double(2.5)];
        assert_eq!(run(AggKind::Sum, Some(LogicalType::Double), false, &dbls), Value::Double(4.0));
        assert_eq!(run(AggKind::Sum, Some(LogicalType::Integer), false, &[]), Value::Null);
    }

    #[test]
    fn sum_uses_wide_accumulator() {
        // Summing many i64::MAX values must not overflow mid-stream.
        let vals = vec![
            Value::BigInt(i64::MAX),
            Value::BigInt(i64::MAX),
            Value::BigInt(-i64::MAX),
            Value::BigInt(-i64::MAX + 5),
        ];
        assert_eq!(run(AggKind::Sum, Some(LogicalType::BigInt), false, &vals), Value::BigInt(5));
        // But a final result out of range errors.
        let mut s = AggState::new(AggKind::Sum, Some(LogicalType::BigInt), false);
        s.update(&Value::BigInt(i64::MAX)).unwrap();
        s.update(&Value::BigInt(1)).unwrap();
        assert!(s.finalize().is_err());
    }

    #[test]
    fn avg_min_max() {
        let vals = vec![Value::Integer(10), Value::Integer(20), Value::Null];
        assert_eq!(run(AggKind::Avg, None, false, &vals), Value::Double(15.0));
        assert_eq!(run(AggKind::Min, Some(LogicalType::Integer), false, &vals), Value::Integer(10));
        assert_eq!(run(AggKind::Max, Some(LogicalType::Integer), false, &vals), Value::Integer(20));
        assert_eq!(run(AggKind::Min, Some(LogicalType::Integer), false, &[]), Value::Null);
    }

    #[test]
    fn stddev_and_variance() {
        let vals: Vec<Value> =
            [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().map(|&f| Value::Double(f)).collect();
        let var = run(AggKind::VarSamp, None, false, &vals);
        if let Value::Double(v) = var {
            assert!((v - 4.571428571428571).abs() < 1e-9);
        } else {
            panic!("{var:?}");
        }
        let sd = run(AggKind::StdDevSamp, None, false, &vals);
        if let Value::Double(v) = sd {
            assert!((v - 4.571428571428571f64.sqrt()).abs() < 1e-9);
        } else {
            panic!("{sd:?}");
        }
        assert_eq!(run(AggKind::StdDevSamp, None, false, &vals[..1]), Value::Null);
    }

    #[test]
    fn distinct_aggregates() {
        let vals = vec![
            Value::Integer(5),
            Value::Integer(5),
            Value::Integer(7),
            Value::Null,
            Value::Integer(7),
        ];
        assert_eq!(run(AggKind::Count, None, true, &vals), Value::BigInt(2));
        assert_eq!(run(AggKind::Sum, Some(LogicalType::Integer), true, &vals), Value::BigInt(12));
    }

    #[test]
    fn merge_equals_sequential_update() {
        // Splitting any value stream across partial states and merging
        // must match feeding one state sequentially.
        let vals: Vec<Value> = (0..100)
            .map(|i| if i % 11 == 0 { Value::Null } else { Value::Integer((i * 37) % 50 - 25) })
            .collect();
        let cases: Vec<(AggKind, bool)> = vec![
            (AggKind::CountStar, false),
            (AggKind::Count, false),
            (AggKind::Sum, false),
            (AggKind::Avg, false),
            (AggKind::Min, false),
            (AggKind::Max, false),
            (AggKind::VarSamp, false),
            (AggKind::StdDevSamp, false),
            (AggKind::Count, true),
            (AggKind::Sum, true),
        ];
        for (kind, distinct) in cases {
            let ty = Some(LogicalType::Integer);
            let mut whole = AggState::new(kind, ty, distinct);
            for v in &vals {
                whole.update(v).unwrap();
            }
            let mut merged = AggState::new(kind, ty, distinct);
            for part in vals.chunks(17) {
                let mut partial = AggState::new(kind, ty, distinct);
                for v in part {
                    partial.update(v).unwrap();
                }
                merged.merge(&partial).unwrap();
            }
            let (a, b) = (whole.finalize().unwrap(), merged.finalize().unwrap());
            match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() < 1e-9, "{kind:?} distinct={distinct}: {x} vs {y}")
                }
                _ => assert_eq!(a, b, "{kind:?} distinct={distinct}"),
            }
        }
    }

    #[test]
    fn update_vector_matches_per_row_updates() {
        use eider_vector::Vector;
        let cases: Vec<(LogicalType, Vec<Value>)> = vec![
            (
                LogicalType::Integer,
                (0..200)
                    .map(|i| if i % 7 == 0 { Value::Null } else { Value::Integer(i * 3 - 100) })
                    .collect(),
            ),
            (
                LogicalType::Double,
                (0..200)
                    .map(|i| {
                        if i % 5 == 0 {
                            Value::Null
                        } else {
                            Value::Double(f64::from(i) * 0.25 - 10.0)
                        }
                    })
                    .collect(),
            ),
            (LogicalType::BigInt, (0..100).map(|i| Value::BigInt(i64::from(i) << 20)).collect()),
        ];
        let kinds = [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::VarSamp,
        ];
        for (ty, vals) in cases {
            let v = Vector::from_values(ty, &vals).unwrap();
            for kind in kinds {
                let mut bulk = AggState::new(kind, Some(ty), false);
                assert!(bulk.update_vector(&v, None).unwrap(), "{kind:?} over {ty}");
                let mut scalar = AggState::new(kind, Some(ty), false);
                for val in &vals {
                    scalar.update(val).unwrap();
                }
                let (a, b) = (bulk.finalize().unwrap(), scalar.finalize().unwrap());
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() < 1e-9, "{kind:?} over {ty}: {x} vs {y}")
                    }
                    _ => assert_eq!(a, b, "{kind:?} over {ty}"),
                }
            }
        }
    }

    #[test]
    fn bulk_min_max_match_per_row_on_nan() {
        use eider_vector::Vector;
        // NaN is incomparable: the per-row path keeps the held value on
        // the total_cmp Equal fallback, and the bulk kernel must agree in
        // BOTH orders.
        for vals in [
            vec![Value::Double(1.0), Value::Double(f64::NAN)],
            vec![Value::Double(f64::NAN), Value::Double(1.0)],
        ] {
            let v = Vector::from_values(LogicalType::Double, &vals).unwrap();
            for kind in [AggKind::Min, AggKind::Max] {
                let mut bulk = AggState::new(kind, Some(LogicalType::Double), false);
                assert!(bulk.update_vector(&v, None).unwrap());
                let mut scalar = AggState::new(kind, Some(LogicalType::Double), false);
                for val in &vals {
                    scalar.update(val).unwrap();
                }
                let (a, b) = (bulk.finalize().unwrap(), scalar.finalize().unwrap());
                // Compare bit patterns (NaN != NaN under ==).
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "{kind:?} over {vals:?}");
            }
        }
    }

    #[test]
    fn update_vector_respects_selection() {
        use eider_vector::Vector;
        let v = Vector::from_values(
            LogicalType::Integer,
            &(0..10).map(Value::Integer).collect::<Vec<_>>(),
        )
        .unwrap();
        let sel = SelectionVector::from_indexes(vec![1, 3, 5]);
        let mut s = AggState::new(AggKind::Sum, Some(LogicalType::Integer), false);
        assert!(s.update_vector(&v, Some(&sel)).unwrap());
        assert_eq!(s.finalize().unwrap(), Value::BigInt(9));
    }

    #[test]
    fn update_vector_rejects_distinct() {
        use eider_vector::Vector;
        let v = Vector::from_values(LogicalType::Integer, &[Value::Integer(1)]).unwrap();
        let mut s = AggState::new(AggKind::Sum, Some(LogicalType::Integer), true);
        assert!(!s.update_vector(&v, None).unwrap(), "DISTINCT must take the per-row path");
    }

    #[test]
    fn grouped_kernel_matches_per_row_updates() {
        use eider_vector::Vector;
        let vals: Vec<Value> = (0..300)
            .map(|i| if i % 9 == 0 { Value::Null } else { Value::Integer(i % 40) })
            .collect();
        let v = Vector::from_values(LogicalType::Integer, &vals).unwrap();
        let group_ids: Vec<u32> = (0..300u32).map(|i| i % 4).collect();
        let kinds = [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max];
        for kind in kinds {
            for distinct in [false, true] {
                let mut grouped: Vec<AggState> = (0..4)
                    .map(|_| AggState::new(kind, Some(LogicalType::Integer), distinct))
                    .collect();
                update_grouped_states(&mut grouped, 1, 0, &group_ids, Some(&v)).unwrap();
                for (g, state) in grouped.iter().enumerate() {
                    let mut scalar = AggState::new(kind, Some(LogicalType::Integer), distinct);
                    for (row, val) in vals.iter().enumerate() {
                        if group_ids[row] as usize == g {
                            scalar.update(val).unwrap();
                        }
                    }
                    assert_eq!(
                        state.finalize().unwrap(),
                        scalar.finalize().unwrap(),
                        "{kind:?} distinct={distinct} group {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_states() {
        let mut a = AggState::new(AggKind::Count, None, false);
        let b = AggState::new(AggKind::Avg, None, false);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn result_types() {
        assert_eq!(AggKind::Sum.result_type(Some(LogicalType::Integer)), LogicalType::BigInt);
        assert_eq!(AggKind::Sum.result_type(Some(LogicalType::Double)), LogicalType::Double);
        assert_eq!(AggKind::Avg.result_type(Some(LogicalType::Integer)), LogicalType::Double);
        assert_eq!(AggKind::Min.result_type(Some(LogicalType::Varchar)), LogicalType::Varchar);
        assert_eq!(AggKind::by_name("STDDEV"), Some(AggKind::StdDevSamp));
        assert_eq!(AggKind::by_name("nope"), None);
    }
}
