//! Vectorized expression evaluation.
//!
//! Expressions evaluate over a whole [`DataChunk`] at a time, producing a
//! new [`Vector`]. The hot kernels — comparisons and arithmetic over
//! matching numeric types — run as tight typed loops over slices; mixed or
//! rare combinations fall back to value-at-a-time evaluation. This is the
//! architectural answer to §2's requirement that "only a comparably low
//! amount of CPU cycles per value can be spent": interpretation overhead is
//! paid once per 2048-row vector, not once per value (the `olap` benchmark
//! measures the difference against the row-at-a-time baseline).
//!
//! Expressions also evaluate row-wise ([`Expr::evaluate_row`]) for the
//! optimizer's constant folding and for the baseline engine.

use crate::fxhash::fxhash;
use eider_txn::CmpOp;
use eider_vector::{
    DataChunk, EiderError, LogicalType, Result, SelectionVector, Value, Vector, VectorData,
};
use std::cmp::Ordering;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Round,
    Floor,
    Ceil,
    Sqrt,
    Length,
    Lower,
    Upper,
    Substr,
    Concat,
    Coalesce,
    NullIf,
}

impl ScalarFunc {
    pub fn by_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "abs" => ScalarFunc::Abs,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "sqrt" => ScalarFunc::Sqrt,
            "length" | "len" | "strlen" => ScalarFunc::Length,
            "lower" | "lcase" => ScalarFunc::Lower,
            "upper" | "ucase" => ScalarFunc::Upper,
            "substr" | "substring" => ScalarFunc::Substr,
            "concat" => ScalarFunc::Concat,
            "coalesce" | "ifnull" => ScalarFunc::Coalesce,
            "nullif" => ScalarFunc::NullIf,
            _ => return None,
        })
    }

    /// Result type given argument types (after binder validation).
    pub fn result_type(&self, args: &[LogicalType]) -> LogicalType {
        match self {
            ScalarFunc::Abs => args.first().copied().unwrap_or(LogicalType::Double),
            ScalarFunc::Round | ScalarFunc::Floor | ScalarFunc::Ceil | ScalarFunc::Sqrt => {
                LogicalType::Double
            }
            ScalarFunc::Length => LogicalType::BigInt,
            ScalarFunc::Lower | ScalarFunc::Upper | ScalarFunc::Substr | ScalarFunc::Concat => {
                LogicalType::Varchar
            }
            ScalarFunc::Coalesce | ScalarFunc::NullIf => {
                args.first().copied().unwrap_or(LogicalType::Varchar)
            }
        }
    }
}

/// A physical (bound, typed) expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Reference to a column of the input chunk.
    ColumnRef {
        index: usize,
        ty: LogicalType,
    },
    Constant {
        value: Value,
        ty: LogicalType,
    },
    Compare {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Arithmetic {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
        ty: LogicalType,
    },
    Cast {
        child: Box<Expr>,
        to: LogicalType,
    },
    IsNull {
        child: Box<Expr>,
        negated: bool,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
        ty: LogicalType,
    },
    Function {
        func: ScalarFunc,
        args: Vec<Expr>,
        ty: LogicalType,
    },
    Like {
        child: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    InList {
        child: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
}

impl Expr {
    pub fn column(index: usize, ty: LogicalType) -> Expr {
        Expr::ColumnRef { index, ty }
    }

    pub fn constant(value: Value) -> Expr {
        let ty = value.logical_type().unwrap_or(LogicalType::Integer);
        Expr::Constant { value, ty }
    }

    pub fn result_type(&self) -> LogicalType {
        match self {
            Expr::ColumnRef { ty, .. } => *ty,
            Expr::Constant { ty, .. } => *ty,
            Expr::Compare { .. }
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::IsNull { .. }
            | Expr::Like { .. }
            | Expr::InList { .. } => LogicalType::Boolean,
            Expr::Arithmetic { ty, .. } => *ty,
            Expr::Cast { to, .. } => *to,
            Expr::Case { ty, .. } => *ty,
            Expr::Function { ty, .. } => *ty,
        }
    }

    /// True if no column references appear (constant-foldable).
    pub fn is_constant(&self) -> bool {
        match self {
            Expr::ColumnRef { .. } => false,
            Expr::Constant { .. } => true,
            Expr::Compare { left, right, .. } => left.is_constant() && right.is_constant(),
            Expr::And(c) | Expr::Or(c) => c.iter().all(Expr::is_constant),
            Expr::Not(c) => c.is_constant(),
            Expr::Arithmetic { left, right, .. } => left.is_constant() && right.is_constant(),
            Expr::Cast { child, .. } => child.is_constant(),
            Expr::IsNull { child, .. } => child.is_constant(),
            Expr::Case { branches, else_expr, .. } => {
                branches.iter().all(|(c, v)| c.is_constant() && v.is_constant())
                    && else_expr.as_ref().is_none_or(|e| e.is_constant())
            }
            Expr::Function { args, .. } => args.iter().all(Expr::is_constant),
            Expr::Like { child, pattern, .. } => child.is_constant() && pattern.is_constant(),
            Expr::InList { child, list, .. } => {
                child.is_constant() && list.iter().all(Expr::is_constant)
            }
        }
    }

    /// Evaluate over a chunk, producing one value per input row.
    pub fn evaluate(&self, chunk: &DataChunk) -> Result<Vector> {
        let count = chunk.len();
        match self {
            Expr::ColumnRef { index, .. } => Ok(chunk.column(*index).clone()),
            Expr::Constant { value, ty } => Vector::constant(*ty, value, count),
            Expr::Compare { op, left, right } => {
                let l = left.evaluate(chunk)?;
                let r = right.evaluate(chunk)?;
                compare_vectors(*op, &l, &r)
            }
            Expr::And(children) => {
                let vecs: Vec<Vector> =
                    children.iter().map(|c| c.evaluate(chunk)).collect::<Result<_>>()?;
                conjunction(&vecs, true, count)
            }
            Expr::Or(children) => {
                let vecs: Vec<Vector> =
                    children.iter().map(|c| c.evaluate(chunk)).collect::<Result<_>>()?;
                conjunction(&vecs, false, count)
            }
            Expr::Not(child) => {
                let v = child.evaluate(chunk)?;
                let mut out = Vector::with_capacity(LogicalType::Boolean, v.len());
                for i in 0..v.len() {
                    match v.get_value(i) {
                        Value::Null => out.push_null(),
                        Value::Boolean(b) => out.push_value(&Value::Boolean(!b))?,
                        other => {
                            return Err(EiderError::TypeMismatch(format!(
                                "NOT applied to non-boolean {other}"
                            )))
                        }
                    }
                }
                Ok(out)
            }
            Expr::Arithmetic { op, left, right, ty } => {
                let l = left.evaluate(chunk)?.cast(*ty)?;
                let r = right.evaluate(chunk)?.cast(*ty)?;
                arithmetic_vectors(*op, &l, &r, *ty)
            }
            Expr::Cast { child, to } => child.evaluate(chunk)?.cast(*to),
            Expr::IsNull { child, negated } => {
                let v = child.evaluate(chunk)?;
                let mut out = Vector::with_capacity(LogicalType::Boolean, v.len());
                for i in 0..v.len() {
                    let is_null = v.is_null(i);
                    out.push_value(&Value::Boolean(is_null != *negated))?;
                }
                Ok(out)
            }
            Expr::Case { branches, else_expr, ty } => {
                // Row-wise: CASE is control flow; lazy evaluation per row
                // avoids spurious errors in untaken branches.
                let mut out = Vector::with_capacity(*ty, count);
                for row in 0..count {
                    let vals = chunk.row_values(row);
                    out.push_value(&self.case_row(branches, else_expr, &vals)?)?;
                }
                Ok(out)
            }
            Expr::Function { func, args, ty } => {
                let arg_vecs: Vec<Vector> =
                    args.iter().map(|a| a.evaluate(chunk)).collect::<Result<_>>()?;
                let mut out = Vector::with_capacity(*ty, count);
                let mut scratch = Vec::with_capacity(arg_vecs.len());
                for row in 0..count {
                    scratch.clear();
                    for v in &arg_vecs {
                        scratch.push(v.get_value(row));
                    }
                    out.push_value(&evaluate_function(*func, &scratch)?)?;
                }
                Ok(out)
            }
            Expr::Like { child, pattern, negated } => {
                let c = child.evaluate(chunk)?;
                // Constant patterns (the common `col LIKE 'x%'` shape) are
                // extracted, validated and compiled ONCE per vector; only
                // the match itself runs per row.
                if pattern.is_constant() {
                    return match pattern.evaluate_row(&[])? {
                        Value::Null => {
                            let mut out = Vector::with_capacity(LogicalType::Boolean, count);
                            for _ in 0..count {
                                out.push_null();
                            }
                            Ok(out)
                        }
                        Value::Varchar(p) => {
                            let matcher = LikeMatcher::new(&p);
                            let mut out = Vector::with_capacity(LogicalType::Boolean, count);
                            match c.data() {
                                VectorData::Str(d) => {
                                    let validity = c.validity();
                                    for (i, s) in d.iter().enumerate() {
                                        if validity.is_valid(i) {
                                            out.push_value(&Value::Boolean(
                                                matcher.matches(s) != *negated,
                                            ))?;
                                        } else {
                                            out.push_null();
                                        }
                                    }
                                    Ok(out)
                                }
                                _ => {
                                    if c.validity().count_valid() == 0 {
                                        for _ in 0..count {
                                            out.push_null();
                                        }
                                        return Ok(out);
                                    }
                                    Err(EiderError::TypeMismatch(format!(
                                        "LIKE requires strings, got {} LIKE pattern",
                                        c.logical_type()
                                    )))
                                }
                            }
                        }
                        other => Err(EiderError::TypeMismatch(format!(
                            "LIKE requires a string pattern, got {other}"
                        ))),
                    };
                }
                let p = pattern.evaluate(chunk)?;
                let mut out = Vector::with_capacity(LogicalType::Boolean, count);
                for row in 0..count {
                    match (c.get_value(row), p.get_value(row)) {
                        (Value::Null, _) | (_, Value::Null) => out.push_null(),
                        (Value::Varchar(s), Value::Varchar(pat)) => {
                            out.push_value(&Value::Boolean(like_match(&pat, &s) != *negated))?
                        }
                        (a, b) => {
                            return Err(EiderError::TypeMismatch(format!(
                                "LIKE requires strings, got {a} LIKE {b}"
                            )))
                        }
                    }
                }
                Ok(out)
            }
            Expr::InList { child, list, negated } => {
                let c = child.evaluate(chunk)?;
                // Constant lists (the common `col IN (1, 2, 3)` shape) are
                // evaluated once per vector instead of materializing one
                // constant vector per item per chunk.
                if list.iter().all(Expr::is_constant) {
                    let mut consts: Vec<Value> = Vec::with_capacity(list.len());
                    let mut list_has_null = false;
                    for item in list {
                        match item.evaluate_row(&[])? {
                            Value::Null => list_has_null = true,
                            v => consts.push(v),
                        }
                    }
                    let mut out = Vector::with_capacity(LogicalType::Boolean, count);
                    for row in 0..count {
                        let needle = c.get_value(row);
                        if needle.is_null() {
                            out.push_null();
                            continue;
                        }
                        let found =
                            consts.iter().any(|v| needle.sql_cmp(v) == Some(Ordering::Equal));
                        if found {
                            out.push_value(&Value::Boolean(!*negated))?;
                        } else if list_has_null {
                            out.push_null(); // x IN (..., NULL) is NULL when unmatched
                        } else {
                            out.push_value(&Value::Boolean(*negated))?;
                        }
                    }
                    return Ok(out);
                }
                let items: Vec<Vector> =
                    list.iter().map(|e| e.evaluate(chunk)).collect::<Result<_>>()?;
                let mut out = Vector::with_capacity(LogicalType::Boolean, count);
                for row in 0..count {
                    let needle = c.get_value(row);
                    if needle.is_null() {
                        out.push_null();
                        continue;
                    }
                    let mut found = false;
                    let mut saw_null = false;
                    for item in &items {
                        let v = item.get_value(row);
                        if v.is_null() {
                            saw_null = true;
                        } else if needle.sql_cmp(&v) == Some(Ordering::Equal) {
                            found = true;
                            break;
                        }
                    }
                    if found {
                        out.push_value(&Value::Boolean(!*negated))?;
                    } else if saw_null {
                        out.push_null(); // SQL: x IN (..., NULL) is NULL when unmatched
                    } else {
                        out.push_value(&Value::Boolean(*negated))?;
                    }
                }
                Ok(out)
            }
        }
    }

    fn case_row(
        &self,
        branches: &[(Expr, Expr)],
        else_expr: &Option<Box<Expr>>,
        row: &[Value],
    ) -> Result<Value> {
        for (cond, value) in branches {
            if cond.evaluate_row(row)? == Value::Boolean(true) {
                return value.evaluate_row(row);
            }
        }
        match else_expr {
            Some(e) => e.evaluate_row(row),
            None => Ok(Value::Null),
        }
    }

    /// Evaluate against a single row of values.
    pub fn evaluate_row(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::ColumnRef { index, .. } => Ok(row[*index].clone()),
            Expr::Constant { value, .. } => Ok(value.clone()),
            Expr::Compare { op, left, right } => {
                let l = left.evaluate_row(row)?;
                let r = right.evaluate_row(row)?;
                Ok(match l.sql_cmp(&r) {
                    Some(ord) => Value::Boolean(op.evaluate(ord)),
                    None => Value::Null,
                })
            }
            Expr::And(children) => {
                let mut saw_null = false;
                for c in children {
                    match c.evaluate_row(row)? {
                        Value::Boolean(false) => return Ok(Value::Boolean(false)),
                        Value::Null => saw_null = true,
                        Value::Boolean(true) => {}
                        other => {
                            return Err(EiderError::TypeMismatch(format!(
                                "AND over non-boolean {other}"
                            )))
                        }
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Boolean(true) })
            }
            Expr::Or(children) => {
                let mut saw_null = false;
                for c in children {
                    match c.evaluate_row(row)? {
                        Value::Boolean(true) => return Ok(Value::Boolean(true)),
                        Value::Null => saw_null = true,
                        Value::Boolean(false) => {}
                        other => {
                            return Err(EiderError::TypeMismatch(format!(
                                "OR over non-boolean {other}"
                            )))
                        }
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Boolean(false) })
            }
            Expr::Not(child) => match child.evaluate_row(row)? {
                Value::Null => Ok(Value::Null),
                Value::Boolean(b) => Ok(Value::Boolean(!b)),
                other => Err(EiderError::TypeMismatch(format!("NOT over non-boolean {other}"))),
            },
            Expr::Arithmetic { op, left, right, ty } => {
                let l = left.evaluate_row(row)?.cast_to(*ty)?;
                let r = right.evaluate_row(row)?.cast_to(*ty)?;
                arithmetic_values(*op, &l, &r, *ty)
            }
            Expr::Cast { child, to } => child.evaluate_row(row)?.cast_to(*to),
            Expr::IsNull { child, negated } => {
                let v = child.evaluate_row(row)?;
                Ok(Value::Boolean(v.is_null() != *negated))
            }
            Expr::Case { branches, else_expr, .. } => self.case_row(branches, else_expr, row),
            Expr::Function { func, args, .. } => {
                let vals: Vec<Value> =
                    args.iter().map(|a| a.evaluate_row(row)).collect::<Result<_>>()?;
                evaluate_function(*func, &vals)
            }
            Expr::Like { child, pattern, negated } => {
                match (child.evaluate_row(row)?, pattern.evaluate_row(row)?) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Varchar(s), Value::Varchar(p)) => {
                        Ok(Value::Boolean(like_match(&p, &s) != *negated))
                    }
                    (a, b) => Err(EiderError::TypeMismatch(format!("LIKE over {a} and {b}"))),
                }
            }
            Expr::InList { child, list, negated } => {
                let needle = child.evaluate_row(row)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = item.evaluate_row(row)?;
                    if v.is_null() {
                        saw_null = true;
                    } else if needle.sql_cmp(&v) == Some(Ordering::Equal) {
                        return Ok(Value::Boolean(!*negated));
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Boolean(*negated) })
            }
        }
    }

    /// A stable hash of the expression shape (used for plan diagnostics).
    pub fn shape_hash(&self) -> u64 {
        fxhash(&format!("{self:?}"))
    }
}

/// A LIKE pattern compiled once (`%` = any run, `_` = any single char):
/// the pattern's chars are decoded a single time, and matching walks the
/// text by byte position without allocating — so a constant pattern costs
/// one compilation per *vector*, not a re-parse per row.
pub struct LikeMatcher {
    pattern: Vec<char>,
}

impl LikeMatcher {
    pub fn new(pattern: &str) -> LikeMatcher {
        LikeMatcher { pattern: pattern.chars().collect() }
    }

    /// Iterative backtracking match, allocation-free per call.
    pub fn matches(&self, s: &str) -> bool {
        let p = &self.pattern;
        let (mut pi, mut ti) = (0usize, 0usize); // pattern char idx, text byte idx
        let (mut star_p, mut star_t) = (usize::MAX, 0usize);
        while ti < s.len() {
            let tc = s[ti..].chars().next().expect("ti is a char boundary");
            // '%' is never a literal: without this guard, a '%' in the
            // *text* would consume the wildcard as a plain char match.
            if pi < p.len() && p[pi] != '%' && (p[pi] == '_' || p[pi] == tc) {
                pi += 1;
                ti += tc.len_utf8();
            } else if pi < p.len() && p[pi] == '%' {
                star_p = pi;
                star_t = ti;
                pi += 1;
            } else if star_p != usize::MAX {
                let sc = s[star_t..].chars().next().expect("star_t is a char boundary");
                star_t += sc.len_utf8();
                ti = star_t;
                pi = star_p + 1;
            } else {
                return false;
            }
        }
        while pi < p.len() && p[pi] == '%' {
            pi += 1;
        }
        pi == p.len()
    }
}

/// SQL LIKE convenience over [`LikeMatcher`] (row-wise paths and tests;
/// the vectorized path compiles the matcher once per vector instead).
pub fn like_match(pattern: &str, s: &str) -> bool {
    LikeMatcher::new(pattern).matches(s)
}

/// Turn a Boolean vector into the selection of rows that are TRUE
/// (NULL and FALSE are filtered out, per SQL WHERE semantics).
pub fn filter_selection(flags: &Vector) -> Result<SelectionVector> {
    if flags.logical_type() != LogicalType::Boolean {
        return Err(EiderError::Internal("filter expression is not boolean".into()));
    }
    let data = flags.as_bool();
    let validity = flags.validity();
    let mut sel = SelectionVector::with_capacity(data.len());
    if validity.all_valid() {
        for (i, &b) in data.iter().enumerate() {
            if b {
                sel.push(i as u32);
            }
        }
    } else {
        for (i, &b) in data.iter().enumerate() {
            if b && validity.is_valid(i) {
                sel.push(i as u32);
            }
        }
    }
    Ok(sel)
}

// ---------------- comparison kernels ----------------

macro_rules! cmp_kernel {
    ($l:expr, $r:expr, $op:expr, $out:expr, $lv:expr, $rv:expr) => {{
        for i in 0..$l.len() {
            let ord = $l[i].partial_cmp(&$r[i]).unwrap_or(Ordering::Equal);
            $out.push($op.evaluate(ord));
        }
    }};
}

fn compare_vectors(op: CmpOp, left: &Vector, right: &Vector) -> Result<Vector> {
    debug_assert_eq!(left.len(), right.len());
    let n = left.len();
    let mut validity = left.validity().clone();
    validity.combine(right.validity());
    // Fast paths: identical physical types.
    let mut flags: Vec<bool> = Vec::with_capacity(n);
    match (left.data(), right.data()) {
        (VectorData::I32(l), VectorData::I32(r)) => cmp_kernel!(l, r, op, flags, left, right),
        (VectorData::I64(l), VectorData::I64(r)) => cmp_kernel!(l, r, op, flags, left, right),
        (VectorData::F64(l), VectorData::F64(r)) => cmp_kernel!(l, r, op, flags, left, right),
        (VectorData::I8(l), VectorData::I8(r)) => cmp_kernel!(l, r, op, flags, left, right),
        (VectorData::I16(l), VectorData::I16(r)) => cmp_kernel!(l, r, op, flags, left, right),
        (VectorData::Str(l), VectorData::Str(r)) => {
            for i in 0..n {
                flags.push(op.evaluate(l[i].cmp(&r[i])));
            }
        }
        (VectorData::Bool(l), VectorData::Bool(r)) => {
            for i in 0..n {
                flags.push(op.evaluate(l[i].cmp(&r[i])));
            }
        }
        _ => {
            // Mixed types: value-wise with numeric promotion.
            for i in 0..n {
                let (lv, rv) = (left.get_value(i), right.get_value(i));
                match lv.sql_cmp(&rv) {
                    Some(ord) => flags.push(op.evaluate(ord)),
                    None => {
                        flags.push(false);
                        validity.set_invalid(i);
                    }
                }
            }
        }
    }
    Vector::from_parts(LogicalType::Boolean, VectorData::Bool(flags), validity)
}

/// AND/OR over boolean vectors with three-valued logic.
fn conjunction(vecs: &[Vector], is_and: bool, count: usize) -> Result<Vector> {
    let mut out = Vector::with_capacity(LogicalType::Boolean, count);
    for row in 0..count {
        let mut acc = Some(is_and); // AND starts true, OR starts false
        for v in vecs {
            let val = if v.is_null(row) {
                None
            } else {
                match v.get_value(row) {
                    Value::Boolean(b) => Some(b),
                    other => {
                        return Err(EiderError::TypeMismatch(format!(
                            "logical operator over non-boolean {other}"
                        )))
                    }
                }
            };
            acc = match (is_and, acc, val) {
                (true, Some(false), _) | (true, _, Some(false)) => Some(false),
                (true, Some(true), Some(true)) => Some(true),
                (true, _, _) => None,
                (false, Some(true), _) | (false, _, Some(true)) => Some(true),
                (false, Some(false), Some(false)) => Some(false),
                (false, _, _) => None,
            };
            // Short-circuit when the result is decided.
            if acc == Some(!is_and) {
                break;
            }
        }
        match acc {
            Some(b) => out.push_value(&Value::Boolean(b))?,
            None => out.push_null(),
        }
    }
    Ok(out)
}

// ---------------- arithmetic kernels ----------------

fn arithmetic_vectors(
    op: ArithOp,
    left: &Vector,
    right: &Vector,
    ty: LogicalType,
) -> Result<Vector> {
    let n = left.len();
    let mut validity = left.validity().clone();
    validity.combine(right.validity());
    match ty {
        LogicalType::BigInt
        | LogicalType::Integer
        | LogicalType::SmallInt
        | LogicalType::TinyInt => {
            // Integral kernel over the common physical representation.
            let lv = left.cast(LogicalType::BigInt)?;
            let rv = right.cast(LogicalType::BigInt)?;
            let (l, r) = (lv.as_i64(), rv.as_i64());
            let mut data = Vec::with_capacity(n);
            for i in 0..n {
                if !validity.is_valid(i) {
                    data.push(0);
                    continue;
                }
                let v = match op {
                    ArithOp::Add => l[i].checked_add(r[i]),
                    ArithOp::Sub => l[i].checked_sub(r[i]),
                    ArithOp::Mul => l[i].checked_mul(r[i]),
                    ArithOp::Div => {
                        if r[i] == 0 {
                            validity.set_invalid(i);
                            data.push(0);
                            continue;
                        }
                        l[i].checked_div(r[i])
                    }
                    ArithOp::Mod => {
                        if r[i] == 0 {
                            validity.set_invalid(i);
                            data.push(0);
                            continue;
                        }
                        l[i].checked_rem(r[i])
                    }
                };
                match v {
                    Some(v) => data.push(v),
                    None => {
                        return Err(EiderError::Execution(format!(
                            "integer overflow in {op:?} of {} and {}",
                            l[i], r[i]
                        )))
                    }
                }
            }
            let big = Vector::from_parts(LogicalType::BigInt, VectorData::I64(data), validity)?;
            big.cast(ty)
        }
        LogicalType::Double => {
            let (l, r) = (left.as_f64(), right.as_f64());
            let mut data = Vec::with_capacity(n);
            for i in 0..n {
                if !validity.is_valid(i) {
                    data.push(0.0);
                    continue;
                }
                let v = match op {
                    ArithOp::Add => l[i] + r[i],
                    ArithOp::Sub => l[i] - r[i],
                    ArithOp::Mul => l[i] * r[i],
                    ArithOp::Div => {
                        if r[i] == 0.0 {
                            validity.set_invalid(i);
                            data.push(0.0);
                            continue;
                        }
                        l[i] / r[i]
                    }
                    ArithOp::Mod => {
                        if r[i] == 0.0 {
                            validity.set_invalid(i);
                            data.push(0.0);
                            continue;
                        }
                        l[i] % r[i]
                    }
                };
                data.push(v);
            }
            Vector::from_parts(LogicalType::Double, VectorData::F64(data), validity)
        }
        other => Err(EiderError::TypeMismatch(format!("arithmetic over {other}"))),
    }
}

fn arithmetic_values(op: ArithOp, l: &Value, r: &Value, ty: LogicalType) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match ty {
        LogicalType::Double => {
            let (a, b) = (l.as_f64().unwrap_or(0.0), r.as_f64().unwrap_or(0.0));
            Ok(match op {
                ArithOp::Add => Value::Double(a + b),
                ArithOp::Sub => Value::Double(a - b),
                ArithOp::Mul => Value::Double(a * b),
                ArithOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
                ArithOp::Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a % b)
                    }
                }
            })
        }
        _ => {
            let (a, b) = (
                l.as_i64().ok_or_else(|| EiderError::TypeMismatch(format!("arith over {l}")))?,
                r.as_i64().ok_or_else(|| EiderError::TypeMismatch(format!("arith over {r}")))?,
            );
            let v = match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return Ok(Value::Null);
                    }
                    a.checked_div(b)
                }
                ArithOp::Mod => {
                    if b == 0 {
                        return Ok(Value::Null);
                    }
                    a.checked_rem(b)
                }
            };
            match v {
                Some(v) => Value::BigInt(v).cast_to(ty),
                None => Err(EiderError::Execution(format!("integer overflow in {op:?}"))),
            }
        }
    }
}

fn evaluate_function(func: ScalarFunc, args: &[Value]) -> Result<Value> {
    // COALESCE is the one function with non-strict NULL handling.
    if func == ScalarFunc::Coalesce {
        for a in args {
            if !a.is_null() {
                return Ok(a.clone());
            }
        }
        return Ok(Value::Null);
    }
    if func == ScalarFunc::NullIf {
        let (a, b) = (&args[0], &args[1]);
        if a.is_null() {
            return Ok(Value::Null);
        }
        return Ok(if a.sql_cmp(b) == Some(Ordering::Equal) { Value::Null } else { a.clone() });
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let num_err =
        |name: &str| EiderError::TypeMismatch(format!("{name} requires a numeric argument"));
    Ok(match func {
        ScalarFunc::Abs => match &args[0] {
            Value::Double(f) => Value::Double(f.abs()),
            v => Value::BigInt(v.as_i64().ok_or_else(|| num_err("abs"))?.abs()),
        },
        ScalarFunc::Round => {
            let digits = args.get(1).and_then(Value::as_i64).unwrap_or(0);
            let f = args[0].as_f64().ok_or_else(|| num_err("round"))?;
            let m = 10f64.powi(digits as i32);
            Value::Double((f * m).round() / m)
        }
        ScalarFunc::Floor => {
            Value::Double(args[0].as_f64().ok_or_else(|| num_err("floor"))?.floor())
        }
        ScalarFunc::Ceil => Value::Double(args[0].as_f64().ok_or_else(|| num_err("ceil"))?.ceil()),
        ScalarFunc::Sqrt => {
            let f = args[0].as_f64().ok_or_else(|| num_err("sqrt"))?;
            if f < 0.0 {
                Value::Null
            } else {
                Value::Double(f.sqrt())
            }
        }
        ScalarFunc::Length => match &args[0] {
            Value::Varchar(s) => Value::BigInt(s.chars().count() as i64),
            v => return Err(EiderError::TypeMismatch(format!("length over {v}"))),
        },
        ScalarFunc::Lower => {
            Value::Varchar(args[0].as_str().map(str::to_lowercase).ok_or_else(|| num_err("lower"))?)
        }
        ScalarFunc::Upper => {
            Value::Varchar(args[0].as_str().map(str::to_uppercase).ok_or_else(|| num_err("upper"))?)
        }
        ScalarFunc::Substr => {
            let s = args[0]
                .as_str()
                .ok_or_else(|| EiderError::TypeMismatch("substr over non-string".into()))?;
            let chars: Vec<char> = s.chars().collect();
            // SQL substr is 1-based; negative start counts from the end.
            let start = args.get(1).and_then(Value::as_i64).unwrap_or(1);
            let len = args.get(2).and_then(Value::as_i64);
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub((-start) as usize)
            } else {
                0
            };
            let end = match len {
                Some(l) if l >= 0 => (begin + l as usize).min(chars.len()),
                Some(_) => begin,
                None => chars.len(),
            };
            Value::Varchar(chars[begin.min(chars.len())..end].iter().collect())
        }
        ScalarFunc::Concat => {
            let mut s = String::new();
            for a in args {
                s.push_str(&a.to_string());
            }
            Value::Varchar(s)
        }
        ScalarFunc::Coalesce | ScalarFunc::NullIf => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> DataChunk {
        DataChunk::from_rows(
            &[LogicalType::Integer, LogicalType::Integer, LogicalType::Varchar],
            &[
                vec![Value::Integer(1), Value::Integer(10), Value::Varchar("alpha".into())],
                vec![Value::Integer(2), Value::Null, Value::Varchar("beta".into())],
                vec![Value::Integer(-999), Value::Integer(30), Value::Null],
                vec![Value::Integer(4), Value::Integer(40), Value::Varchar("delta".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn compare_column_to_constant() {
        let e = Expr::Compare {
            op: CmpOp::Eq,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(-999))),
        };
        let v = e.evaluate(&chunk()).unwrap();
        assert_eq!(
            v.to_values(),
            vec![
                Value::Boolean(false),
                Value::Boolean(false),
                Value::Boolean(true),
                Value::Boolean(false)
            ]
        );
    }

    #[test]
    fn comparison_with_nulls_yields_null() {
        let e = Expr::Compare {
            op: CmpOp::Gt,
            left: Box::new(Expr::column(1, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(15))),
        };
        let v = e.evaluate(&chunk()).unwrap();
        assert!(v.get_value(1).is_null());
        assert_eq!(v.get_value(2), Value::Boolean(true));
    }

    #[test]
    fn filter_selection_drops_false_and_null() {
        let e = Expr::Compare {
            op: CmpOp::Gt,
            left: Box::new(Expr::column(1, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(15))),
        };
        let flags = e.evaluate(&chunk()).unwrap();
        let sel = filter_selection(&flags).unwrap();
        assert_eq!(sel.as_slice(), &[2, 3]);
    }

    #[test]
    fn arithmetic_with_overflow_and_div_zero() {
        let c = DataChunk::from_rows(
            &[LogicalType::BigInt, LogicalType::BigInt],
            &[vec![Value::BigInt(10), Value::BigInt(3)], vec![Value::BigInt(10), Value::BigInt(0)]],
        )
        .unwrap();
        let div = Expr::Arithmetic {
            op: ArithOp::Div,
            left: Box::new(Expr::column(0, LogicalType::BigInt)),
            right: Box::new(Expr::column(1, LogicalType::BigInt)),
            ty: LogicalType::BigInt,
        };
        let v = div.evaluate(&c).unwrap();
        assert_eq!(v.get_value(0), Value::BigInt(3));
        assert!(v.get_value(1).is_null(), "x/0 is NULL");

        let mul = Expr::Arithmetic {
            op: ArithOp::Mul,
            left: Box::new(Expr::constant(Value::BigInt(i64::MAX))),
            right: Box::new(Expr::constant(Value::BigInt(2))),
            ty: LogicalType::BigInt,
        };
        assert!(mul.evaluate(&c).is_err(), "overflow must error");
    }

    #[test]
    fn double_arithmetic() {
        let c = DataChunk::from_rows(
            &[LogicalType::Double],
            &[vec![Value::Double(1.5)], vec![Value::Double(-2.0)]],
        )
        .unwrap();
        let e = Expr::Arithmetic {
            op: ArithOp::Mul,
            left: Box::new(Expr::column(0, LogicalType::Double)),
            right: Box::new(Expr::constant(Value::Double(2.0))),
            ty: LogicalType::Double,
        };
        let v = e.evaluate(&c).unwrap();
        assert_eq!(v.get_value(0), Value::Double(3.0));
        assert_eq!(v.get_value(1), Value::Double(-4.0));
    }

    #[test]
    fn three_valued_logic() {
        // (col1 > 15) AND (col0 > 0): row 1 has NULL > 15 -> NULL AND true -> NULL
        let cmp1 = Expr::Compare {
            op: CmpOp::Gt,
            left: Box::new(Expr::column(1, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(15))),
        };
        let cmp2 = Expr::Compare {
            op: CmpOp::Gt,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(0))),
        };
        let and = Expr::And(vec![cmp1.clone(), cmp2.clone()]);
        let v = and.evaluate(&chunk()).unwrap();
        assert!(v.get_value(1).is_null());
        assert_eq!(v.get_value(3), Value::Boolean(true));
        // OR short-circuits NULL away when one side is true.
        let or = Expr::Or(vec![cmp1, cmp2]);
        let v = or.evaluate(&chunk()).unwrap();
        assert_eq!(v.get_value(1), Value::Boolean(true));
    }

    #[test]
    fn is_null_and_not() {
        let e =
            Expr::IsNull { child: Box::new(Expr::column(2, LogicalType::Varchar)), negated: false };
        let v = e.evaluate(&chunk()).unwrap();
        assert_eq!(v.get_value(2), Value::Boolean(true));
        assert_eq!(v.get_value(0), Value::Boolean(false));
        let e = Expr::Not(Box::new(e));
        let v = e.evaluate(&chunk()).unwrap();
        assert_eq!(v.get_value(2), Value::Boolean(false));
    }

    #[test]
    fn like_matching() {
        assert!(like_match("%duck%", "the duck quacks"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("a%b%c", "a-xx-b-yy-c"));
        assert!(!like_match("", "x"));
        // '%' in the *text* must not swallow a pattern wildcard.
        assert!(like_match("percent%", "percent%under_score"));
        assert!(like_match("50%", "50%"));
        assert!(!like_match("%100%", "50%"));
    }

    #[test]
    fn case_expression_is_lazy() {
        // CASE WHEN col0 = 0 THEN -1 ELSE 100 / col0 END: the ELSE branch
        // divides by col0 but only for rows where col0 != 0.
        let c = DataChunk::from_rows(
            &[LogicalType::Integer],
            &[vec![Value::Integer(0)], vec![Value::Integer(4)]],
        )
        .unwrap();
        let e = Expr::Case {
            branches: vec![(
                Expr::Compare {
                    op: CmpOp::Eq,
                    left: Box::new(Expr::column(0, LogicalType::Integer)),
                    right: Box::new(Expr::constant(Value::Integer(0))),
                },
                Expr::constant(Value::Integer(-1)),
            )],
            else_expr: Some(Box::new(Expr::Arithmetic {
                op: ArithOp::Div,
                left: Box::new(Expr::constant(Value::Integer(100))),
                right: Box::new(Expr::column(0, LogicalType::Integer)),
                ty: LogicalType::BigInt,
            })),
            ty: LogicalType::BigInt,
        };
        let v = e.evaluate(&c).unwrap();
        assert_eq!(v.get_value(0), Value::BigInt(-1));
        assert_eq!(v.get_value(1), Value::BigInt(25));
    }

    #[test]
    fn scalar_functions() {
        let f = |func, args: Vec<Value>| evaluate_function(func, &args).unwrap();
        assert_eq!(f(ScalarFunc::Abs, vec![Value::Integer(-5)]), Value::BigInt(5));
        assert_eq!(
            f(ScalarFunc::Round, vec![Value::Double(2.567), Value::Integer(1)]),
            Value::Double(2.6)
        );
        assert_eq!(f(ScalarFunc::Length, vec![Value::Varchar("héllo".into())]), Value::BigInt(5));
        assert_eq!(
            f(ScalarFunc::Upper, vec![Value::Varchar("ab".into())]),
            Value::Varchar("AB".into())
        );
        assert_eq!(
            f(
                ScalarFunc::Substr,
                vec![Value::Varchar("hello".into()), Value::Integer(2), Value::Integer(3)]
            ),
            Value::Varchar("ell".into())
        );
        assert_eq!(
            f(ScalarFunc::Coalesce, vec![Value::Null, Value::Integer(7)]),
            Value::Integer(7)
        );
        assert_eq!(f(ScalarFunc::NullIf, vec![Value::Integer(7), Value::Integer(7)]), Value::Null);
        assert_eq!(f(ScalarFunc::Sqrt, vec![Value::Double(-1.0)]), Value::Null);
        assert_eq!(
            f(ScalarFunc::Concat, vec![Value::Varchar("a".into()), Value::Integer(1)]),
            Value::Varchar("a1".into())
        );
    }

    #[test]
    fn in_list_with_null_semantics() {
        let c = chunk();
        let e = Expr::InList {
            child: Box::new(Expr::column(0, LogicalType::Integer)),
            list: vec![Expr::constant(Value::Integer(1)), Expr::constant(Value::Null)],
            negated: false,
        };
        let v = e.evaluate(&c).unwrap();
        assert_eq!(v.get_value(0), Value::Boolean(true));
        assert!(v.get_value(1).is_null(), "unmatched with NULL in list is NULL");
    }

    #[test]
    fn in_list_constant_and_columnar_paths_agree() {
        let c = chunk();
        // Constant list (hoisted) vs the same list with a column smuggled
        // in (per-row path) on a list that contains the column's value.
        let hoisted = Expr::InList {
            child: Box::new(Expr::column(0, LogicalType::Integer)),
            list: vec![Expr::constant(Value::Integer(2)), Expr::constant(Value::Integer(4))],
            negated: false,
        };
        let columnar = Expr::InList {
            child: Box::new(Expr::column(0, LogicalType::Integer)),
            list: vec![
                Expr::constant(Value::Integer(2)),
                Expr::constant(Value::Integer(4)),
                Expr::column(1, LogicalType::Integer),
            ],
            negated: false,
        };
        let h = hoisted.evaluate(&c).unwrap();
        assert_eq!(
            h.to_values(),
            vec![
                Value::Boolean(false),
                Value::Boolean(true),
                Value::Boolean(false),
                Value::Boolean(true)
            ]
        );
        // The columnar variant still matches rows the constants match.
        let v = columnar.evaluate(&c).unwrap();
        assert_eq!(v.get_value(1), Value::Boolean(true));
        assert_eq!(v.get_value(3), Value::Boolean(true));
    }

    #[test]
    fn constant_like_pattern_is_hoisted() {
        let c = DataChunk::from_rows(
            &[LogicalType::Varchar],
            &[
                vec![Value::Varchar("alpha".into())],
                vec![Value::Null],
                vec![Value::Varchar("beta".into())],
            ],
        )
        .unwrap();
        let e = Expr::Like {
            child: Box::new(Expr::column(0, LogicalType::Varchar)),
            pattern: Box::new(Expr::constant(Value::Varchar("%a".into()))),
            negated: false,
        };
        let v = e.evaluate(&c).unwrap();
        assert_eq!(v.get_value(0), Value::Boolean(true));
        assert!(v.get_value(1).is_null());
        assert_eq!(v.get_value(2), Value::Boolean(true));
        // NULL pattern: every row is NULL.
        let e = Expr::Like {
            child: Box::new(Expr::column(0, LogicalType::Varchar)),
            pattern: Box::new(Expr::constant(Value::Null)),
            negated: false,
        };
        let v = e.evaluate(&c).unwrap();
        assert!((0..3).all(|i| v.get_value(i).is_null()));
    }

    #[test]
    fn like_matcher_handles_multibyte_text() {
        let m = LikeMatcher::new("h_llo%");
        assert!(m.matches("héllo world"));
        assert!(m.matches("hallo"));
        assert!(!m.matches("hllo"));
        let m = LikeMatcher::new("%é%");
        assert!(m.matches("café au lait"));
        assert!(!m.matches("cafe"));
    }

    #[test]
    fn constant_detection() {
        let c = Expr::Arithmetic {
            op: ArithOp::Add,
            left: Box::new(Expr::constant(Value::Integer(1))),
            right: Box::new(Expr::constant(Value::Integer(2))),
            ty: LogicalType::BigInt,
        };
        assert!(c.is_constant());
        assert_eq!(c.evaluate_row(&[]).unwrap(), Value::BigInt(3));
        let nc = Expr::column(0, LogicalType::Integer);
        assert!(!nc.is_constant());
    }
}
