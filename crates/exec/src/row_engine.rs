//! A classical tuple-at-a-time Volcano interpreter — the baseline.
//!
//! §6 motivates DuckDB's vectorized engine against the alternatives; the
//! canonical strawman is the iterator model where every operator yields
//! one row per call and every value moves through a dynamic `Value`. The
//! `olap` benchmark runs identical queries through this engine and the
//! vectorized one to reproduce the shape of that argument: per-value
//! interpretation overhead dominates as soon as tables stop being tiny.
//!
//! The row engine shares expression semantics (via [`Expr::evaluate_row`])
//! and aggregate states with the vectorized engine, so results are
//! identical and only the execution model differs.

use crate::aggregate::AggState;
use crate::expression::Expr;
use crate::fxhash::FxHashMap;
use crate::ops::agg::AggExpr;
use eider_vector::{DataChunk, Result, Value};

/// One-row-at-a-time pull interface.
pub trait RowOperator {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>>;
}

/// Leaf: iterates materialized rows.
pub struct RowSource {
    rows: std::vec::IntoIter<Vec<Value>>,
}

impl RowSource {
    pub fn new(rows: Vec<Vec<Value>>) -> Self {
        RowSource { rows: rows.into_iter() }
    }

    /// Materialize chunks into a row source (bench setup helper).
    pub fn from_chunks(chunks: &[DataChunk]) -> Self {
        let mut rows = Vec::new();
        for c in chunks {
            rows.extend(c.to_rows());
        }
        RowSource::new(rows)
    }
}

impl RowOperator for RowSource {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        Ok(self.rows.next())
    }
}

/// WHERE, one row at a time.
pub struct RowFilter {
    child: Box<dyn RowOperator>,
    predicate: Expr,
}

impl RowFilter {
    pub fn new(child: Box<dyn RowOperator>, predicate: Expr) -> Self {
        RowFilter { child, predicate }
    }
}

impl RowOperator for RowFilter {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        while let Some(row) = self.child.next_row()? {
            if self.predicate.evaluate_row(&row)? == Value::Boolean(true) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// SELECT list, one row at a time.
pub struct RowProject {
    child: Box<dyn RowOperator>,
    exprs: Vec<Expr>,
}

impl RowProject {
    pub fn new(child: Box<dyn RowOperator>, exprs: Vec<Expr>) -> Self {
        RowProject { child, exprs }
    }
}

impl RowOperator for RowProject {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        match self.child.next_row()? {
            Some(row) => {
                let out: Vec<Value> =
                    self.exprs.iter().map(|e| e.evaluate_row(&row)).collect::<Result<_>>()?;
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }
}

/// Ungrouped aggregation, one row at a time.
pub struct RowAggregate {
    child: Box<dyn RowOperator>,
    aggs: Vec<AggExpr>,
    done: bool,
}

impl RowAggregate {
    pub fn new(child: Box<dyn RowOperator>, aggs: Vec<AggExpr>) -> Self {
        RowAggregate { child, aggs, done: false }
    }
}

impl RowOperator for RowAggregate {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut states: Vec<AggState> = self
            .aggs
            .iter()
            .map(|a| AggState::new(a.kind, a.arg.as_ref().map(Expr::result_type), a.distinct))
            .collect();
        while let Some(row) = self.child.next_row()? {
            for (agg, state) in self.aggs.iter().zip(states.iter_mut()) {
                match &agg.arg {
                    Some(e) => state.update(&e.evaluate_row(&row)?)?,
                    None => state.update(&Value::Boolean(true))?,
                }
            }
        }
        Ok(Some(states.iter().map(AggState::finalize).collect::<Result<_>>()?))
    }
}

/// GROUP BY aggregation, one row at a time.
pub struct RowHashAggregate {
    child: Box<dyn RowOperator>,
    groups: Vec<Expr>,
    aggs: Vec<AggExpr>,
    output: Option<std::vec::IntoIter<Vec<Value>>>,
}

impl RowHashAggregate {
    pub fn new(child: Box<dyn RowOperator>, groups: Vec<Expr>, aggs: Vec<AggExpr>) -> Self {
        RowHashAggregate { child, groups, aggs, output: None }
    }
}

impl RowOperator for RowHashAggregate {
    fn next_row(&mut self) -> Result<Option<Vec<Value>>> {
        if self.output.is_none() {
            let mut table: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
            while let Some(row) = self.child.next_row()? {
                let key: Vec<Value> =
                    self.groups.iter().map(|g| g.evaluate_row(&row)).collect::<Result<_>>()?;
                let states = match table.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        let fresh: Vec<AggState> = self
                            .aggs
                            .iter()
                            .map(|a| {
                                AggState::new(
                                    a.kind,
                                    a.arg.as_ref().map(Expr::result_type),
                                    a.distinct,
                                )
                            })
                            .collect();
                        table.insert(key.clone(), fresh);
                        table.get_mut(&key).expect("inserted")
                    }
                };
                for (agg, state) in self.aggs.iter().zip(states.iter_mut()) {
                    match &agg.arg {
                        Some(e) => state.update(&e.evaluate_row(&row)?)?,
                        None => state.update(&Value::Boolean(true))?,
                    }
                }
            }
            let mut rows = Vec::with_capacity(table.len());
            for (key, states) in table {
                let mut row = key;
                for s in &states {
                    row.push(s.finalize()?);
                }
                rows.push(row);
            }
            self.output = Some(rows.into_iter());
        }
        Ok(self.output.as_mut().expect("filled").next())
    }
}

/// Pull a row plan to completion.
pub fn run_to_end(op: &mut dyn RowOperator) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    while let Some(row) = op.next_row()? {
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggKind;
    use crate::expression::ArithOp;
    use eider_txn::CmpOp;
    use eider_vector::LogicalType;

    fn rows(n: i32) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Integer(i), Value::Integer(i % 5)]).collect()
    }

    #[test]
    fn filter_project_pipeline() {
        let src = Box::new(RowSource::new(rows(10)));
        let pred = Expr::Compare {
            op: CmpOp::GtEq,
            left: Box::new(Expr::column(0, LogicalType::Integer)),
            right: Box::new(Expr::constant(Value::Integer(7))),
        };
        let filter = Box::new(RowFilter::new(src, pred));
        let mut proj = RowProject::new(
            filter,
            vec![Expr::Arithmetic {
                op: ArithOp::Add,
                left: Box::new(Expr::column(0, LogicalType::Integer)),
                right: Box::new(Expr::constant(Value::Integer(100))),
                ty: LogicalType::BigInt,
            }],
        );
        let out = run_to_end(&mut proj).unwrap();
        assert_eq!(
            out,
            vec![vec![Value::BigInt(107)], vec![Value::BigInt(108)], vec![Value::BigInt(109)]]
        );
    }

    #[test]
    fn aggregate_matches_vectorized_semantics() {
        let src = Box::new(RowSource::new(rows(100)));
        let mut agg = RowAggregate::new(
            src,
            vec![
                AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
                AggExpr {
                    kind: AggKind::Sum,
                    arg: Some(Expr::column(0, LogicalType::Integer)),
                    distinct: false,
                },
            ],
        );
        let out = run_to_end(&mut agg).unwrap();
        assert_eq!(out[0], vec![Value::BigInt(100), Value::BigInt(4950)]);
    }

    #[test]
    fn grouped_aggregate() {
        let src = Box::new(RowSource::new(rows(100)));
        let mut agg = RowHashAggregate::new(
            src,
            vec![Expr::column(1, LogicalType::Integer)],
            vec![AggExpr { kind: AggKind::CountStar, arg: None, distinct: false }],
        );
        let mut out = run_to_end(&mut agg).unwrap();
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|r| r[1] == Value::BigInt(20)));
    }
}
