//! Cooperation: adaptive resource sharing with the host application (§4).
//!
//! "As the embedded database is no longer the sole inhabitant of the
//! machine, it can no longer make constant use of all the underlying
//! hardware as that would cause the underlying application to be starved
//! for resources." eider therefore:
//!
//! * never probes for all of RAM — limits are explicit and adjustable at
//!   runtime ([`ResourcePolicy`], `PRAGMA memory_limit` / `threads`);
//! * watches the application's resource usage through a
//!   [`monitor::ResourceMonitor`] — the real `/proc`-based
//!   [`hostprobe::HostResourceProbe`] on Linux hosts, the scripted
//!   [`monitor::SimulatedApplication`] everywhere else (and in the
//!   figure-regeneration harnesses) — and reacts: the [`controller::AdaptiveController`]
//!   implements Figure 1's reactive compression ladder
//!   (None → Light → Heavy as application RAM pressure grows, with
//!   hysteresis so the system does not flap);
//! * can trade RAM for CPU at the physical-plan level: the
//!   [`policy::choose_join_strategy`] helper demotes a hash join to an
//!   out-of-core merge join when the build side does not fit the budget
//!   ("a hash join can be transparently replaced with a out-of-core merge
//!   join").
//!
//! Compression codecs are implemented from scratch in [`compression`]:
//! Light is PackBits-style run-length encoding (cheap CPU, modest ratio);
//! Heavy is an LZSS dictionary coder (more CPU, better ratio) — exactly the
//! lightweight/heavyweight pair Figure 1 sketches.

pub mod compression;
pub mod controller;
pub mod hostprobe;
pub mod monitor;
pub mod policy;

pub use compression::{compress, decompress, CompressionLevel};
pub use controller::{AdaptiveController, ControllerConfig, Decision};
pub use hostprobe::HostResourceProbe;
pub use monitor::{ResourceMonitor, ResourceUsage, SimulatedApplication, StaticMonitor};
pub use policy::{choose_join_strategy, JoinStrategy, ResourcePolicy};
