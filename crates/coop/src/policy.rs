//! The runtime resource policy shared between the cooperation layer and
//! the execution engine.
//!
//! §4: "There are plenty of run-time choices in a DBMS that influence the
//! resource consumption across the different hardware devices." The policy
//! object is the channel: the controller (or the user, via PRAGMAs) writes
//! it; operators read it at plan and run time.

use crate::compression::CompressionLevel;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which join algorithm the physical planner should use.
///
/// "A hash join can be transparently replaced with a out-of-core merge
/// join. The hash join uses a large amount of main memory ... but few CPU
/// cycles ... The merge requires fewer main memory resources to run, but
/// O(n log n) CPU cycles as well as disk IO."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    Hash,
    OutOfCoreMerge,
}

/// Decide the join strategy from the estimated build-side footprint and
/// the memory actually available to the DBMS right now.
pub fn choose_join_strategy(build_bytes_estimate: usize, available_memory: usize) -> JoinStrategy {
    // The hash table roughly doubles the build side (entries + buckets);
    // demote to merge join when that would not fit comfortably.
    match build_bytes_estimate.checked_mul(2) {
        Some(need) if need <= available_memory => JoinStrategy::Hash,
        _ => JoinStrategy::OutOfCoreMerge,
    }
}

/// Clamp a requested worker-thread count by the host application's CPU
/// load (a fraction in `[0, 1]` across all cores): the DBMS takes the
/// cores the application is not using, but never fewer than one.
///
/// This is the CPU-axis analogue of [`choose_join_strategy`]: §4's
/// cooperation story applied to the parallel executor's fan-out.
pub fn clamp_worker_threads(requested: usize, app_cpu_load: f64) -> usize {
    let free = (1.0 - app_cpu_load.clamp(0.0, 1.0)) * requested as f64;
    (free.floor() as usize).clamp(1, requested.max(1))
}

/// Shared mutable runtime policy (lock-free reads on the hot path).
#[derive(Debug)]
pub struct ResourcePolicy {
    compression: AtomicU8,
    memory_limit: AtomicUsize,
    threads: AtomicUsize,
    /// Host application CPU load, stored as percent (0..=100) so it fits
    /// an atomic.
    app_cpu_percent: AtomicU8,
}

impl Default for ResourcePolicy {
    fn default() -> Self {
        ResourcePolicy {
            compression: AtomicU8::new(CompressionLevel::None.as_u8()),
            memory_limit: AtomicUsize::new(1 << 30),
            threads: AtomicUsize::new(std::thread::available_parallelism().map_or(2, |n| n.get())),
            app_cpu_percent: AtomicU8::new(0),
        }
    }
}

impl ResourcePolicy {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn compression(&self) -> CompressionLevel {
        CompressionLevel::from_u8(self.compression.load(Ordering::Relaxed)).expect("valid level")
    }

    pub fn set_compression(&self, level: CompressionLevel) {
        self.compression.store(level.as_u8(), Ordering::Relaxed);
    }

    pub fn memory_limit(&self) -> usize {
        self.memory_limit.load(Ordering::Relaxed)
    }

    pub fn set_memory_limit(&self, bytes: usize) {
        self.memory_limit.store(bytes, Ordering::Relaxed);
    }

    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed).max(1)
    }

    pub fn set_threads(&self, n: usize) {
        self.threads.store(n.max(1), Ordering::Relaxed);
    }

    /// Record the host application's CPU load (fraction in `[0, 1]`);
    /// pushed by whoever samples a [`crate::monitor::ResourceMonitor`].
    pub fn set_app_cpu_load(&self, load: f64) {
        let pct = (load.clamp(0.0, 1.0) * 100.0).round() as u8;
        self.app_cpu_percent.store(pct, Ordering::Relaxed);
    }

    /// Last recorded host application CPU load, as a fraction.
    pub fn app_cpu_load(&self) -> f64 {
        f64::from(self.app_cpu_percent.load(Ordering::Relaxed)) / 100.0
    }

    /// How many workers the parallel executor should actually fan out to
    /// *right now*: the configured [`ResourcePolicy::threads`] cap,
    /// dynamically shrunk while the host application is burning CPU
    /// (§4 — the embedded DBMS shares the machine, it does not own it).
    pub fn worker_threads(&self) -> usize {
        clamp_worker_threads(self.threads(), self.app_cpu_load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_strategy_crossover() {
        assert_eq!(choose_join_strategy(100, 1000), JoinStrategy::Hash);
        assert_eq!(choose_join_strategy(600, 1000), JoinStrategy::OutOfCoreMerge);
        assert_eq!(choose_join_strategy(500, 1000), JoinStrategy::Hash);
        assert_eq!(
            choose_join_strategy(usize::MAX / 2 + 1, usize::MAX),
            JoinStrategy::OutOfCoreMerge
        );
    }

    #[test]
    fn worker_threads_shrink_under_app_cpu_pressure() {
        assert_eq!(clamp_worker_threads(8, 0.0), 8);
        assert_eq!(clamp_worker_threads(8, 0.5), 4);
        assert_eq!(clamp_worker_threads(8, 0.95), 1, "floor at one worker");
        assert_eq!(clamp_worker_threads(1, 0.0), 1);
        assert_eq!(clamp_worker_threads(4, 2.0), 1, "load clamped to [0,1]");

        let p = ResourcePolicy::new();
        p.set_threads(8);
        assert_eq!(p.worker_threads(), 8);
        p.set_app_cpu_load(0.75);
        assert_eq!(p.app_cpu_load(), 0.75);
        assert_eq!(p.worker_threads(), 2);
        p.set_app_cpu_load(0.0);
        assert_eq!(p.worker_threads(), 8);
    }

    #[test]
    fn policy_round_trips() {
        let p = ResourcePolicy::new();
        assert_eq!(p.compression(), CompressionLevel::None);
        p.set_compression(CompressionLevel::Heavy);
        assert_eq!(p.compression(), CompressionLevel::Heavy);
        p.set_memory_limit(1234);
        assert_eq!(p.memory_limit(), 1234);
        p.set_threads(0);
        assert_eq!(p.threads(), 1, "floor at one thread");
    }
}
