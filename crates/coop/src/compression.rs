//! Intermediate-structure compression: the None / Light / Heavy ladder of
//! Figure 1.
//!
//! "On the engine level, we can also choose to compress temporary
//! structures like hash tables in memory with different compression
//! algorithm. ... first lightweight compression to reduce its memory
//! footprint at the expense of extra CPU cycles. As the RAM usage of
//! application increases further, the DBMS switches to a heavy compression
//! algorithm that will further reduce the memory footprint."
//!
//! * **Light** — PackBits-style RLE: one pass, branch-light, great on the
//!   repetitive byte patterns of columnar intermediates, bounded expansion
//!   of 1/128 on incompressible data.
//! * **Heavy** — LZSS with a 64 KiB window and a hash-head match finder:
//!   several times more CPU, distinctly better ratio.
//!
//! Buffers are self-describing: `[level: u8][raw_len: u64][body]`, so a
//! consumer can decompress without knowing which level the controller had
//! selected at write time.

use eider_vector::{EiderError, Result};

/// The compression ladder of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CompressionLevel {
    None,
    Light,
    Heavy,
}

impl CompressionLevel {
    pub fn as_u8(self) -> u8 {
        match self {
            CompressionLevel::None => 0,
            CompressionLevel::Light => 1,
            CompressionLevel::Heavy => 2,
        }
    }

    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => CompressionLevel::None,
            1 => CompressionLevel::Light,
            2 => CompressionLevel::Heavy,
            _ => return Err(EiderError::Corruption(format!("unknown compression level {v}"))),
        })
    }

    pub fn label(self) -> &'static str {
        match self {
            CompressionLevel::None => "none",
            CompressionLevel::Light => "light",
            CompressionLevel::Heavy => "heavy",
        }
    }
}

/// Compress `data` at `level` into a self-describing buffer.
pub fn compress(level: CompressionLevel, data: &[u8]) -> Vec<u8> {
    let body = match level {
        CompressionLevel::None => data.to_vec(),
        CompressionLevel::Light => rle_compress(data),
        CompressionLevel::Heavy => lzss_compress(data),
    };
    let mut out = Vec::with_capacity(body.len() + 9);
    out.push(level.as_u8());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>> {
    if buf.len() < 9 {
        return Err(EiderError::Corruption("compressed buffer too short".into()));
    }
    let level = CompressionLevel::from_u8(buf[0])?;
    let raw_len = u64::from_le_bytes(buf[1..9].try_into().expect("8")) as usize;
    let body = &buf[9..];
    let out = match level {
        CompressionLevel::None => body.to_vec(),
        CompressionLevel::Light => rle_decompress(body, raw_len)?,
        CompressionLevel::Heavy => lzss_decompress(body, raw_len)?,
    };
    if out.len() != raw_len {
        return Err(EiderError::Corruption(format!(
            "decompressed {} bytes, header claims {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------- Light: PackBits-style RLE ----------------

/// PackBits framing: a control byte `c` followed by either `c+1` literal
/// bytes (c in 0..=127) or one byte repeated `257-c` times (c in 129..=255).
/// 128 is unused (reserved), matching the classic algorithm.
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    while i < data.len() {
        // Find run length of identical bytes at i.
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 128 {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(b);
            i += run;
        } else {
            // Gather literals until the next run of >= 3 or 128 bytes.
            let start = i;
            let mut j = i;
            while j < data.len() && j - start < 128 {
                let c = data[j];
                let mut r = 1;
                while j + r < data.len() && data[j + r] == c && r < 3 {
                    r += 1;
                }
                if r >= 3 {
                    break;
                }
                j += 1;
            }
            let lits = j - start;
            out.push((lits - 1) as u8);
            out.extend_from_slice(&data[start..j]);
            i = j;
        }
    }
    out
}

fn rle_decompress(body: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let corrupt = || EiderError::Corruption("RLE stream truncated".into());
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while i < body.len() {
        let c = body[i];
        i += 1;
        if c <= 127 {
            let n = c as usize + 1;
            if i + n > body.len() {
                return Err(corrupt());
            }
            out.extend_from_slice(&body[i..i + n]);
            i += n;
        } else if c >= 129 {
            let n = 257 - c as usize;
            let b = *body.get(i).ok_or_else(corrupt)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        } else {
            return Err(EiderError::Corruption("reserved RLE control byte 128".into()));
        }
        if out.len() > raw_len {
            return Err(EiderError::Corruption("RLE output exceeds declared size".into()));
        }
    }
    Ok(out)
}

// ---------------- Heavy: LZSS ----------------

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255 + MIN_MATCH;
const HASH_BITS: usize = 15;

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Token stream: flag byte describing the next 8 tokens (bit set = match),
/// then per token either 1 literal byte or 3 match bytes
/// `[dist_lo][dist_hi][len - MIN_MATCH]`.
fn lzss_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u32;
    let put_token =
        |out: &mut Vec<u8>, flag_pos: &mut usize, flag_bit: &mut u32, is_match: bool| {
            if *flag_bit == 8 {
                *flag_pos = out.len();
                out.push(0);
                *flag_bit = 0;
            }
            if is_match {
                out[*flag_pos] |= 1 << *flag_bit;
            }
            *flag_bit += 1;
        };
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let cand = head[h];
            if cand != usize::MAX && cand < i && i - cand <= WINDOW {
                let max_len = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = i - cand;
                }
            }
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            put_token(&mut out, &mut flag_pos, &mut flag_bit, true);
            out.push((best_dist & 0xFF) as u8);
            out.push((best_dist >> 8) as u8);
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash heads for a few covered positions to find later
            // overlapping matches without full chain search.
            let end = i + best_len;
            let mut k = i + 1;
            while k < end && k + MIN_MATCH <= data.len() && k < i + 8 {
                head[hash4(&data[k..])] = k;
                k += 1;
            }
            i = end;
        } else {
            put_token(&mut out, &mut flag_pos, &mut flag_bit, false);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

fn lzss_decompress(body: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let corrupt = || EiderError::Corruption("LZSS stream truncated".into());
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < body.len() && out.len() < raw_len {
        let flags = body[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= raw_len || i >= body.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 3 > body.len() {
                    return Err(corrupt());
                }
                let dist = body[i] as usize | ((body[i + 1] as usize) << 8);
                let len = body[i + 2] as usize + MIN_MATCH;
                i += 3;
                if dist == 0 || dist > out.len() {
                    return Err(EiderError::Corruption("LZSS back-reference out of range".into()));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<u8>> {
        vec![
            vec![],
            b"a".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(5000).collect(),
            b"abcabcabcabcabcabc hello hello hello world".to_vec(),
            {
                // Columnar-ish data: small integers as LE bytes.
                let mut v = Vec::new();
                for i in 0..5000i32 {
                    v.extend_from_slice(&(i % 100).to_le_bytes());
                }
                v
            },
            {
                // Pseudo-random (incompressible-ish).
                let mut x = 0x12345678u32;
                (0..4096)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 17;
                        x ^= x << 5;
                        (x & 0xFF) as u8
                    })
                    .collect()
            },
        ]
    }

    #[test]
    fn round_trip_all_levels_all_patterns() {
        for data in patterns() {
            for level in [CompressionLevel::None, CompressionLevel::Light, CompressionLevel::Heavy]
            {
                let c = compress(level, &data);
                let d = decompress(&c).unwrap();
                assert_eq!(d, data, "level {level:?}, len {}", data.len());
            }
        }
    }

    #[test]
    fn heavy_beats_light_on_redundant_data() {
        let mut data = Vec::new();
        for i in 0..2000i64 {
            data.extend_from_slice(&(i % 10).to_le_bytes());
        }
        let light = compress(CompressionLevel::Light, &data).len();
        let heavy = compress(CompressionLevel::Heavy, &data).len();
        let none = compress(CompressionLevel::None, &data).len();
        assert!(light < none, "light {light} vs none {none}");
        assert!(heavy < light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn rle_shines_on_constant_data() {
        let data = vec![42u8; 100_000];
        let light = compress(CompressionLevel::Light, &data).len();
        assert!(light < data.len() / 50, "RLE should crush constant data: {light}");
    }

    #[test]
    fn bounded_expansion_on_incompressible_data() {
        let data: Vec<u8> = {
            let mut x = 0xDEADBEEFu64;
            (0..100_000)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (x >> 33) as u8
                })
                .collect()
        };
        let light = compress(CompressionLevel::Light, &data).len();
        assert!(light < data.len() + data.len() / 64 + 32);
    }

    #[test]
    fn corrupted_streams_rejected() {
        let data = b"hello hello hello hello".to_vec();
        for level in [CompressionLevel::Light, CompressionLevel::Heavy] {
            let mut c = compress(level, &data);
            c.truncate(c.len() - 3);
            assert!(decompress(&c).is_err(), "{level:?} truncation must fail");
        }
        let mut c = compress(CompressionLevel::Heavy, &data);
        c[0] = 9; // invalid level tag
        assert!(decompress(&c).is_err());
        assert!(decompress(&[1, 2, 3]).is_err());
    }

    #[test]
    fn level_ordering() {
        assert!(CompressionLevel::None < CompressionLevel::Light);
        assert!(CompressionLevel::Light < CompressionLevel::Heavy);
        for l in [CompressionLevel::None, CompressionLevel::Light, CompressionLevel::Heavy] {
            assert_eq!(CompressionLevel::from_u8(l.as_u8()).unwrap(), l);
        }
    }
}
