//! Observing the host application's resource usage.
//!
//! §4: "An embedded OLAP system can monitor resource usage of all other
//! running applications and then tweak its run-time behavior accordingly."
//! Portable, in-process observation of an arbitrary host application is
//! platform-specific; this reproduction substitutes a *simulated*
//! application whose RAM/CPU trace is scripted (DESIGN.md, substitution
//! F1) — the controller and engine react to the trait, so a real probe can
//! be dropped in without touching them.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A point-in-time picture of the application's resource consumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// Bytes of RAM the application is using.
    pub app_memory_bytes: usize,
    /// Application CPU utilization in [0, 1] across all cores.
    pub app_cpu: f64,
}

/// Source of application resource observations.
pub trait ResourceMonitor: Send + Sync {
    fn sample(&self) -> ResourceUsage;
}

/// Fixed usage — for tests and for "no cooperation" baselines.
#[derive(Debug)]
pub struct StaticMonitor {
    usage: ResourceUsage,
}

impl StaticMonitor {
    pub fn new(app_memory_bytes: usize, app_cpu: f64) -> Self {
        StaticMonitor { usage: ResourceUsage { app_memory_bytes, app_cpu } }
    }
}

impl ResourceMonitor for StaticMonitor {
    fn sample(&self) -> ResourceUsage {
        self.usage
    }
}

/// One phase of a scripted application trace.
#[derive(Debug, Clone, Copy)]
pub struct TracePhase {
    /// How many `step()`s this phase lasts.
    pub steps: usize,
    pub memory_bytes: usize,
    pub cpu: f64,
}

/// The scripted "dashboard application" of Figure 1: bursty RAM and CPU
/// usage that the DBMS must react to. `step()` advances the trace;
/// sampling is thread-safe so the DBMS can observe from worker threads.
pub struct SimulatedApplication {
    phases: Vec<TracePhase>,
    position: AtomicUsize,
    current: Mutex<ResourceUsage>,
}

impl SimulatedApplication {
    pub fn new(phases: Vec<TracePhase>) -> Arc<Self> {
        assert!(!phases.is_empty(), "trace needs at least one phase");
        let first =
            ResourceUsage { app_memory_bytes: phases[0].memory_bytes, app_cpu: phases[0].cpu };
        Arc::new(SimulatedApplication {
            phases,
            position: AtomicUsize::new(0),
            current: Mutex::new(first),
        })
    }

    /// The Figure 1 trace: idle, then a steadily climbing RAM ramp, then a
    /// burst plateau, then release.
    pub fn figure1_trace(total_budget: usize) -> Arc<Self> {
        let gb = |f: f64| (total_budget as f64 * f) as usize;
        let mut phases = vec![TracePhase { steps: 10, memory_bytes: gb(0.10), cpu: 0.1 }];
        // Ramp 10% -> 80% in 3.5% increments.
        let mut frac = 0.10;
        while frac < 0.80 {
            phases.push(TracePhase { steps: 2, memory_bytes: gb(frac), cpu: 0.2 });
            frac += 0.035;
        }
        phases.push(TracePhase { steps: 20, memory_bytes: gb(0.85), cpu: 0.6 });
        phases.push(TracePhase { steps: 10, memory_bytes: gb(0.45), cpu: 0.3 });
        phases.push(TracePhase { steps: 15, memory_bytes: gb(0.10), cpu: 0.1 });
        Self::new(phases)
    }

    /// Advance the trace one step; returns `false` once the trace is over
    /// (usage then stays at the final phase's level).
    pub fn step(&self) -> bool {
        let pos = self.position.fetch_add(1, Ordering::Relaxed) + 1;
        let mut acc = 0usize;
        for phase in &self.phases {
            acc += phase.steps;
            if pos < acc {
                *self.current.lock() =
                    ResourceUsage { app_memory_bytes: phase.memory_bytes, app_cpu: phase.cpu };
                return true;
            }
        }
        let last = self.phases.last().expect("non-empty");
        *self.current.lock() =
            ResourceUsage { app_memory_bytes: last.memory_bytes, app_cpu: last.cpu };
        false
    }

    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(|p| p.steps).sum()
    }
}

impl ResourceMonitor for SimulatedApplication {
    fn sample(&self) -> ResourceUsage {
        *self.current.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_monitor_is_constant() {
        let m = StaticMonitor::new(1024, 0.5);
        assert_eq!(m.sample().app_memory_bytes, 1024);
        assert_eq!(m.sample().app_cpu, 0.5);
    }

    #[test]
    fn trace_advances_through_phases() {
        let app = SimulatedApplication::new(vec![
            TracePhase { steps: 2, memory_bytes: 100, cpu: 0.1 },
            TracePhase { steps: 2, memory_bytes: 900, cpu: 0.9 },
        ]);
        assert_eq!(app.sample().app_memory_bytes, 100);
        app.step();
        assert_eq!(app.sample().app_memory_bytes, 100);
        app.step();
        assert_eq!(app.sample().app_memory_bytes, 900);
        app.step();
        assert!(!app.step(), "trace exhausted");
        assert_eq!(app.sample().app_memory_bytes, 900);
    }

    #[test]
    fn figure1_trace_ramps_up_and_down() {
        let app = SimulatedApplication::figure1_trace(1_000_000);
        let mut peak = 0;
        loop {
            peak = peak.max(app.sample().app_memory_bytes);
            if !app.step() {
                break;
            }
        }
        let last = app.sample().app_memory_bytes;
        assert!(peak >= 800_000, "trace must burst above 80%: {peak}");
        assert!(last <= 200_000, "trace must release at the end: {last}");
        assert!(app.total_steps() > 40);
    }
}
