//! Real host resource probing via `/proc` (§4).
//!
//! "An embedded OLAP system can monitor resource usage of all other
//! running applications and then tweak its run-time behavior accordingly."
//! The [`SimulatedApplication`](crate::monitor::SimulatedApplication)
//! substitutes a scripted trace for tests and figures; this module closes
//! the loop on Linux hosts by reading the kernel's accounting directly:
//!
//! * `/proc/stat` — cumulative CPU ticks across all cores (busy = total −
//!   idle − iowait);
//! * `/proc/self/stat` — this process's own user+system ticks, subtracted
//!   out so the probe reports what *other* applications consume (the
//!   embedded DBMS must not count itself as a competitor);
//! * `/proc/meminfo` + `/proc/self/statm` — host memory in use minus our
//!   own resident set.
//!
//! CPU load is a *rate*, so the probe differentiates two consecutive tick
//! snapshots; the first call (and any call with no elapsed ticks) falls
//! back to a 1-minute `/proc/loadavg` estimate. All readers degrade to
//! `None` on non-Linux hosts — callers keep whatever the simulated
//! monitor last pushed, so the probe is strictly additive.

use crate::monitor::{ResourceMonitor, ResourceUsage};
use parking_lot::Mutex;
use std::path::Path;

/// Cumulative CPU tick counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CpuTicks {
    /// All ticks across every core (busy + idle).
    total: u64,
    /// Busy ticks across every core (total − idle − iowait).
    busy: u64,
    /// This process's own user + system ticks.
    own: u64,
}

/// Parse the aggregate `cpu` line of `/proc/stat` into (total, busy).
fn parse_stat_cpu(stat: &str) -> Option<(u64, u64)> {
    let line = stat.lines().find(|l| l.starts_with("cpu "))?;
    let fields: Vec<u64> = line.split_whitespace().skip(1).map_while(|f| f.parse().ok()).collect();
    if fields.len() < 5 {
        return None;
    }
    let total: u64 = fields.iter().sum();
    let idle = fields[3] + fields.get(4).copied().unwrap_or(0); // idle + iowait
    Some((total, total.saturating_sub(idle)))
}

/// Parse `/proc/self/stat` into own utime+stime ticks. The command field
/// is parenthesized and may contain spaces, so fields count from the last
/// `)`; utime and stime are the 14th and 15th fields overall.
fn parse_self_stat(stat: &str) -> Option<u64> {
    let rest = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // rest starts at field 3 (state), so utime/stime are at offsets 11/12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Parse a `/proc/meminfo` kB field.
fn parse_meminfo_kb(meminfo: &str, key: &str) -> Option<u64> {
    meminfo.lines().find(|l| l.starts_with(key))?.split_whitespace().nth(1)?.parse().ok()
}

fn read_ticks() -> Option<CpuTicks> {
    let stat = std::fs::read_to_string("/proc/stat").ok()?;
    let (total, busy) = parse_stat_cpu(&stat)?;
    let own = std::fs::read_to_string("/proc/self/stat")
        .ok()
        .as_deref()
        .and_then(parse_self_stat)
        .unwrap_or(0);
    Some(CpuTicks { total, busy, own })
}

/// 1-minute load average over core count, as a coarse load fraction for
/// the first sample (before a tick delta exists).
fn loadavg_estimate() -> Option<f64> {
    let loadavg = std::fs::read_to_string("/proc/loadavg").ok()?;
    let load1: f64 = loadavg.split_whitespace().next()?.parse().ok()?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as f64;
    Some((load1 / cores).clamp(0.0, 1.0))
}

/// Samples what the *rest* of the machine is doing, for
/// [`ResourcePolicy::set_app_cpu_load`](crate::policy::ResourcePolicy::set_app_cpu_load).
#[derive(Debug, Default)]
pub struct HostResourceProbe {
    last: Mutex<Option<CpuTicks>>,
}

impl HostResourceProbe {
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this host exposes the `/proc` files the probe reads.
    pub fn available() -> bool {
        Path::new("/proc/stat").exists() && Path::new("/proc/self/stat").exists()
    }

    /// Fraction in `[0, 1]` of all-core CPU time consumed by processes
    /// other than this one since the previous call. `None` when `/proc`
    /// is unavailable; the loadavg estimate when no delta exists yet.
    pub fn sample_other_cpu(&self) -> Option<f64> {
        let now = read_ticks()?;
        let mut last = self.last.lock();
        let previous = last.replace(now);
        match previous {
            Some(prev) if now.total > prev.total => {
                let total = (now.total - prev.total) as f64;
                let busy = now.busy.saturating_sub(prev.busy);
                let own = now.own.saturating_sub(prev.own);
                Some((busy.saturating_sub(own) as f64 / total).clamp(0.0, 1.0))
            }
            // First call, or no ticks elapsed since the last one.
            _ => loadavg_estimate(),
        }
    }

    /// Bytes of RAM in use by everything except this process. `None` when
    /// `/proc/meminfo` is unavailable.
    pub fn sample_other_memory(&self) -> Option<usize> {
        self.sample_host_memory().map(|m| m.other_used_bytes)
    }

    /// Full memory snapshot: machine total plus the bytes everything
    /// *except* this process uses. Feeds
    /// [`effective_memory_limit`](crate::controller::effective_memory_limit)
    /// — the memory-side half of the §4 loop. `None` when `/proc/meminfo`
    /// is unavailable.
    pub fn sample_host_memory(&self) -> Option<HostMemory> {
        let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
        let total = parse_meminfo_kb(&meminfo, "MemTotal:")? * 1024;
        let available = parse_meminfo_kb(&meminfo, "MemAvailable:")? * 1024;
        let own = std::fs::read_to_string("/proc/self/statm")
            .ok()
            .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
            .map_or(0, |pages| pages * 4096);
        Some(HostMemory {
            total_bytes: total as usize,
            other_used_bytes: total.saturating_sub(available).saturating_sub(own) as usize,
        })
    }
}

/// One `/proc/meminfo` snapshot, with this process's own resident set
/// subtracted out of the "in use" figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostMemory {
    /// Machine RAM (MemTotal).
    pub total_bytes: usize,
    /// Bytes in use by everything except this process.
    pub other_used_bytes: usize,
}

impl ResourceMonitor for HostResourceProbe {
    fn sample(&self) -> ResourceUsage {
        ResourceUsage {
            app_memory_bytes: self.sample_other_memory().unwrap_or(0),
            app_cpu: self.sample_other_cpu().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_aggregate_cpu_line() {
        let stat = "cpu  100 20 30 500 50 0 10 0 0 0\ncpu0 50 10 15 250 25 0 5 0 0 0\n";
        let (total, busy) = parse_stat_cpu(stat).unwrap();
        assert_eq!(total, 710);
        assert_eq!(busy, 710 - 500 - 50);
        assert!(parse_stat_cpu("intr 12345\n").is_none());
    }

    #[test]
    fn parses_self_stat_with_spaces_in_comm() {
        // comm fields may contain spaces and parentheses.
        let stat = "1234 (weird name)) S 1 1 1 0 -1 4194560 100 0 0 0 777 333 0 0 20 0 1 0 1 2 3";
        assert_eq!(parse_self_stat(stat).unwrap(), 777 + 333);
    }

    #[test]
    fn parses_meminfo_fields() {
        let meminfo =
            "MemTotal:       16384 kB\nMemFree:        4096 kB\nMemAvailable:   8192 kB\n";
        assert_eq!(parse_meminfo_kb(meminfo, "MemTotal:"), Some(16384));
        assert_eq!(parse_meminfo_kb(meminfo, "MemAvailable:"), Some(8192));
        assert_eq!(parse_meminfo_kb(meminfo, "SwapTotal:"), None);
    }

    #[test]
    fn live_probe_reports_sane_fractions_when_available() {
        if !HostResourceProbe::available() {
            return; // non-Linux host: the simulated monitor remains in charge
        }
        let probe = HostResourceProbe::new();
        let first = probe.sample_other_cpu().unwrap();
        assert!((0.0..=1.0).contains(&first));
        // Burn a little CPU so the delta sample has ticks to look at.
        let mut x = 0u64;
        for i in 0..20_000_000u64 {
            x = x.wrapping_add(i ^ x);
        }
        std::hint::black_box(x);
        let second = probe.sample_other_cpu().unwrap();
        assert!((0.0..=1.0).contains(&second), "{second}");
        let usage = probe.sample();
        assert!(usage.app_memory_bytes > 0, "host memory in use must be visible");
    }
}
