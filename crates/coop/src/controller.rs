//! The adaptive controller: Figure 1's reactive resource usage pattern.
//!
//! The machine's memory is shared between application and DBMS. The
//! controller watches application pressure (application RAM / total
//! budget) and reacts on two axes:
//!
//! * **intermediate compression** — None below the light threshold, Light
//!   above it, Heavy above the heavy threshold, *with hysteresis*: the
//!   downward transitions use lower thresholds than the upward ones so a
//!   noisy application does not make the DBMS flap between modes;
//! * **DBMS memory budget** — the remainder of the budget after the
//!   application's share (floored at a configurable minimum), which the
//!   caller pushes into the buffer manager.

use crate::compression::CompressionLevel;
use crate::monitor::ResourceUsage;

/// Memory-axis cooperation against a *real* host (§4): shrink the
/// configured DBMS memory limit while the rest of the machine is under
/// memory pressure, never below a 1/20 floor of the configured limit (the
/// same floor ratio [`ControllerConfig::for_budget`] uses for the
/// simulated controller).
///
/// `host_total` and `host_other_used` come from the `/proc` probe
/// (`HostResourceProbe::sample_host_memory`): total machine RAM and the
/// bytes everything *except* this process currently uses. The effective
/// limit is the configured one capped by what the machine actually has
/// left — an embedded DBMS takes the memory the host application is not
/// using, it does not hold a budget the machine cannot back.
///
/// ```
/// use eider_coop::controller::effective_memory_limit;
/// // Plenty free: the configured limit stands.
/// assert_eq!(effective_memory_limit(1 << 30, 16 << 30, 4 << 30), 1 << 30);
/// // The host is squeezed: only what is left, down to the floor.
/// assert_eq!(effective_memory_limit(1 << 30, 16 << 30, (16u64 << 30) as usize - (1 << 28)),
///            1 << 28);
/// assert_eq!(effective_memory_limit(1 << 30, 16 << 30, 16 << 30), (1 << 30) / 20);
/// ```
pub fn effective_memory_limit(
    configured: usize,
    host_total: usize,
    host_other_used: usize,
) -> usize {
    if host_total == 0 {
        return configured; // no measurement: the configured limit stands
    }
    let free_for_dbms = host_total.saturating_sub(host_other_used);
    let floor = (configured / 20).max(1);
    configured.min(free_for_dbms).max(floor)
}

/// Fair per-session slice of the DBMS memory budget when the host-probe
/// feedback loop is on: the effective limit divided evenly across the
/// sessions participating in rebalancing, floored at a 1/20 slice of the
/// limit so a burst of connections cannot shrink anyone's quota to
/// nothing. (With the probe off, sessions are not rebalanced at all —
/// each may use the whole limit, and the account chain alone prevents a
/// combined overshoot.)
///
/// ```
/// use eider_coop::controller::fair_session_share;
/// assert_eq!(fair_session_share(1 << 20, 4), 1 << 18);
/// assert_eq!(fair_session_share(1 << 20, 1), 1 << 20);
/// // The floor: 40 sessions do not get 1/40 slices.
/// assert_eq!(fair_session_share(1 << 20, 40), (1 << 20) / 20);
/// assert_eq!(fair_session_share(1 << 20, 0), 1 << 20);
/// ```
pub fn fair_session_share(effective_limit: usize, sessions: usize) -> usize {
    let floor = (effective_limit / 20).max(1);
    (effective_limit / sessions.max(1)).max(floor)
}

/// Thresholds as fractions of the total memory budget.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Total machine budget shared by app + DBMS (bytes).
    pub total_memory: usize,
    /// App pressure above which Light compression engages.
    pub light_up: f64,
    /// App pressure below which Light disengages (hysteresis, < light_up).
    pub light_down: f64,
    /// App pressure above which Heavy compression engages.
    pub heavy_up: f64,
    /// App pressure below which Heavy falls back to Light.
    pub heavy_down: f64,
    /// The DBMS never shrinks below this many bytes.
    pub min_dbms_memory: usize,
}

impl ControllerConfig {
    pub fn for_budget(total_memory: usize) -> Self {
        ControllerConfig {
            total_memory,
            light_up: 0.45,
            light_down: 0.35,
            heavy_up: 0.70,
            heavy_down: 0.55,
            min_dbms_memory: total_memory / 20,
        }
    }
}

/// What the controller decided this tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    pub compression: CompressionLevel,
    /// Memory budget the DBMS should restrict itself to.
    pub dbms_memory_budget: usize,
    /// Application pressure that produced the decision (diagnostics).
    pub app_pressure: f64,
}

/// Stateful hysteresis controller.
#[derive(Debug)]
pub struct AdaptiveController {
    config: ControllerConfig,
    level: CompressionLevel,
}

impl AdaptiveController {
    pub fn new(config: ControllerConfig) -> Self {
        AdaptiveController { config, level: CompressionLevel::None }
    }

    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    pub fn current_level(&self) -> CompressionLevel {
        self.level
    }

    /// Observe application usage and decide compression level + budget.
    pub fn observe(&mut self, usage: ResourceUsage) -> Decision {
        let pressure = usage.app_memory_bytes as f64 / self.config.total_memory as f64;
        self.level = match self.level {
            CompressionLevel::None => {
                if pressure >= self.config.heavy_up {
                    CompressionLevel::Heavy
                } else if pressure >= self.config.light_up {
                    CompressionLevel::Light
                } else {
                    CompressionLevel::None
                }
            }
            CompressionLevel::Light => {
                if pressure >= self.config.heavy_up {
                    CompressionLevel::Heavy
                } else if pressure < self.config.light_down {
                    CompressionLevel::None
                } else {
                    CompressionLevel::Light
                }
            }
            CompressionLevel::Heavy => {
                if pressure < self.config.light_down {
                    CompressionLevel::None
                } else if pressure < self.config.heavy_down {
                    CompressionLevel::Light
                } else {
                    CompressionLevel::Heavy
                }
            }
        };
        let remaining = self
            .config
            .total_memory
            .saturating_sub(usage.app_memory_bytes)
            .max(self.config.min_dbms_memory);
        Decision { compression: self.level, dbms_memory_budget: remaining, app_pressure: pressure }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_limit_tracks_host_pressure() {
        let gib = 1usize << 30;
        // Unconstrained host: configured limit untouched.
        assert_eq!(effective_memory_limit(gib, 16 * gib, 2 * gib), gib);
        // Exactly enough left: still the full limit.
        assert_eq!(effective_memory_limit(gib, 16 * gib, 15 * gib), gib);
        // Less left than configured: the limit shrinks to what exists.
        assert_eq!(effective_memory_limit(gib, 16 * gib, 15 * gib + gib / 2), gib / 2);
        // Host fully committed (or over-committed): the 1/20 floor holds.
        assert_eq!(effective_memory_limit(gib, 16 * gib, 16 * gib), gib / 20);
        assert_eq!(effective_memory_limit(gib, 16 * gib, 20 * gib), gib / 20);
        // No measurement: pass through.
        assert_eq!(effective_memory_limit(gib, 0, 123), gib);
        // Tiny configured limits keep a non-zero floor.
        assert_eq!(effective_memory_limit(10, 100, 100), 1);
    }

    fn usage(frac: f64, total: usize) -> ResourceUsage {
        ResourceUsage { app_memory_bytes: (total as f64 * frac) as usize, app_cpu: 0.0 }
    }

    #[test]
    fn ladder_climbs_with_pressure() {
        let total = 1_000_000;
        let mut c = AdaptiveController::new(ControllerConfig::for_budget(total));
        assert_eq!(c.observe(usage(0.10, total)).compression, CompressionLevel::None);
        assert_eq!(c.observe(usage(0.50, total)).compression, CompressionLevel::Light);
        assert_eq!(c.observe(usage(0.75, total)).compression, CompressionLevel::Heavy);
    }

    #[test]
    fn skips_straight_to_heavy_under_sudden_pressure() {
        let total = 1_000_000;
        let mut c = AdaptiveController::new(ControllerConfig::for_budget(total));
        assert_eq!(c.observe(usage(0.9, total)).compression, CompressionLevel::Heavy);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let total = 1_000_000;
        let mut c = AdaptiveController::new(ControllerConfig::for_budget(total));
        c.observe(usage(0.50, total)); // -> Light
                                       // Dropping just below the engage threshold keeps Light.
        assert_eq!(c.observe(usage(0.40, total)).compression, CompressionLevel::Light);
        // Dropping below the disengage threshold releases it.
        assert_eq!(c.observe(usage(0.30, total)).compression, CompressionLevel::None);
        // Same around the heavy boundary.
        c.observe(usage(0.75, total)); // -> Heavy
        assert_eq!(c.observe(usage(0.60, total)).compression, CompressionLevel::Heavy);
        assert_eq!(c.observe(usage(0.50, total)).compression, CompressionLevel::Light);
    }

    #[test]
    fn budget_shrinks_with_app_usage_but_keeps_minimum() {
        let total = 1_000_000;
        let mut c = AdaptiveController::new(ControllerConfig::for_budget(total));
        let d = c.observe(usage(0.25, total));
        assert_eq!(d.dbms_memory_budget, 750_000);
        let d = c.observe(usage(0.99, total));
        assert_eq!(d.dbms_memory_budget, total / 20);
    }

    #[test]
    fn figure1_trace_produces_the_ladder() {
        // Running the Figure 1 application trace through the controller
        // must produce the None -> Light -> Heavy -> ... -> None pattern.
        let total = 1 << 30;
        let app = crate::monitor::SimulatedApplication::figure1_trace(total);
        let mut c = AdaptiveController::new(ControllerConfig::for_budget(total));
        let mut seen = Vec::new();
        loop {
            use crate::monitor::ResourceMonitor;
            let d = c.observe(app.sample());
            if seen.last() != Some(&d.compression) {
                seen.push(d.compression);
            }
            if !app.step() {
                break;
            }
        }
        assert_eq!(
            seen,
            vec![
                CompressionLevel::None,
                CompressionLevel::Light,
                CompressionLevel::Heavy,
                CompressionLevel::Light,
                CompressionLevel::None
            ],
            "Figure 1 ladder"
        );
    }
}
