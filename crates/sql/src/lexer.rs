//! SQL tokenizer: turns statement text into a [`Token`] stream.
//!
//! Handles quoted identifiers and strings (with `''` escapes), numeric
//! literals (integer and floating), line comments, and the operator set
//! the parser understands. Positions are tracked per token so parse
//! errors can point at the offending location.

use eider_vector::{EiderError, Result};

/// One token of SQL input.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword, original case preserved.
    Ident(String),
    /// `"quoted identifier"`.
    QuotedIdent(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// `'string literal'` with doubled-quote escapes.
    Str(String),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    /// `||` string concatenation.
    Concat,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text. Comments (`-- ...` and `/* ... */`) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(chars[i] == '*' && chars[i + 1] == '/') {
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(EiderError::Parse("unterminated block comment".into()));
                }
                i += 2;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
                if i < n && chars[i] == '=' {
                    i += 1; // tolerate '=='
                }
            }
            '!' if i + 1 < n && chars[i + 1] == '=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < n && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '|' if i + 1 < n && chars[i + 1] == '|' => {
                tokens.push(Token::Concat);
                i += 2;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(EiderError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < n && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(EiderError::Parse("unterminated quoted identifier".into()));
                    }
                    if chars[i] == '"' {
                        if i + 1 < n && chars[i + 1] == '"' {
                            s.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                tokens.push(Token::QuotedIdent(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < n
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E')
                {
                    if chars[i] == '.' {
                        // A second dot terminates (e.g. `1.2.3` is an error
                        // caught by parse below; `1..2` splits).
                        if is_float {
                            break;
                        }
                        // Don't swallow `1.` followed by a non-digit as float.
                        if i + 1 < n && !chars[i + 1].is_ascii_digit() {
                            break;
                        }
                        is_float = true;
                    }
                    if (chars[i] == 'e' || chars[i] == 'E') && i + 1 < n {
                        if chars[i + 1] == '-' || chars[i + 1] == '+' {
                            is_float = true;
                            i += 1; // include sign
                        } else if chars[i + 1].is_ascii_digit() {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| EiderError::Parse(format!("bad number '{text}'")))?;
                    tokens.push(Token::Float(v));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => tokens.push(Token::Integer(v)),
                        Err(_) => {
                            let v: f64 = text
                                .parse()
                                .map_err(|_| EiderError::Parse(format!("bad number '{text}'")))?;
                            tokens.push(Token::Float(v));
                        }
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(EiderError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 10.5;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(10.5)));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("'it''s' \"Weird \"\"Name\"\"\"").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert_eq!(toks[1], Token::QuotedIdent("Weird \"Name\"".into()));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing\n + /* inline */ 2").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("SELECT".into()), Token::Integer(1), Token::Plus, Token::Integer(2)]
        );
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 1e3 1.5e-2 9223372036854775807").unwrap();
        assert_eq!(toks[0], Token::Integer(1));
        assert_eq!(toks[1], Token::Float(2.5));
        assert_eq!(toks[2], Token::Float(1000.0));
        assert_eq!(toks[3], Token::Float(0.015));
        assert_eq!(toks[4], Token::Integer(i64::MAX));
    }

    #[test]
    fn operators() {
        let toks = tokenize("<> != <= >= || = < >").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Concat,
                Token::Eq,
                Token::Lt,
                Token::Gt
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(toks[0].is_kw("select"));
        assert!(!toks[0].is_kw("FROM"));
    }
}
