//! The SQL frontend: lexer, parser, binder, logical plans, optimizer.
//!
//! §6's pipeline up to (but not including) physical execution: SQL text is
//! tokenized and parsed into an AST, the binder resolves names against the
//! catalog and types every expression (producing the *bound* expression
//! trees of `eider-exec`), and the optimizer folds constants, splits and
//! pushes down filters (into table-scan zone-map filters where possible)
//! and prunes unused columns. The output is a [`plan::LogicalPlan`] that
//! eider-core lowers onto physical operators with a transaction attached.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use binder::Binder;
pub use parser::parse_statements;
pub use plan::LogicalPlan;

/// Parse, bind and optimize a single SQL statement.
pub fn compile(
    catalog: &std::sync::Arc<eider_catalog::Catalog>,
    sql: &str,
) -> eider_vector::Result<LogicalPlan> {
    let statements = parse_statements(sql)?;
    if statements.len() != 1 {
        return Err(eider_vector::EiderError::Parse(format!(
            "expected exactly one statement, found {}",
            statements.len()
        )));
    }
    let stmt = statements.into_iter().next().expect("one statement");
    let plan = Binder::new(catalog.clone()).bind_statement(&stmt)?;
    optimizer::optimize(plan)
}
