//! Cardinality estimation over logical plans.
//!
//! The cost model every other pass (and the physical planner) consumes.
//! Estimates are derived from [`eider_txn::TableStats`] — physical row
//! counts, zone-map min/max and encoding-based distinct counts — with
//! textbook fallbacks where stats are silent:
//!
//! * scan: `rows × Π selectivity(filter)`; equality selects `1/ndv`,
//!   ranges select the covered fraction of `[min, max]`;
//! * equi-join: `|L|·|R| / max(ndv(l), ndv(r))` per key pair;
//! * aggregate: the product of the group columns' distinct counts,
//!   clamped to the input;
//! * cross join: the full product (its size *is* the penalty the join
//!   reorderer charges for it).
//!
//! Estimates are upper-bound-leaning on purpose: the stats layer never
//! under-counts rows, so a plan chosen here can be worse than optimal but
//! routing decisions (serial vs parallel, build side) fail safe.

use crate::plan::LogicalPlan;
use eider_exec::expression::Expr;
use eider_exec::ops::join::JoinType;
use eider_txn::{CmpOp, TableFilter, TableStats};

/// Selectivity assumed for a predicate we cannot see through.
const DEFAULT_FILTER_SEL: f64 = 1.0 / 3.0;
/// Selectivity assumed for an equality against an unknown distinct count.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Row estimate for external sources that cannot report one (CSV).
const DEFAULT_EXTERNAL_ROWS: u64 = 10_000;

/// Estimated output rows of a plan node.
pub fn estimate(plan: &LogicalPlan) -> u64 {
    match plan {
        LogicalPlan::TableScan { entry, filters, .. } => {
            let stats = entry.stats();
            let mut rows = stats.row_count as f64;
            for f in filters {
                rows *= filter_selectivity(&stats, f);
            }
            rows.ceil() as u64
        }
        LogicalPlan::ExternalScan { source, .. } => {
            source.estimated_rows().unwrap_or(DEFAULT_EXTERNAL_ROWS)
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut conjuncts = Vec::new();
            count_conjuncts(predicate, &mut conjuncts);
            let sel = DEFAULT_FILTER_SEL.powi(conjuncts.len().min(3) as i32);
            scale(estimate(input), sel)
        }
        LogicalPlan::Projection { input, .. } | LogicalPlan::Sort { input, .. } => estimate(input),
        LogicalPlan::Limit { input, limit, offset } => estimate(input).min((limit + offset) as u64),
        LogicalPlan::Distinct { input } => estimate(input),
        LogicalPlan::Aggregate { input, groups, aggs: _, .. } => {
            let input_rows = estimate(input);
            if groups.is_empty() {
                return 1;
            }
            let mut ndv_product: u64 = 1;
            let mut any_known = false;
            for g in groups {
                if let Some(ndv) = expr_ndv(input, g) {
                    any_known = true;
                    ndv_product = ndv_product.saturating_mul(ndv.max(1));
                }
            }
            if any_known {
                ndv_product.clamp(1, input_rows.max(1))
            } else {
                (input_rows / 4).max(1)
            }
        }
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => {
            let l = estimate(left);
            let r = estimate(right);
            match join_type {
                JoinType::Inner | JoinType::Left => {
                    let inner = equi_join_rows(left, right, left_keys, right_keys, l, r);
                    if matches!(join_type, JoinType::Left) {
                        inner.max(l)
                    } else {
                        inner
                    }
                }
                // Semi/anti keep a subset of the left side.
                JoinType::Semi | JoinType::Anti => (l / 2).max(1),
            }
        }
        LogicalPlan::NestedLoopJoin { left, right, .. } => {
            scale(estimate(left).saturating_mul(estimate(right)), DEFAULT_FILTER_SEL)
        }
        LogicalPlan::CrossJoin { left, right } => estimate(left).saturating_mul(estimate(right)),
        LogicalPlan::Union { left, right } => estimate(left).saturating_add(estimate(right)),
        LogicalPlan::Values { rows, .. } => rows.len() as u64,
        LogicalPlan::SingleRow => 1,
        LogicalPlan::Insert { input, .. }
        | LogicalPlan::Update { input, .. }
        | LogicalPlan::Delete { input, .. }
        | LogicalPlan::Explain { input }
        | LogicalPlan::CopyTo { input, .. } => estimate(input),
        _ => 1,
    }
}

/// `|L ⋈ R|` for an equi-join: the product scaled by `1/max(ndv)` per key
/// pair, falling back to the larger input's cardinality as the divisor
/// (the classic FK-join assumption) when neither side's ndv is known.
fn equi_join_rows(
    left: &LogicalPlan,
    right: &LogicalPlan,
    left_keys: &[Expr],
    right_keys: &[Expr],
    l: u64,
    r: u64,
) -> u64 {
    let mut rows = l.saturating_mul(r) as f64;
    for (lk, rk) in left_keys.iter().zip(right_keys) {
        let ndv_l = expr_ndv(left, lk);
        let ndv_r = expr_ndv(right, rk);
        let divisor = match (ndv_l, ndv_r) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a.max(r),
            (None, Some(b)) => b.max(l),
            (None, None) => l.max(r),
        };
        rows /= divisor.max(1) as f64;
    }
    (rows.ceil() as u64).max(1)
}

/// Distinct-count estimate of a key expression over `input`'s output.
/// Sees through the casts the binder adds for key-type coercion; any
/// expression referencing other than exactly one column is opaque.
pub(crate) fn expr_ndv(input: &LogicalPlan, key: &Expr) -> Option<u64> {
    let mut cols = std::collections::BTreeSet::new();
    super::collect_columns(key, &mut cols);
    if cols.len() != 1 {
        return None;
    }
    let col = *cols.iter().next().expect("one column");
    column_ndv(input, col)
}

/// Trace output column `col` of `plan` to a base-table column and return
/// its distinct estimate. `None` when the column is computed or the
/// lineage crosses a node we cannot see through.
pub(crate) fn column_ndv(plan: &LogicalPlan, col: usize) -> Option<u64> {
    match plan {
        LogicalPlan::TableScan { entry, column_ids, .. } => {
            let phys = *column_ids.get(col)?;
            let stats = entry.stats();
            let ndv = stats.column(phys)?.distinct;
            (ndv > 0).then_some(ndv)
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => column_ndv(input, col),
        LogicalPlan::Projection { input, exprs, .. } => match exprs.get(col)? {
            Expr::ColumnRef { index, .. } => column_ndv(input, *index),
            Expr::Cast { child, .. } => match &**child {
                Expr::ColumnRef { index, .. } => column_ndv(input, *index),
                _ => None,
            },
            _ => None,
        },
        LogicalPlan::Aggregate { input, groups, .. } => match groups.get(col)? {
            Expr::ColumnRef { index, .. } => column_ndv(input, *index),
            _ => None,
        },
        LogicalPlan::Join { left, right, join_type, .. } => {
            let lw = left.output_types().len();
            if col < lw {
                column_ndv(left, col)
            } else if matches!(join_type, JoinType::Inner | JoinType::Left) {
                column_ndv(right, col - lw)
            } else {
                None
            }
        }
        LogicalPlan::NestedLoopJoin { left, right, .. }
        | LogicalPlan::CrossJoin { left, right } => {
            let lw = left.output_types().len();
            if col < lw {
                column_ndv(left, col)
            } else {
                column_ndv(right, col - lw)
            }
        }
        _ => None,
    }
}

/// Fraction of a scan's rows a pushed filter keeps.
fn filter_selectivity(stats: &TableStats, f: &TableFilter) -> f64 {
    let Some(col) = stats.column(f.column) else {
        return DEFAULT_FILTER_SEL;
    };
    match f.op {
        CmpOp::Eq => {
            if col.distinct > 0 {
                1.0 / col.distinct as f64
            } else {
                DEFAULT_EQ_SEL
            }
        }
        CmpOp::NotEq => {
            if col.distinct > 0 {
                1.0 - 1.0 / col.distinct as f64
            } else {
                1.0 - DEFAULT_EQ_SEL
            }
        }
        CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq => {
            range_fraction(col.min.as_ref(), col.max.as_ref(), f)
        }
    }
}

/// Interpolate how much of `[min, max]` a range predicate covers.
fn range_fraction(
    min: Option<&eider_vector::Value>,
    max: Option<&eider_vector::Value>,
    f: &TableFilter,
) -> f64 {
    let (Some(lo), Some(hi), Some(v)) =
        (min.and_then(|v| v.as_f64()), max.and_then(|v| v.as_f64()), f.value.as_f64())
    else {
        return DEFAULT_FILTER_SEL;
    };
    if hi <= lo {
        // Single-valued column: the zone test is exact.
        let keeps = match f.op {
            CmpOp::Lt => lo < v,
            CmpOp::LtEq => lo <= v,
            CmpOp::Gt => lo > v,
            CmpOp::GtEq => lo >= v,
            _ => true,
        };
        return if keeps { 1.0 } else { 0.0 };
    }
    let below = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    match f.op {
        CmpOp::Lt | CmpOp::LtEq => below,
        CmpOp::Gt | CmpOp::GtEq => 1.0 - below,
        _ => DEFAULT_FILTER_SEL,
    }
}

fn count_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::And(children) => children.iter().for_each(|c| count_conjuncts(c, out)),
        other => out.push(other),
    }
}

fn scale(rows: u64, sel: f64) -> u64 {
    ((rows as f64 * sel).ceil() as u64).max(if rows > 0 { 1 } else { 0 })
}
