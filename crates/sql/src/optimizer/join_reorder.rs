//! Cost-based join reordering.
//!
//! Maximal regions of inner equi-joins and cross joins are flattened into
//! a set of *leaves* (arbitrary sub-plans) and *edges* (equi-join key
//! pairs, re-expressed in global coordinates over the concatenated leaf
//! outputs). An order is then chosen over estimated cardinalities —
//! exhaustive left-deep dynamic programming for small regions, greedy
//! construction beyond [`DP_MAX_LEAVES`] — and the region is rebuilt
//! left-deep with each new leaf as the build (right) side of its join.
//! A final projection restores the original column order, so nothing
//! above the region can tell the difference.
//!
//! Cost of an order: the sum of intermediate result cardinalities plus
//! each build input's cardinality (hash tables are built over every leaf
//! after the first). Cross joins carry no explicit penalty — their
//! product cardinality *is* the penalty — and are only considered when a
//! subset has no connected leaf left. The syntactic order is kept unless
//! a strictly cheaper order exists, so stats-free plans never churn.

use super::{cardinality, collect_columns, map_children, remap_columns, split_conjuncts};
use crate::plan::LogicalPlan;
use eider_exec::expression::Expr;
use eider_exec::ops::join::JoinType;
use eider_txn::CmpOp;
use eider_vector::Result;
use std::collections::BTreeSet;

/// Largest region solved by exact subset DP; 2^n × n² stays trivial here.
const DP_MAX_LEAVES: usize = 8;

pub(super) fn reorder_joins(plan: LogicalPlan) -> Result<LogicalPlan> {
    rewrite(plan)
}

fn rewrite(plan: LogicalPlan) -> Result<LogicalPlan> {
    match plan {
        // A filter directly above a region carries the comma-join style
        // (`FROM a, b WHERE a.x = b.y`) equi-predicates the pushdown pass
        // could not sink into either side; absorbing them as edges lets
        // the reorderer see cross joins as the equi-joins they really are.
        LogicalPlan::Filter { input, predicate } if is_region_root(&input) => {
            reorder_region(*input, Some(predicate))
        }
        p if is_region_root(&p) => reorder_region(p, None),
        p => map_children(p, &rewrite),
    }
}

fn is_region_root(p: &LogicalPlan) -> bool {
    matches!(
        p,
        LogicalPlan::Join { join_type: JoinType::Inner, .. } | LogicalPlan::CrossJoin { .. }
    )
}

/// One equi-join predicate in global (concatenated-leaf) coordinates.
struct Edge {
    left_key: Expr,
    right_key: Expr,
    /// Leaves each side references.
    left_leaves: BTreeSet<usize>,
    right_leaves: BTreeSet<usize>,
    /// Selectivity applied to the cartesian product when this edge joins.
    sel: f64,
    used: bool,
}

impl Edge {
    fn leaves(&self) -> BTreeSet<usize> {
        self.left_leaves.union(&self.right_leaves).copied().collect()
    }
}

struct Region {
    leaves: Vec<LogicalPlan>,
    /// Global output offset of each leaf in the original (syntactic) order.
    offsets: Vec<usize>,
    widths: Vec<usize>,
    edges: Vec<Edge>,
}

impl Region {
    fn leaf_of(&self, col: usize) -> usize {
        match self.offsets.binary_search(&col) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

fn reorder_region(plan: LogicalPlan, filter: Option<Expr>) -> Result<LogicalPlan> {
    let mut leaves = Vec::new();
    let mut raw_edges = Vec::new();
    let mut width = 0usize;
    flatten(plan, &mut leaves, &mut raw_edges, &mut width)?;

    let n = leaves.len();
    let mut offsets = Vec::with_capacity(n);
    let mut widths = Vec::with_capacity(n);
    let mut acc = 0usize;
    for leaf in &leaves {
        let w = leaf.output_types().len();
        offsets.push(acc);
        widths.push(w);
        acc += w;
    }

    let estimates: Vec<f64> =
        leaves.iter().map(|l| cardinality::estimate(l).max(1) as f64).collect();

    // Absorb a region-level filter: equality conjuncts whose two sides
    // live on disjoint leaf sets become edges (already in global
    // coordinates — the filter addressed the region's output); everything
    // else is re-applied above the rebuilt region.
    let mut residual: Vec<Expr> = Vec::new();
    if let Some(predicate) = filter {
        let leaf_of = |col: usize| match offsets.binary_search(&col) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let leaves_of = |e: &Expr| -> BTreeSet<usize> {
            let mut cols = BTreeSet::new();
            collect_columns(e, &mut cols);
            cols.iter().map(|&c| leaf_of(c)).collect()
        };
        let mut conjuncts = Vec::new();
        split_conjuncts(predicate, &mut conjuncts);
        for c in conjuncts {
            let absorbed = match &c {
                Expr::Compare { op: CmpOp::Eq, left, right } => {
                    let (ls, rs) = (leaves_of(left), leaves_of(right));
                    if !ls.is_empty() && !rs.is_empty() && ls.is_disjoint(&rs) {
                        Some(((**left).clone(), (**right).clone()))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match absorbed {
                Some(edge) => raw_edges.push(edge),
                None => residual.push(c),
            }
        }
    }

    let mut region = Region { leaves, offsets, widths, edges: Vec::new() };
    for (lk, rk) in raw_edges {
        let mut left_leaves = BTreeSet::new();
        let mut right_leaves = BTreeSet::new();
        let mut cols = BTreeSet::new();
        collect_columns(&lk, &mut cols);
        left_leaves.extend(cols.iter().map(|&c| region.leaf_of(c)));
        cols.clear();
        collect_columns(&rk, &mut cols);
        right_leaves.extend(cols.iter().map(|&c| region.leaf_of(c)));
        let sel = edge_selectivity(&region, &estimates, &lk, &rk);
        region.edges.push(Edge {
            left_key: lk,
            right_key: rk,
            left_leaves,
            right_leaves,
            sel,
            used: false,
        });
    }

    let identity: Vec<usize> = (0..n).collect();
    let identity_cost = order_cost(&region, &estimates, &identity);
    let best = if n <= DP_MAX_LEAVES {
        dp_order(&region, &estimates)
    } else {
        greedy_order(&region, &estimates)
    };
    let order = match best {
        Some((order, cost)) if cost < identity_cost => order,
        _ => identity,
    };
    let mut out = rebuild(region, order)?;
    // Residual conjuncts address the original global column order, which
    // the rebuilt region's output (restoring projection included) matches.
    for predicate in residual {
        out = LogicalPlan::Filter { input: Box::new(out), predicate };
    }
    Ok(out)
}

/// Flatten a tree of inner joins / cross joins. Any other node — a
/// non-inner join, a filter, a scan — becomes an opaque leaf, recursively
/// reordered on its own.
fn flatten(
    node: LogicalPlan,
    leaves: &mut Vec<LogicalPlan>,
    edges: &mut Vec<(Expr, Expr)>,
    width: &mut usize,
) -> Result<()> {
    match node {
        LogicalPlan::Join { left, right, join_type: JoinType::Inner, left_keys, right_keys } => {
            let left_base = *width;
            flatten(*left, leaves, edges, width)?;
            let right_base = *width;
            flatten(*right, leaves, edges, width)?;
            for (mut lk, mut rk) in left_keys.into_iter().zip(right_keys) {
                remap_columns(&mut lk, &|i| i + left_base);
                remap_columns(&mut rk, &|i| i + right_base);
                edges.push((lk, rk));
            }
            Ok(())
        }
        LogicalPlan::CrossJoin { left, right } => {
            flatten(*left, leaves, edges, width)?;
            flatten(*right, leaves, edges, width)?;
            Ok(())
        }
        other => {
            let leaf = rewrite(other)?;
            *width += leaf.output_types().len();
            leaves.push(leaf);
            Ok(())
        }
    }
}

/// `1 / max(ndv)` of the two key sides, falling back to the larger
/// involved leaf's cardinality — the FK-join assumption.
fn edge_selectivity(region: &Region, estimates: &[f64], lk: &Expr, rk: &Expr) -> f64 {
    let side_ndv = |key: &Expr| -> Option<u64> {
        let mut cols = BTreeSet::new();
        collect_columns(key, &mut cols);
        if cols.len() != 1 {
            return None;
        }
        let col = *cols.iter().next().expect("one");
        let leaf = region.leaf_of(col);
        cardinality::column_ndv(&region.leaves[leaf], col - region.offsets[leaf])
    };
    let side_rows = |key: &Expr| -> f64 {
        let mut cols = BTreeSet::new();
        collect_columns(key, &mut cols);
        cols.iter().map(|&c| estimates[region.leaf_of(c)]).fold(1.0f64, f64::max)
    };
    let divisor = match (side_ndv(lk), side_ndv(rk)) {
        (Some(a), Some(b)) => a.max(b) as f64,
        (Some(a), None) => (a as f64).max(side_rows(rk)),
        (None, Some(b)) => (b as f64).max(side_rows(lk)),
        (None, None) => side_rows(lk).max(side_rows(rk)),
    };
    1.0 / divisor.max(1.0)
}

/// Cost of joining the leaves in `order` left-deep: Σ (intermediate
/// cardinality + build input cardinality) over every join step.
fn order_cost(region: &Region, estimates: &[f64], order: &[usize]) -> f64 {
    let mut placed: BTreeSet<usize> = BTreeSet::new();
    placed.insert(order[0]);
    let mut card = estimates[order[0]];
    let mut cost = 0.0f64;
    let mut applied = vec![false; region.edges.len()];
    for &j in &order[1..] {
        let mut step = placed.clone();
        step.insert(j);
        let mut sel = 1.0f64;
        for (i, e) in region.edges.iter().enumerate() {
            if !applied[i] && e.leaves().is_subset(&step) && e.leaves().contains(&j) {
                applied[i] = true;
                sel *= e.sel;
            }
        }
        card = (card * estimates[j] * sel).max(1.0);
        cost += card + estimates[j];
        placed.insert(j);
    }
    cost
}

/// Exact left-deep DP over leaf subsets. Cross-join extensions are only
/// taken from subsets with no edge-connected leaf remaining.
fn dp_order(region: &Region, estimates: &[f64]) -> Option<(Vec<usize>, f64)> {
    let n = region.leaves.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // dp[mask] = best (cost, card, order) reaching that subset left-deep.
    let mut dp: Vec<Option<(f64, f64, Vec<usize>)>> = vec![None; 1 << n];
    for i in 0..n {
        dp[1usize << i] = Some((0.0, estimates[i], vec![i]));
    }
    for mask in 1u32..=full {
        let Some((cost, card, order)) = dp[mask as usize].clone() else {
            continue;
        };
        // Leaves connected to `mask` by an edge fully satisfiable next.
        let connected: Vec<usize> = (0..n)
            .filter(|&j| mask & (1 << j) == 0)
            .filter(|&j| {
                region.edges.iter().any(|e| {
                    let ls = e.leaves();
                    ls.contains(&j) && ls.iter().all(|&x| x == j || mask & (1 << x) != 0)
                })
            })
            .collect();
        let candidates: Vec<usize> = if connected.is_empty() {
            (0..n).filter(|&j| mask & (1 << j) == 0).collect()
        } else {
            connected
        };
        for j in candidates {
            let next_mask = (mask | (1 << j)) as usize;
            let mut sel = 1.0f64;
            for e in &region.edges {
                let ls = e.leaves();
                if ls.contains(&j) && ls.iter().all(|&x| x == j || mask & (1 << x) != 0) {
                    sel *= e.sel;
                }
            }
            let new_card = (card * estimates[j] * sel).max(1.0);
            let new_cost = cost + new_card + estimates[j];
            let better = match &dp[next_mask] {
                Some((c, _, _)) => new_cost < *c,
                None => true,
            };
            if better {
                let mut new_order = order.clone();
                new_order.push(j);
                dp[next_mask] = Some((new_cost, new_card, new_order));
            }
        }
    }
    dp[full as usize].take().map(|(cost, _, order)| (order, cost))
}

/// Greedy fallback for large regions: every leaf tried as the start,
/// extended by the connected leaf with the cheapest step.
fn greedy_order(region: &Region, estimates: &[f64]) -> Option<(Vec<usize>, f64)> {
    let n = region.leaves.len();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for start in 0..n {
        let mut order = vec![start];
        let mut placed: BTreeSet<usize> = BTreeSet::new();
        placed.insert(start);
        while order.len() < n {
            let connected: Vec<usize> = (0..n)
                .filter(|j| !placed.contains(j))
                .filter(|&j| {
                    region.edges.iter().any(|e| {
                        let ls = e.leaves();
                        ls.contains(&j) && ls.iter().all(|x| *x == j || placed.contains(x))
                    })
                })
                .collect();
            let candidates = if connected.is_empty() {
                (0..n).filter(|j| !placed.contains(j)).collect::<Vec<_>>()
            } else {
                connected
            };
            // Cheapest next step by the same cost model as order_cost.
            let next = candidates
                .into_iter()
                .min_by(|&a, &b| {
                    let mut oa = order.clone();
                    oa.push(a);
                    let mut ob = order.clone();
                    ob.push(b);
                    order_cost(region, estimates, &oa)
                        .total_cmp(&order_cost(region, estimates, &ob))
                })
                .expect("candidates nonempty");
            order.push(next);
            placed.insert(next);
        }
        let cost = order_cost(region, estimates, &order);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((order, cost));
        }
    }
    best
}

/// Rebuild the region left-deep in `order`, remapping key columns into
/// each join's local coordinates, turning unalignable edges into filters,
/// and restoring the original column order with a projection when the
/// order changed.
fn rebuild(mut region: Region, order: Vec<usize>) -> Result<LogicalPlan> {
    let n = region.leaves.len();
    let identity = order.iter().copied().eq(0..n);
    let total: usize = region.widths.iter().sum();
    let original_types: Vec<_> = region.leaves.iter().flat_map(|l| l.output_types()).collect();
    let original_names: Vec<_> = region.leaves.iter().flat_map(|l| l.output_names()).collect();

    let offsets = region.offsets.clone();
    let widths = region.widths.clone();
    let leaf_of = |col: usize| -> usize {
        match offsets.binary_search(&col) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };

    let mut slots: Vec<Option<LogicalPlan>> = region.leaves.drain(..).map(Some).collect();
    let mut cur = slots[order[0]].take().expect("leaf placed once");
    let mut placed: BTreeSet<usize> = BTreeSet::new();
    placed.insert(order[0]);
    // Offset of each placed leaf inside `cur`'s output.
    let mut cur_off = vec![usize::MAX; n];
    cur_off[order[0]] = 0;
    let mut cur_width = widths[order[0]];

    for &j in &order[1..] {
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residuals: Vec<Expr> = Vec::new();
        for e in region.edges.iter_mut().filter(|e| !e.used) {
            let all = e.leaves();
            if !all.iter().all(|&x| x == j || placed.contains(&x)) {
                continue;
            }
            e.used = true;
            let to_cur = |g: usize| cur_off[leaf_of(g)] + (g - offsets[leaf_of(g)]);
            let to_local_j = |g: usize| g - offsets[j];
            if e.left_leaves.iter().all(|x| placed.contains(x))
                && e.right_leaves.len() == 1
                && e.right_leaves.contains(&j)
            {
                let mut lk = e.left_key.clone();
                let mut rk = e.right_key.clone();
                remap_columns(&mut lk, &to_cur);
                remap_columns(&mut rk, &to_local_j);
                left_keys.push(lk);
                right_keys.push(rk);
            } else if e.right_leaves.iter().all(|x| placed.contains(x))
                && e.left_leaves.len() == 1
                && e.left_leaves.contains(&j)
            {
                let mut lk = e.right_key.clone();
                let mut rk = e.left_key.clone();
                remap_columns(&mut lk, &to_cur);
                remap_columns(&mut rk, &to_local_j);
                left_keys.push(lk);
                right_keys.push(rk);
            } else {
                // A side spans the new leaf and placed leaves (or both
                // sides are placed after a forced cross step): evaluate
                // over the combined output instead.
                let to_combined = |g: usize| {
                    let leaf = leaf_of(g);
                    if leaf == j {
                        cur_width + (g - offsets[j])
                    } else {
                        cur_off[leaf] + (g - offsets[leaf])
                    }
                };
                let mut lk = e.left_key.clone();
                let mut rk = e.right_key.clone();
                remap_columns(&mut lk, &to_combined);
                remap_columns(&mut rk, &to_combined);
                residuals.push(Expr::Compare {
                    op: CmpOp::Eq,
                    left: Box::new(lk),
                    right: Box::new(rk),
                });
            }
        }
        let right = Box::new(slots[j].take().expect("leaf placed once"));
        cur = if left_keys.is_empty() {
            LogicalPlan::CrossJoin { left: Box::new(cur), right }
        } else {
            LogicalPlan::Join {
                left: Box::new(cur),
                right,
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
            }
        };
        for predicate in residuals {
            cur = LogicalPlan::Filter { input: Box::new(cur), predicate };
        }
        cur_off[j] = cur_width;
        cur_width += widths[j];
        placed.insert(j);
    }

    if identity {
        return Ok(cur);
    }
    // Restore the original (syntactic) column order so parents are
    // oblivious to the reorder.
    let exprs: Vec<Expr> = (0..total)
        .map(|g| {
            let leaf = leaf_of(g);
            Expr::ColumnRef { index: cur_off[leaf] + (g - offsets[leaf]), ty: original_types[g] }
        })
        .collect();
    Ok(LogicalPlan::Projection { input: Box::new(cur), exprs, names: original_names })
}
