//! Constant folding: evaluate input-free expression subtrees once at plan
//! time. Runs first so later passes (notably filter pushdown) see
//! `a > 5` where the query said `a > 2 + 3`.

use super::map_plan;
use crate::plan::LogicalPlan;
use eider_exec::expression::Expr;
use eider_vector::Result;

fn fold_expr(e: Expr) -> Result<Expr> {
    // Fold bottom-up: if the whole subtree is input-free, evaluate it once.
    if e.is_constant() {
        if let Ok(v) = e.evaluate_row(&[]) {
            // Preserve the static type: fold through a typed constant.
            let ty = e.result_type();
            let v = match v.cast_to(ty) {
                Ok(v) => v,
                Err(_) => v,
            };
            return Ok(Expr::Constant { value: v, ty });
        }
        return Ok(e);
    }
    Ok(match e {
        Expr::Compare { op, left, right } => Expr::Compare {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
        },
        Expr::And(c) => Expr::And(c.into_iter().map(fold_expr).collect::<Result<_>>()?),
        Expr::Or(c) => Expr::Or(c.into_iter().map(fold_expr).collect::<Result<_>>()?),
        Expr::Not(c) => Expr::Not(Box::new(fold_expr(*c)?)),
        Expr::Arithmetic { op, left, right, ty } => Expr::Arithmetic {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
            ty,
        },
        Expr::Cast { child, to } => Expr::Cast { child: Box::new(fold_expr(*child)?), to },
        Expr::IsNull { child, negated } => {
            Expr::IsNull { child: Box::new(fold_expr(*child)?), negated }
        }
        Expr::Case { branches, else_expr, ty } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(c, v)| Ok::<_, eider_vector::EiderError>((fold_expr(c)?, fold_expr(v)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(fold_expr(*e)?)),
                None => None,
            },
            ty,
        },
        Expr::Function { func, args, ty } => Expr::Function {
            func,
            args: args.into_iter().map(fold_expr).collect::<Result<_>>()?,
            ty,
        },
        Expr::Like { child, pattern, negated } => Expr::Like {
            child: Box::new(fold_expr(*child)?),
            pattern: Box::new(fold_expr(*pattern)?),
            negated,
        },
        Expr::InList { child, list, negated } => Expr::InList {
            child: Box::new(fold_expr(*child)?),
            list: list.into_iter().map(fold_expr).collect::<Result<_>>()?,
            negated,
        },
        other => other,
    })
}

pub(super) fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Filter { input, predicate } => {
                LogicalPlan::Filter { input, predicate: fold_expr(predicate)? }
            }
            LogicalPlan::Projection { input, exprs, names } => LogicalPlan::Projection {
                input,
                exprs: exprs.into_iter().map(fold_expr).collect::<Result<_>>()?,
                names,
            },
            other => other,
        })
    })
}
