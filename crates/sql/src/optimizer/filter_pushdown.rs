//! Filter splitting and pushdown. Conjuncts sink as deep as the plan
//! allows: through 1:1 projections (remapped through the projected
//! expressions), below inner joins and cross joins to whichever side
//! their columns live on, and finally *into* table scans as
//! [`TableFilter`]s, where the zone maps of §6 skip whole row groups and
//! [`cardinality`](super::cardinality) sees them when estimating scan
//! output. Running before join reordering, the pushdown also hands the
//! reorderer filtered (smaller) leaf estimates to plan with.

use super::{collect_columns, map_plan, remap_columns, split_conjuncts};
use crate::plan::LogicalPlan;
use eider_exec::expression::Expr;
use eider_exec::ops::join::JoinType;
use eider_txn::{CmpOp, TableFilter};
use eider_vector::Result;
use std::collections::BTreeSet;

/// Try to express a conjunct as a pushable `column <op> constant` filter
/// against scan output column indexes.
fn as_table_filter(e: &Expr) -> Option<(usize, CmpOp, eider_vector::Value)> {
    let Expr::Compare { op, left, right } = e else {
        return None;
    };
    // Widening numeric casts the binder inserted for type coercion do not
    // block pushdown: `TableFilter::matches` compares with numeric
    // promotion, so `CAST(int_col AS BIGINT) > 5` pushes as `int_col > 5`.
    // Temporal casts (DATE -> TIMESTAMP) change the scale and must stay.
    fn as_column(e: &Expr) -> Option<usize> {
        match e {
            Expr::ColumnRef { index, .. } => Some(*index),
            Expr::Cast { child, to } if to.is_numeric() => match &**child {
                Expr::ColumnRef { index, ty } if ty.is_numeric() => Some(*index),
                _ => None,
            },
            _ => None,
        }
    }
    match (&**left, &**right) {
        (l, Expr::Constant { value, .. }) if !value.is_null() => {
            as_column(l).map(|idx| (idx, *op, value.clone()))
        }
        (Expr::Constant { value, .. }, r) if !value.is_null() => {
            as_column(r).map(|idx| (idx, op.flip(), value.clone()))
        }
        _ => None,
    }
}

/// AND a conjunct list back into one predicate (`None` when empty).
fn conjoin(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    match conjuncts.len() {
        0 => None,
        1 => conjuncts.pop(),
        _ => Some(Expr::And(conjuncts)),
    }
}

/// Re-wrap conjuncts that could not sink any further.
fn wrap_residual(plan: LogicalPlan, residual: Vec<Expr>) -> LogicalPlan {
    match conjoin(residual) {
        Some(predicate) => LogicalPlan::Filter { input: Box::new(plan), predicate },
        None => plan,
    }
}

/// The column positions a conjunct references.
fn columns_of(e: &Expr) -> BTreeSet<usize> {
    let mut cols = BTreeSet::new();
    collect_columns(e, &mut cols);
    cols
}

/// Sink `conjuncts` into one side of a join: `None` leaves the side
/// untouched, otherwise the side is rewritten with the filter pushed as
/// deep as it will go.
fn sink_side(side: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    match conjoin(conjuncts) {
        Some(p) => sink_filter(side, p),
        None => side,
    }
}

/// Sink `predicate` as deep into `input` as it will go, leaving a
/// residual `Filter` above the first operator each conjunct cannot pass.
fn sink_filter(input: LogicalPlan, predicate: Expr) -> LogicalPlan {
    let mut conjuncts = Vec::new();
    split_conjuncts(predicate, &mut conjuncts);
    match input {
        LogicalPlan::TableScan { entry, column_ids, mut filters, emit_row_ids, names, types } => {
            let mut residual = Vec::new();
            for c in conjuncts {
                match as_table_filter(&c) {
                    // Scan filters address *physical* column ids; scans
                    // emit columns in column_ids order, so map through it.
                    Some((out_idx, op, value)) if out_idx < column_ids.len() => {
                        filters.push(TableFilter::new(column_ids[out_idx], op, value));
                    }
                    _ => residual.push(c),
                }
            }
            let scan =
                LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, names, types };
            wrap_residual(scan, residual)
        }
        // External scans never evaluate filters — formats only expose
        // coarse min/max metadata. Pushable conjuncts are *copied* into
        // the scan as pruning hints (skip whole partitions) while the
        // Filter node keeps the full predicate for exactness.
        LogicalPlan::ExternalScan { source, column_ids, mut filters, names, types } => {
            for c in &conjuncts {
                if let Some((out_idx, op, value)) = as_table_filter(c) {
                    if out_idx < column_ids.len() {
                        filters.push(TableFilter::new(column_ids[out_idx], op, value));
                    }
                }
            }
            let scan = LogicalPlan::ExternalScan { source, column_ids, filters, names, types };
            wrap_residual(scan, conjuncts)
        }
        // A projection is 1:1 in rows; a conjunct whose referenced output
        // positions are all plain column passthroughs commutes with it
        // (remapped to input positions). Computed outputs keep their
        // conjuncts above — re-evaluating an arbitrary expression below
        // the projection could change effects (casts, division).
        LogicalPlan::Projection { input, exprs, names } => {
            let mut sunk = Vec::new();
            let mut residual = Vec::new();
            for mut c in conjuncts {
                let passthrough = columns_of(&c)
                    .iter()
                    .all(|&i| matches!(exprs.get(i), Some(Expr::ColumnRef { .. })));
                if passthrough {
                    remap_columns(&mut c, &|old| match &exprs[old] {
                        Expr::ColumnRef { index, .. } => *index,
                        _ => unreachable!("checked passthrough above"),
                    });
                    sunk.push(c);
                } else {
                    residual.push(c);
                }
            }
            let inner = sink_side(*input, sunk);
            wrap_residual(
                LogicalPlan::Projection { input: Box::new(inner), exprs, names },
                residual,
            )
        }
        // Inner joins emit left ++ right: a conjunct touching only one
        // side filters that input directly (fewer rows hashed and
        // probed). Outer/semi/anti joins keep their filters above — a
        // predicate over a LEFT JOIN's right side is not equivalent to
        // pre-filtering it (NULL-extended rows).
        LogicalPlan::Join { left, right, join_type: JoinType::Inner, left_keys, right_keys } => {
            let lw = left.output_types().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut residual = Vec::new();
            for mut c in conjuncts {
                let cols = columns_of(&c);
                if cols.iter().all(|&i| i < lw) {
                    to_left.push(c);
                } else if cols.iter().all(|&i| i >= lw) {
                    remap_columns(&mut c, &|old| old - lw);
                    to_right.push(c);
                } else {
                    residual.push(c);
                }
            }
            let left = Box::new(sink_side(*left, to_left));
            let right = Box::new(sink_side(*right, to_right));
            wrap_residual(
                LogicalPlan::Join {
                    left,
                    right,
                    join_type: JoinType::Inner,
                    left_keys,
                    right_keys,
                },
                residual,
            )
        }
        LogicalPlan::CrossJoin { left, right } => {
            let lw = left.output_types().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut residual = Vec::new();
            for mut c in conjuncts {
                let cols = columns_of(&c);
                if cols.iter().all(|&i| i < lw) {
                    to_left.push(c);
                } else if cols.iter().all(|&i| i >= lw) {
                    remap_columns(&mut c, &|old| old - lw);
                    to_right.push(c);
                } else {
                    residual.push(c);
                }
            }
            let left = Box::new(sink_side(*left, to_left));
            let right = Box::new(sink_side(*right, to_right));
            wrap_residual(LogicalPlan::CrossJoin { left, right }, residual)
        }
        other => wrap_residual(other, conjuncts),
    }
}

pub(super) fn push_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Filter { input, predicate } => sink_filter(*input, predicate),
            other => other,
        })
    })
}
