//! The cost-based optimizer: discrete, composable rewrite passes over
//! bound logical plans.
//!
//! Pipeline (order matters):
//!
//! 1. `constant_fold` — evaluate input-free expressions once, turning
//!    `a > 2 + 3` into the pushable `a > 5`;
//! 2. `filter_pushdown` — split conjunctions and push
//!    `column <op> constant` conjuncts into table scans, where the zone
//!    maps of §6 skip whole row groups;
//! 3. `join_reorder` — flatten inner-join/cross-join regions and
//!    reorder them over estimated cardinalities ([`cardinality`]): DP
//!    over join subsets for small regions, greedy beyond, with the build
//!    (right) side of every join chosen small;
//! 4. `limit_pushdown` — sink LIMIT through 1:1 projections so fewer
//!    rows are materialized (and Top-N fusion sees `LIMIT` over `SORT`);
//! 5. `column_prune` — narrow scans to the columns consumers touch
//!    (§2: a columnar engine reads only what the query needs).
//!
//! Filter pushdown runs before join reordering so scans carry their
//! filters when [`cardinality`] estimates them; column pruning runs last
//! because every earlier pass can change which columns are referenced.
//!
//! Statistics come from [`eider_txn::TableStats`] — row counts, zone-map
//! min/max and encoding-based distinct estimates maintained by storage —
//! so plan quality needs no ANALYZE step and no DBA, per the paper's
//! embedded-analytics thesis.

pub mod cardinality;
mod column_prune;
mod constant_fold;
mod filter_pushdown;
mod join_reorder;
mod limit_pushdown;

use crate::plan::LogicalPlan;
use eider_exec::expression::Expr;
use eider_vector::Result;
use std::collections::BTreeSet;

/// Run all rewrite passes.
pub fn optimize(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = constant_fold::fold_constants(plan)?;
    let plan = filter_pushdown::push_filters(plan)?;
    let plan = join_reorder::reorder_joins(plan)?;
    let plan = limit_pushdown::push_limits(plan)?;
    let plan = column_prune::prune_scan_columns(plan)?;
    Ok(plan)
}

// ---------------- shared plan/expression walkers ----------------

/// Rebuild `plan` with each *direct* child passed through `f`.
pub(crate) fn map_children(
    plan: LogicalPlan,
    f: &dyn Fn(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(f(*input)?), predicate }
        }
        LogicalPlan::Projection { input, exprs, names } => {
            LogicalPlan::Projection { input: Box::new(f(*input)?), exprs, names }
        }
        LogicalPlan::Aggregate { input, groups, aggs, names } => {
            LogicalPlan::Aggregate { input: Box::new(f(*input)?), groups, aggs, names }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(f(*input)?), keys }
        }
        LogicalPlan::Limit { input, limit, offset } => {
            LogicalPlan::Limit { input: Box::new(f(*input)?), limit, offset }
        }
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct { input: Box::new(f(*input)?) },
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            join_type,
            left_keys,
            right_keys,
        },
        LogicalPlan::NestedLoopJoin { left, right, predicate } => LogicalPlan::NestedLoopJoin {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            predicate,
        },
        LogicalPlan::CrossJoin { left, right } => {
            LogicalPlan::CrossJoin { left: Box::new(f(*left)?), right: Box::new(f(*right)?) }
        }
        LogicalPlan::Union { left, right } => {
            LogicalPlan::Union { left: Box::new(f(*left)?), right: Box::new(f(*right)?) }
        }
        LogicalPlan::Insert { entry, input } => {
            LogicalPlan::Insert { entry, input: Box::new(f(*input)?) }
        }
        LogicalPlan::Update { entry, input, columns } => {
            LogicalPlan::Update { entry, input: Box::new(f(*input)?), columns }
        }
        LogicalPlan::Delete { entry, input } => {
            LogicalPlan::Delete { entry, input: Box::new(f(*input)?) }
        }
        LogicalPlan::Explain { input } => LogicalPlan::Explain { input: Box::new(f(*input)?) },
        LogicalPlan::CopyTo { input, path, options } => {
            LogicalPlan::CopyTo { input: Box::new(f(*input)?), path, options }
        }
        LogicalPlan::CreateTable { name, columns, if_not_exists, as_select } => {
            LogicalPlan::CreateTable {
                name,
                columns,
                if_not_exists,
                as_select: match as_select {
                    Some(p) => Some(Box::new(f(*p)?)),
                    None => None,
                },
            }
        }
        leaf => leaf,
    })
}

/// Bottom-up plan rewrite: children first, then `f` on the rebuilt node.
pub(crate) fn map_plan(
    plan: LogicalPlan,
    f: &dyn Fn(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    let rewritten = map_children(plan, &|child| map_plan(child, f))?;
    f(rewritten)
}

/// Split a predicate on top-level ANDs.
pub(crate) fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(children) => {
            for c in children {
                split_conjuncts(c, out);
            }
        }
        other => out.push(other),
    }
}

/// Collect every input column index an expression references.
pub(crate) fn collect_columns(e: &Expr, out: &mut BTreeSet<usize>) {
    match e {
        Expr::ColumnRef { index, .. } => {
            out.insert(*index);
        }
        Expr::Constant { .. } => {}
        Expr::Compare { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| collect_columns(e, out)),
        Expr::Not(child) | Expr::Cast { child, .. } | Expr::IsNull { child, .. } => {
            collect_columns(child, out)
        }
        Expr::Arithmetic { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Case { branches, else_expr, .. } => {
            for (when, then) in branches {
                collect_columns(when, out);
                collect_columns(then, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        Expr::Function { args, .. } => args.iter().for_each(|e| collect_columns(e, out)),
        Expr::Like { child, pattern, .. } => {
            collect_columns(child, out);
            collect_columns(pattern, out);
        }
        Expr::InList { child, list, .. } => {
            collect_columns(child, out);
            list.iter().for_each(|e| collect_columns(e, out));
        }
    }
}

/// Rewrite column references through `map(old) = new`.
pub(crate) fn remap_columns(e: &mut Expr, map: &dyn Fn(usize) -> usize) {
    match e {
        Expr::ColumnRef { index, .. } => *index = map(*index),
        Expr::Constant { .. } => {}
        Expr::Compare { left, right, .. } => {
            remap_columns(left, map);
            remap_columns(right, map);
        }
        Expr::And(es) | Expr::Or(es) => es.iter_mut().for_each(|e| remap_columns(e, map)),
        Expr::Not(child) | Expr::Cast { child, .. } | Expr::IsNull { child, .. } => {
            remap_columns(child, map)
        }
        Expr::Arithmetic { left, right, .. } => {
            remap_columns(left, map);
            remap_columns(right, map);
        }
        Expr::Case { branches, else_expr, .. } => {
            for (when, then) in branches {
                remap_columns(when, map);
                remap_columns(then, map);
            }
            if let Some(e) = else_expr {
                remap_columns(e, map);
            }
        }
        Expr::Function { args, .. } => args.iter_mut().for_each(|e| remap_columns(e, map)),
        Expr::Like { child, pattern, .. } => {
            remap_columns(child, map);
            remap_columns(pattern, map);
        }
        Expr::InList { child, list, .. } => {
            remap_columns(child, map);
            list.iter_mut().for_each(|e| remap_columns(e, map));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use crate::parser::parse_statements;
    use eider_catalog::{Catalog, ColumnDefinition};
    use eider_vector::LogicalType;

    fn optimized(sql: &str) -> String {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            vec![
                ColumnDefinition::new("a", LogicalType::Integer),
                ColumnDefinition::new("b", LogicalType::Varchar),
            ],
            false,
        )
        .unwrap();
        let stmts = parse_statements(sql).unwrap();
        let plan = Binder::new(cat).bind_statement(&stmts[0]).unwrap();
        optimize(plan).unwrap().explain()
    }

    #[test]
    fn constant_folding_in_filters() {
        let text = optimized("SELECT a FROM t WHERE a > 2 + 3");
        // 2 + 3 folds to a constant, so the comparison becomes pushable.
        assert!(text.contains("SCAN t cols=[0] filters=1"), "{text}");
        assert!(!text.contains("FILTER"), "{text}");
    }

    #[test]
    fn simple_predicates_pushed_into_scan() {
        let text = optimized("SELECT a FROM t WHERE a = -999");
        assert!(text.contains("filters=1"), "{text}");
        let text = optimized("SELECT a FROM t WHERE 10 >= a AND a > 1");
        assert!(text.contains("filters=2"), "{text}");
        assert!(!text.contains("FILTER"), "{text}");
    }

    #[test]
    fn complex_predicates_stay_as_filters() {
        let text = optimized("SELECT a FROM t WHERE a + 1 > 5");
        assert!(text.contains("filters=0"), "{text}");
        assert!(text.contains("FILTER"), "{text}");
        // OR cannot be split.
        let text = optimized("SELECT a FROM t WHERE a = 1 OR a = 2");
        assert!(text.contains("filters=0"), "{text}");
        assert!(text.contains("FILTER"), "{text}");
    }

    #[test]
    fn mixed_conjuncts_split() {
        let text = optimized("SELECT a FROM t WHERE a > 5 AND length(b) > 2");
        assert!(text.contains("filters=1"), "{text}");
        assert!(text.contains("FILTER"), "{text}");
    }

    #[test]
    fn filters_map_output_to_physical_columns() {
        // Scan emits [a, b]; predicate on b (output index 1, physical 1).
        // Pruning then narrows the scan to b alone — physical column 1.
        let text = optimized("SELECT b FROM t WHERE b = 'x'");
        assert!(text.contains("SCAN t cols=[1] filters=1"), "{text}");
    }

    #[test]
    fn null_comparisons_not_pushed() {
        // a = NULL never matches anything, but pushing it as a zone-map
        // filter would be wrong — keep it in the filter node.
        let text = optimized("SELECT a FROM t WHERE a = NULL");
        assert!(text.contains("filters=0"), "{text}");
        assert!(text.contains("FILTER"), "{text}");
    }

    #[test]
    fn limit_sinks_through_projection() {
        let text = optimized("SELECT a + 1 FROM t LIMIT 3");
        let project = text.find("PROJECT").expect("projection");
        let limit = text.find("LIMIT").expect("limit");
        assert!(limit > project, "LIMIT should sit under PROJECT:\n{text}");
    }

    #[test]
    fn limit_stays_above_sort_for_topn() {
        // Top-N fusion in the physical planner needs LIMIT directly above
        // SORT; the pass must not push through the sort.
        let text = optimized("SELECT a FROM t ORDER BY a LIMIT 3");
        let limit = text.find("LIMIT").expect("limit");
        let sort = text.find("SORT").expect("sort");
        assert!(limit < sort, "LIMIT must stay above SORT:\n{text}");
    }
}
