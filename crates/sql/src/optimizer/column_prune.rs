//! Scan column pruning: a columnar engine should read only the columns a
//! query touches (§2). Runs last — every earlier pass can change which
//! columns are referenced.

use super::{collect_columns, map_plan, remap_columns};
use crate::plan::LogicalPlan;
use eider_txn::TableFilter;
use eider_vector::Result;
use std::collections::BTreeSet;

/// Pushed-filter columns must still be scanned; verify invariant in debug.
#[allow(dead_code)]
fn filter_columns_visible(filters: &[TableFilter], column_ids: &[usize]) -> bool {
    filters.iter().all(|f| column_ids.contains(&f.column))
}

/// Narrow the scan feeding `input` (directly, or through one residual
/// Filter) to the output positions in `used`, returning the rewritten
/// input and, when anything was dropped, the position translation the
/// consumer must apply to its own expressions.
///
/// `used` positions address the scan's *output*; scan-level
/// [`TableFilter`]s address physical ids and keep working even when their
/// column is no longer output. A consumer using no columns at all (bare
/// `count(*)`) still scans one column — chunks derive their row count
/// from their columns — so the cheapest one is kept.
fn narrow_scan(input: LogicalPlan, mut used: BTreeSet<usize>) -> (LogicalPlan, Option<Vec<usize>>) {
    match input {
        LogicalPlan::Filter { input: inner, predicate } => {
            collect_columns(&predicate, &mut used);
            let (inner, map) = narrow_scan(*inner, used);
            let mut predicate = predicate;
            if let Some(positions) = &map {
                remap_columns(&mut predicate, &|old| {
                    positions.iter().position(|&p| p == old).expect("collected above")
                });
            }
            (LogicalPlan::Filter { input: Box::new(inner), predicate }, map)
        }
        LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, names, types } => {
            if used.is_empty() {
                // Keep the narrowest column so chunks still carry counts.
                let cheapest = types
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| match t {
                        eider_vector::LogicalType::Varchar => usize::MAX,
                        t => t.physical_width(),
                    })
                    .map(|(i, _)| i);
                used.extend(cheapest);
            }
            if used.len() == column_ids.len() || emit_row_ids {
                let scan = LogicalPlan::TableScan {
                    entry,
                    column_ids,
                    filters,
                    emit_row_ids,
                    names,
                    types,
                };
                return (scan, None);
            }
            let positions: Vec<usize> = used.into_iter().collect();
            let scan = LogicalPlan::TableScan {
                entry,
                column_ids: positions.iter().map(|&p| column_ids[p]).collect(),
                filters,
                emit_row_ids,
                names: positions.iter().map(|&p| names[p].clone()).collect(),
                types: positions.iter().map(|&p| types[p]).collect(),
            };
            (scan, Some(positions))
        }
        LogicalPlan::ExternalScan { source, column_ids, filters, names, types } => {
            if used.is_empty() {
                let cheapest = types
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| match t {
                        eider_vector::LogicalType::Varchar => usize::MAX,
                        t => t.physical_width(),
                    })
                    .map(|(i, _)| i);
                used.extend(cheapest);
            }
            if used.len() == column_ids.len() {
                let scan = LogicalPlan::ExternalScan { source, column_ids, filters, names, types };
                return (scan, None);
            }
            let positions: Vec<usize> = used.into_iter().collect();
            let scan = LogicalPlan::ExternalScan {
                source,
                column_ids: positions.iter().map(|&p| column_ids[p]).collect(),
                filters,
                names: positions.iter().map(|&p| names[p].clone()).collect(),
                types: positions.iter().map(|&p| types[p]).collect(),
            };
            (scan, Some(positions))
        }
        other => (other, None),
    }
}

/// Scans read only the columns their consumer touches. Applied where the
/// consumer's column set is closed over one node — a Projection or an
/// Aggregate directly above a scan (residual Filters in between keep
/// their columns too). Join inputs are left alone: their parents address
/// the concatenated child outputs positionally.
pub(super) fn prune_scan_columns(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Projection { input, mut exprs, names } => {
                let mut used = BTreeSet::new();
                exprs.iter().for_each(|e| collect_columns(e, &mut used));
                let (input, map) = narrow_scan(*input, used);
                let input = Box::new(input);
                if let Some(positions) = &map {
                    for e in &mut exprs {
                        remap_columns(e, &|old| {
                            positions.iter().position(|&p| p == old).expect("collected above")
                        });
                    }
                }
                LogicalPlan::Projection { input, exprs, names }
            }
            LogicalPlan::Aggregate { input, mut groups, mut aggs, names } => {
                let mut used = BTreeSet::new();
                groups.iter().for_each(|e| collect_columns(e, &mut used));
                aggs.iter()
                    .filter_map(|a| a.arg.as_ref())
                    .for_each(|e| collect_columns(e, &mut used));
                let (input, map) = narrow_scan(*input, used);
                let input = Box::new(input);
                if let Some(positions) = &map {
                    let remap = |old: usize| -> usize {
                        positions.iter().position(|&p| p == old).expect("collected above")
                    };
                    groups.iter_mut().for_each(|e| remap_columns(e, &remap));
                    aggs.iter_mut()
                        .filter_map(|a| a.arg.as_mut())
                        .for_each(|e| remap_columns(e, &remap));
                }
                LogicalPlan::Aggregate { input, groups, aggs, names }
            }
            other => other,
        })
    })
}
