//! Limit pushdown: sink `LIMIT` through row-preserving 1:1 operators so
//! upstream nodes stop producing sooner.
//!
//! Only projections are transparent — they emit exactly one output row
//! per input row, in order. `LIMIT` must *not* sink through `SORT` (the
//! sort needs every row, and the physical planner fuses `LIMIT` directly
//! above `SORT` into Top-N), nor through filters/joins/aggregates (they
//! change row counts). Adjacent limits merge.

use super::map_plan;
use crate::plan::LogicalPlan;
use eider_vector::Result;

pub(super) fn push_limits(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Limit { input, limit, offset } => match *input {
                LogicalPlan::Projection { input: inner, exprs, names } => {
                    // Map again so a newly created LIMIT-over-LIMIT pair
                    // (or LIMIT over another projection) keeps sinking.
                    let pushed = push_limits(LogicalPlan::Limit { input: inner, limit, offset })?;
                    LogicalPlan::Projection { input: Box::new(pushed), exprs, names }
                }
                LogicalPlan::Limit { input: inner, limit: l2, offset: o2 } => {
                    // LIMIT a OFFSET b over LIMIT c OFFSET d: the outer
                    // window applied to the inner one.
                    let avail = l2.saturating_sub(offset);
                    LogicalPlan::Limit {
                        input: inner,
                        limit: limit.min(avail),
                        offset: o2 + offset,
                    }
                }
                other => LogicalPlan::Limit { input: Box::new(other), limit, offset },
            },
            other => other,
        })
    })
}
