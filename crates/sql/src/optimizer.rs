//! Logical-plan rewrites: constant folding, filter splitting and pushdown
//! into table scans (where the zone maps of §6 can skip row groups), and
//! scan column pruning (a columnar engine should read only the columns a
//! query touches — §2).

use crate::plan::LogicalPlan;
use eider_exec::expression::Expr;
use eider_txn::{CmpOp, TableFilter};
use eider_vector::Result;
use std::collections::BTreeSet;

/// Run all rewrite passes.
pub fn optimize(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = fold_constants(plan)?;
    let plan = push_filters(plan)?;
    let plan = prune_scan_columns(plan)?;
    Ok(plan)
}

// ---------------- constant folding ----------------

fn fold_expr(e: Expr) -> Result<Expr> {
    // Fold bottom-up: if the whole subtree is input-free, evaluate it once.
    if e.is_constant() {
        if let Ok(v) = e.evaluate_row(&[]) {
            // Preserve the static type: fold through a typed constant.
            let ty = e.result_type();
            let v = match v.cast_to(ty) {
                Ok(v) => v,
                Err(_) => v,
            };
            return Ok(Expr::Constant { value: v, ty });
        }
        return Ok(e);
    }
    Ok(match e {
        Expr::Compare { op, left, right } => Expr::Compare {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
        },
        Expr::And(c) => Expr::And(c.into_iter().map(fold_expr).collect::<Result<_>>()?),
        Expr::Or(c) => Expr::Or(c.into_iter().map(fold_expr).collect::<Result<_>>()?),
        Expr::Not(c) => Expr::Not(Box::new(fold_expr(*c)?)),
        Expr::Arithmetic { op, left, right, ty } => Expr::Arithmetic {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
            ty,
        },
        Expr::Cast { child, to } => Expr::Cast { child: Box::new(fold_expr(*child)?), to },
        Expr::IsNull { child, negated } => {
            Expr::IsNull { child: Box::new(fold_expr(*child)?), negated }
        }
        Expr::Case { branches, else_expr, ty } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(c, v)| Ok::<_, eider_vector::EiderError>((fold_expr(c)?, fold_expr(v)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(fold_expr(*e)?)),
                None => None,
            },
            ty,
        },
        Expr::Function { func, args, ty } => Expr::Function {
            func,
            args: args.into_iter().map(fold_expr).collect::<Result<_>>()?,
            ty,
        },
        Expr::Like { child, pattern, negated } => Expr::Like {
            child: Box::new(fold_expr(*child)?),
            pattern: Box::new(fold_expr(*pattern)?),
            negated,
        },
        Expr::InList { child, list, negated } => Expr::InList {
            child: Box::new(fold_expr(*child)?),
            list: list.into_iter().map(fold_expr).collect::<Result<_>>()?,
            negated,
        },
        other => other,
    })
}

fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Filter { input, predicate } => {
                LogicalPlan::Filter { input, predicate: fold_expr(predicate)? }
            }
            LogicalPlan::Projection { input, exprs, names } => LogicalPlan::Projection {
                input,
                exprs: exprs.into_iter().map(fold_expr).collect::<Result<_>>()?,
                names,
            },
            other => other,
        })
    })
}

// ---------------- filter pushdown ----------------

/// Split a predicate on top-level ANDs.
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(children) => {
            for c in children {
                split_conjuncts(c, out);
            }
        }
        other => out.push(other),
    }
}

/// Try to express a conjunct as a pushable `column <op> constant` filter
/// against scan output column indexes.
fn as_table_filter(e: &Expr) -> Option<(usize, CmpOp, eider_vector::Value)> {
    let Expr::Compare { op, left, right } = e else {
        return None;
    };
    // Widening numeric casts the binder inserted for type coercion do not
    // block pushdown: `TableFilter::matches` compares with numeric
    // promotion, so `CAST(int_col AS BIGINT) > 5` pushes as `int_col > 5`.
    // Temporal casts (DATE -> TIMESTAMP) change the scale and must stay.
    fn as_column(e: &Expr) -> Option<usize> {
        match e {
            Expr::ColumnRef { index, .. } => Some(*index),
            Expr::Cast { child, to } if to.is_numeric() => match &**child {
                Expr::ColumnRef { index, ty } if ty.is_numeric() => Some(*index),
                _ => None,
            },
            _ => None,
        }
    }
    match (&**left, &**right) {
        (l, Expr::Constant { value, .. }) if !value.is_null() => {
            as_column(l).map(|idx| (idx, *op, value.clone()))
        }
        (Expr::Constant { value, .. }, r) if !value.is_null() => {
            as_column(r).map(|idx| (idx, op.flip(), value.clone()))
        }
        _ => None,
    }
}

fn push_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Filter { input, predicate } => {
                match *input {
                    LogicalPlan::TableScan {
                        entry,
                        column_ids,
                        mut filters,
                        emit_row_ids,
                        names,
                        types,
                    } => {
                        let mut conjuncts = Vec::new();
                        split_conjuncts(predicate, &mut conjuncts);
                        let mut residual = Vec::new();
                        for c in conjuncts {
                            match as_table_filter(&c) {
                                // Scan filters address *physical* column
                                // ids; scans emit columns in column_ids
                                // order, so map through it.
                                Some((out_idx, op, value)) if out_idx < column_ids.len() => {
                                    filters.push(TableFilter::new(column_ids[out_idx], op, value));
                                }
                                _ => residual.push(c),
                            }
                        }
                        let scan = LogicalPlan::TableScan {
                            entry,
                            column_ids,
                            filters,
                            emit_row_ids,
                            names,
                            types,
                        };
                        if residual.is_empty() {
                            scan
                        } else {
                            let predicate = if residual.len() == 1 {
                                residual.into_iter().next().expect("one")
                            } else {
                                Expr::And(residual)
                            };
                            LogicalPlan::Filter { input: Box::new(scan), predicate }
                        }
                    }
                    // External scans never evaluate filters — formats
                    // only expose coarse min/max metadata. Pushable
                    // conjuncts are *copied* into the scan as pruning
                    // hints (skip whole partitions) while the Filter
                    // node keeps the full predicate for exactness.
                    LogicalPlan::ExternalScan { source, column_ids, mut filters, names, types } => {
                        let mut conjuncts = Vec::new();
                        split_conjuncts(predicate, &mut conjuncts);
                        for c in &conjuncts {
                            if let Some((out_idx, op, value)) = as_table_filter(c) {
                                if out_idx < column_ids.len() {
                                    filters.push(TableFilter::new(column_ids[out_idx], op, value));
                                }
                            }
                        }
                        let scan =
                            LogicalPlan::ExternalScan { source, column_ids, filters, names, types };
                        let predicate = if conjuncts.len() == 1 {
                            conjuncts.into_iter().next().expect("one")
                        } else {
                            Expr::And(conjuncts)
                        };
                        LogicalPlan::Filter { input: Box::new(scan), predicate }
                    }
                    other => LogicalPlan::Filter { input: Box::new(other), predicate },
                }
            }
            other => other,
        })
    })
}

/// Pushed-filter columns must still be scanned; verify invariant in debug.
#[allow(dead_code)]
fn filter_columns_visible(filters: &[TableFilter], column_ids: &[usize]) -> bool {
    filters.iter().all(|f| column_ids.contains(&f.column))
}

/// Bottom-up plan rewrite.
fn map_plan(
    plan: LogicalPlan,
    f: &dyn Fn(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    let rewritten = match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(map_plan(*input, f)?), predicate }
        }
        LogicalPlan::Projection { input, exprs, names } => {
            LogicalPlan::Projection { input: Box::new(map_plan(*input, f)?), exprs, names }
        }
        LogicalPlan::Aggregate { input, groups, aggs, names } => {
            LogicalPlan::Aggregate { input: Box::new(map_plan(*input, f)?), groups, aggs, names }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(map_plan(*input, f)?), keys }
        }
        LogicalPlan::Limit { input, limit, offset } => {
            LogicalPlan::Limit { input: Box::new(map_plan(*input, f)?), limit, offset }
        }
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(map_plan(*input, f)?) }
        }
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys } => LogicalPlan::Join {
            left: Box::new(map_plan(*left, f)?),
            right: Box::new(map_plan(*right, f)?),
            join_type,
            left_keys,
            right_keys,
        },
        LogicalPlan::NestedLoopJoin { left, right, predicate } => LogicalPlan::NestedLoopJoin {
            left: Box::new(map_plan(*left, f)?),
            right: Box::new(map_plan(*right, f)?),
            predicate,
        },
        LogicalPlan::CrossJoin { left, right } => LogicalPlan::CrossJoin {
            left: Box::new(map_plan(*left, f)?),
            right: Box::new(map_plan(*right, f)?),
        },
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(map_plan(*left, f)?),
            right: Box::new(map_plan(*right, f)?),
        },
        LogicalPlan::Insert { entry, input } => {
            LogicalPlan::Insert { entry, input: Box::new(map_plan(*input, f)?) }
        }
        LogicalPlan::Update { entry, input, columns } => {
            LogicalPlan::Update { entry, input: Box::new(map_plan(*input, f)?), columns }
        }
        LogicalPlan::Delete { entry, input } => {
            LogicalPlan::Delete { entry, input: Box::new(map_plan(*input, f)?) }
        }
        LogicalPlan::Explain { input } => {
            LogicalPlan::Explain { input: Box::new(map_plan(*input, f)?) }
        }
        LogicalPlan::CopyTo { input, path, options } => {
            LogicalPlan::CopyTo { input: Box::new(map_plan(*input, f)?), path, options }
        }
        LogicalPlan::CreateTable { name, columns, if_not_exists, as_select } => {
            LogicalPlan::CreateTable {
                name,
                columns,
                if_not_exists,
                as_select: match as_select {
                    Some(p) => Some(Box::new(map_plan(*p, f)?)),
                    None => None,
                },
            }
        }
        leaf => leaf,
    };
    f(rewritten)
}

// ---------------- scan column pruning ----------------

/// Collect every input column index an expression references.
fn collect_columns(e: &Expr, out: &mut BTreeSet<usize>) {
    match e {
        Expr::ColumnRef { index, .. } => {
            out.insert(*index);
        }
        Expr::Constant { .. } => {}
        Expr::Compare { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| collect_columns(e, out)),
        Expr::Not(child) | Expr::Cast { child, .. } | Expr::IsNull { child, .. } => {
            collect_columns(child, out)
        }
        Expr::Arithmetic { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Case { branches, else_expr, .. } => {
            for (when, then) in branches {
                collect_columns(when, out);
                collect_columns(then, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        Expr::Function { args, .. } => args.iter().for_each(|e| collect_columns(e, out)),
        Expr::Like { child, pattern, .. } => {
            collect_columns(child, out);
            collect_columns(pattern, out);
        }
        Expr::InList { child, list, .. } => {
            collect_columns(child, out);
            list.iter().for_each(|e| collect_columns(e, out));
        }
    }
}

/// Rewrite column references through `map[old_output_position] = new`.
fn remap_columns(e: &mut Expr, map: &dyn Fn(usize) -> usize) {
    match e {
        Expr::ColumnRef { index, .. } => *index = map(*index),
        Expr::Constant { .. } => {}
        Expr::Compare { left, right, .. } => {
            remap_columns(left, map);
            remap_columns(right, map);
        }
        Expr::And(es) | Expr::Or(es) => es.iter_mut().for_each(|e| remap_columns(e, map)),
        Expr::Not(child) | Expr::Cast { child, .. } | Expr::IsNull { child, .. } => {
            remap_columns(child, map)
        }
        Expr::Arithmetic { left, right, .. } => {
            remap_columns(left, map);
            remap_columns(right, map);
        }
        Expr::Case { branches, else_expr, .. } => {
            for (when, then) in branches {
                remap_columns(when, map);
                remap_columns(then, map);
            }
            if let Some(e) = else_expr {
                remap_columns(e, map);
            }
        }
        Expr::Function { args, .. } => args.iter_mut().for_each(|e| remap_columns(e, map)),
        Expr::Like { child, pattern, .. } => {
            remap_columns(child, map);
            remap_columns(pattern, map);
        }
        Expr::InList { child, list, .. } => {
            remap_columns(child, map);
            list.iter_mut().for_each(|e| remap_columns(e, map));
        }
    }
}

/// Narrow the scan feeding `input` (directly, or through one residual
/// Filter) to the output positions in `used`, returning the rewritten
/// input and, when anything was dropped, the position translation the
/// consumer must apply to its own expressions.
///
/// `used` positions address the scan's *output*; scan-level
/// [`TableFilter`]s address physical ids and keep working even when their
/// column is no longer output. A consumer using no columns at all (bare
/// `count(*)`) still scans one column — chunks derive their row count
/// from their columns — so the cheapest one is kept.
fn narrow_scan(input: LogicalPlan, mut used: BTreeSet<usize>) -> (LogicalPlan, Option<Vec<usize>>) {
    match input {
        LogicalPlan::Filter { input: inner, predicate } => {
            collect_columns(&predicate, &mut used);
            let (inner, map) = narrow_scan(*inner, used);
            let mut predicate = predicate;
            if let Some(positions) = &map {
                remap_columns(&mut predicate, &|old| {
                    positions.iter().position(|&p| p == old).expect("collected above")
                });
            }
            (LogicalPlan::Filter { input: Box::new(inner), predicate }, map)
        }
        LogicalPlan::TableScan { entry, column_ids, filters, emit_row_ids, names, types } => {
            if used.is_empty() {
                // Keep the narrowest column so chunks still carry counts.
                let cheapest = types
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| match t {
                        eider_vector::LogicalType::Varchar => usize::MAX,
                        t => t.physical_width(),
                    })
                    .map(|(i, _)| i);
                used.extend(cheapest);
            }
            if used.len() == column_ids.len() || emit_row_ids {
                let scan = LogicalPlan::TableScan {
                    entry,
                    column_ids,
                    filters,
                    emit_row_ids,
                    names,
                    types,
                };
                return (scan, None);
            }
            let positions: Vec<usize> = used.into_iter().collect();
            let scan = LogicalPlan::TableScan {
                entry,
                column_ids: positions.iter().map(|&p| column_ids[p]).collect(),
                filters,
                emit_row_ids,
                names: positions.iter().map(|&p| names[p].clone()).collect(),
                types: positions.iter().map(|&p| types[p]).collect(),
            };
            (scan, Some(positions))
        }
        LogicalPlan::ExternalScan { source, column_ids, filters, names, types } => {
            if used.is_empty() {
                let cheapest = types
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| match t {
                        eider_vector::LogicalType::Varchar => usize::MAX,
                        t => t.physical_width(),
                    })
                    .map(|(i, _)| i);
                used.extend(cheapest);
            }
            if used.len() == column_ids.len() {
                let scan = LogicalPlan::ExternalScan { source, column_ids, filters, names, types };
                return (scan, None);
            }
            let positions: Vec<usize> = used.into_iter().collect();
            let scan = LogicalPlan::ExternalScan {
                source,
                column_ids: positions.iter().map(|&p| column_ids[p]).collect(),
                filters,
                names: positions.iter().map(|&p| names[p].clone()).collect(),
                types: positions.iter().map(|&p| types[p]).collect(),
            };
            (scan, Some(positions))
        }
        other => (other, None),
    }
}

/// Scans read only the columns their consumer touches. Applied where the
/// consumer's column set is closed over one node — a Projection or an
/// Aggregate directly above a scan (residual Filters in between keep
/// their columns too). Join inputs are left alone: their parents address
/// the concatenated child outputs positionally.
fn prune_scan_columns(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan(plan, &|p| {
        Ok(match p {
            LogicalPlan::Projection { input, mut exprs, names } => {
                let mut used = BTreeSet::new();
                exprs.iter().for_each(|e| collect_columns(e, &mut used));
                let (input, map) = narrow_scan(*input, used);
                let input = Box::new(input);
                if let Some(positions) = &map {
                    for e in &mut exprs {
                        remap_columns(e, &|old| {
                            positions.iter().position(|&p| p == old).expect("collected above")
                        });
                    }
                }
                LogicalPlan::Projection { input, exprs, names }
            }
            LogicalPlan::Aggregate { input, mut groups, mut aggs, names } => {
                let mut used = BTreeSet::new();
                groups.iter().for_each(|e| collect_columns(e, &mut used));
                aggs.iter()
                    .filter_map(|a| a.arg.as_ref())
                    .for_each(|e| collect_columns(e, &mut used));
                let (input, map) = narrow_scan(*input, used);
                let input = Box::new(input);
                if let Some(positions) = &map {
                    let remap = |old: usize| -> usize {
                        positions.iter().position(|&p| p == old).expect("collected above")
                    };
                    groups.iter_mut().for_each(|e| remap_columns(e, &remap));
                    aggs.iter_mut()
                        .filter_map(|a| a.arg.as_mut())
                        .for_each(|e| remap_columns(e, &remap));
                }
                LogicalPlan::Aggregate { input, groups, aggs, names }
            }
            other => other,
        })
    })
}

/// Used by tests and EXPLAIN consumers: count scan filters in a plan.
pub fn count_pushed_filters(plan: &LogicalPlan) -> usize {
    let own = match plan {
        LogicalPlan::TableScan { filters, .. } => filters.len(),
        _ => 0,
    };
    own + plan.children().iter().map(|c| count_pushed_filters(c)).sum::<usize>()
}

/// Count residual Filter nodes.
pub fn count_filter_nodes(plan: &LogicalPlan) -> usize {
    let own = usize::from(matches!(plan, LogicalPlan::Filter { .. }));
    own + plan.children().iter().map(|c| count_filter_nodes(c)).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use crate::parser::parse_statements;
    use eider_catalog::{Catalog, ColumnDefinition};
    use eider_vector::{LogicalType, Value};

    fn optimized(sql: &str) -> LogicalPlan {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            vec![
                ColumnDefinition::new("a", LogicalType::Integer),
                ColumnDefinition::new("b", LogicalType::Varchar),
            ],
            false,
        )
        .unwrap();
        let stmts = parse_statements(sql).unwrap();
        let plan = Binder::new(cat).bind_statement(&stmts[0]).unwrap();
        optimize(plan).unwrap()
    }

    #[test]
    fn constant_folding_in_filters() {
        let plan = optimized("SELECT a FROM t WHERE a > 2 + 3");
        // 2 + 3 folds to a constant, so the comparison becomes pushable.
        assert_eq!(count_pushed_filters(&plan), 1);
        assert_eq!(count_filter_nodes(&plan), 0);
    }

    #[test]
    fn simple_predicates_pushed_into_scan() {
        let plan = optimized("SELECT a FROM t WHERE a = -999");
        assert_eq!(count_pushed_filters(&plan), 1);
        let plan = optimized("SELECT a FROM t WHERE 10 >= a AND a > 1");
        assert_eq!(count_pushed_filters(&plan), 2);
        assert_eq!(count_filter_nodes(&plan), 0);
    }

    #[test]
    fn complex_predicates_stay_as_filters() {
        let plan = optimized("SELECT a FROM t WHERE a + 1 > 5");
        assert_eq!(count_pushed_filters(&plan), 0);
        assert_eq!(count_filter_nodes(&plan), 1);
        // OR cannot be split.
        let plan = optimized("SELECT a FROM t WHERE a = 1 OR a = 2");
        assert_eq!(count_pushed_filters(&plan), 0);
        assert_eq!(count_filter_nodes(&plan), 1);
    }

    #[test]
    fn mixed_conjuncts_split() {
        let plan = optimized("SELECT a FROM t WHERE a > 5 AND length(b) > 2");
        assert_eq!(count_pushed_filters(&plan), 1);
        assert_eq!(count_filter_nodes(&plan), 1);
    }

    #[test]
    fn filters_map_output_to_physical_columns() {
        // Scan emits [a, b]; predicate on b (output index 1, physical 1).
        let plan = optimized("SELECT b FROM t WHERE b = 'x'");
        fn find_scan_filter(p: &LogicalPlan) -> Option<(usize, Value)> {
            if let LogicalPlan::TableScan { filters, .. } = p {
                if let Some(f) = filters.first() {
                    return Some((f.column, f.value.clone()));
                }
            }
            p.children().iter().find_map(|c| find_scan_filter(c))
        }
        let (col, val) = find_scan_filter(&plan).expect("pushed filter");
        assert_eq!(col, 1);
        assert_eq!(val, Value::Varchar("x".into()));
    }

    #[test]
    fn null_comparisons_not_pushed() {
        // a = NULL never matches anything, but pushing it as a zone-map
        // filter would be wrong — keep it in the filter node.
        let plan = optimized("SELECT a FROM t WHERE a = NULL");
        assert_eq!(count_pushed_filters(&plan), 0);
    }
}
