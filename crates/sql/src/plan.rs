//! Bound logical plans: the binder's output, the optimizer's substrate and
//! the input of eider-core's physical planner.

use eider_catalog::{ColumnDefinition, TableEntry};
use eider_etl::TableSource;
use eider_exec::expression::Expr;
use eider_exec::ops::agg::AggExpr;
use eider_exec::ops::join::JoinType;
use eider_exec::ops::sort::SortKey;
use eider_txn::TableFilter;
use eider_vector::{LogicalType, Value};
use std::sync::Arc;

/// CSV options carried through to the ETL layer.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    pub header: bool,
    pub delimiter: char,
    pub null_string: String,
}

/// A bound, typed logical plan node.
pub enum LogicalPlan {
    TableScan {
        entry: Arc<TableEntry>,
        /// Physical column indexes to read.
        column_ids: Vec<usize>,
        /// Pushed-down filters (zone-map eligible).
        filters: Vec<TableFilter>,
        emit_row_ids: bool,
        names: Vec<String>,
        types: Vec<LogicalType>,
    },
    /// Scan of an external [`TableSource`] (`read_csv`, `read_arrow`).
    /// `filters` are pruning hints only — partitions whose metadata
    /// excludes them are skipped, but rows are never filtered here; exact
    /// evaluation stays in the enclosing `Filter`.
    ExternalScan {
        source: Arc<dyn TableSource>,
        /// Full-schema column positions to emit, in order.
        column_ids: Vec<usize>,
        /// Pruning-only filters over full-schema column positions.
        filters: Vec<TableFilter>,
        names: Vec<String>,
        types: Vec<LogicalType>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Projection {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        names: Vec<String>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        groups: Vec<Expr>,
        aggs: Vec<AggExpr>,
        names: Vec<String>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<LogicalPlan>,
        limit: usize,
        offset: usize,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    /// Equi-join; the physical planner picks hash vs out-of-core merge
    /// based on the cooperation policy (§4).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        join_type: JoinType,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    },
    NestedLoopJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        predicate: Expr,
    },
    CrossJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    Union {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Constant rows (INSERT ... VALUES); expressions are input-free.
    Values {
        rows: Vec<Vec<Expr>>,
        types: Vec<LogicalType>,
        names: Vec<String>,
    },
    /// One row, no meaningful columns (`SELECT 1`).
    SingleRow,
    Insert {
        entry: Arc<TableEntry>,
        input: Box<LogicalPlan>,
    },
    Update {
        entry: Arc<TableEntry>,
        input: Box<LogicalPlan>,
        /// Physical indexes of assigned columns (child emits their new
        /// values in this order, then the row id).
        columns: Vec<usize>,
    },
    Delete {
        entry: Arc<TableEntry>,
        input: Box<LogicalPlan>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDefinition>,
        if_not_exists: bool,
        as_select: Option<Box<LogicalPlan>>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    CreateView {
        name: String,
        sql: String,
        or_replace: bool,
    },
    DropView {
        name: String,
        if_exists: bool,
    },
    Begin,
    Commit,
    Rollback,
    Checkpoint,
    Pragma {
        name: String,
        value: Option<Value>,
    },
    Explain {
        input: Box<LogicalPlan>,
    },
    ShowTables,
    CopyFrom {
        entry: Arc<TableEntry>,
        path: String,
        options: CsvOptions,
    },
    CopyTo {
        input: Box<LogicalPlan>,
        path: String,
        options: CsvOptions,
    },
}

impl std::fmt::Debug for LogicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.explain().trim_end())
    }
}

impl LogicalPlan {
    /// Output column types.
    pub fn output_types(&self) -> Vec<LogicalType> {
        match self {
            LogicalPlan::TableScan { types, .. } | LogicalPlan::ExternalScan { types, .. } => {
                types.clone()
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.output_types(),
            LogicalPlan::Projection { exprs, .. } => exprs.iter().map(Expr::result_type).collect(),
            LogicalPlan::Aggregate { groups, aggs, .. } => {
                let mut t: Vec<LogicalType> = groups.iter().map(Expr::result_type).collect();
                t.extend(aggs.iter().map(AggExpr::result_type));
                t
            }
            LogicalPlan::Join { left, right, join_type, .. } => {
                let mut t = left.output_types();
                if matches!(join_type, JoinType::Inner | JoinType::Left) {
                    t.extend(right.output_types());
                }
                t
            }
            LogicalPlan::NestedLoopJoin { left, right, .. }
            | LogicalPlan::CrossJoin { left, right } => {
                let mut t = left.output_types();
                t.extend(right.output_types());
                t
            }
            LogicalPlan::Union { left, .. } => left.output_types(),
            LogicalPlan::Values { types, .. } => types.clone(),
            LogicalPlan::SingleRow => vec![LogicalType::Boolean],
            LogicalPlan::Insert { .. }
            | LogicalPlan::Update { .. }
            | LogicalPlan::Delete { .. }
            | LogicalPlan::CopyFrom { .. }
            | LogicalPlan::CopyTo { .. } => vec![LogicalType::BigInt],
            LogicalPlan::Explain { .. } | LogicalPlan::ShowTables => vec![LogicalType::Varchar],
            _ => Vec::new(),
        }
    }

    /// Output column names.
    pub fn output_names(&self) -> Vec<String> {
        match self {
            LogicalPlan::TableScan { names, .. } | LogicalPlan::ExternalScan { names, .. } => {
                names.clone()
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.output_names(),
            LogicalPlan::Projection { names, .. } | LogicalPlan::Aggregate { names, .. } => {
                names.clone()
            }
            LogicalPlan::Join { left, right, join_type, .. } => {
                let mut n = left.output_names();
                if matches!(join_type, JoinType::Inner | JoinType::Left) {
                    n.extend(right.output_names());
                }
                n
            }
            LogicalPlan::NestedLoopJoin { left, right, .. }
            | LogicalPlan::CrossJoin { left, right } => {
                let mut n = left.output_names();
                n.extend(right.output_names());
                n
            }
            LogicalPlan::Union { left, .. } => left.output_names(),
            LogicalPlan::Values { names, .. } => names.clone(),
            LogicalPlan::SingleRow => vec!["dummy".into()],
            LogicalPlan::Insert { .. }
            | LogicalPlan::Update { .. }
            | LogicalPlan::Delete { .. }
            | LogicalPlan::CopyFrom { .. }
            | LogicalPlan::CopyTo { .. } => vec!["Count".into()],
            LogicalPlan::Explain { .. } => vec!["explain".into()],
            LogicalPlan::ShowTables => vec!["name".into()],
            _ => Vec::new(),
        }
    }

    /// Human-readable tree for EXPLAIN.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let line: String = match self {
            LogicalPlan::TableScan { entry, column_ids, filters, .. } => {
                format!("SCAN {} cols={:?} filters={}", entry.name, column_ids, filters.len())
            }
            LogicalPlan::ExternalScan { source, column_ids, filters, .. } => {
                format!(
                    "EXTERNAL_SCAN {} cols={:?} prune_filters={}",
                    source.name(),
                    column_ids,
                    filters.len()
                )
            }
            LogicalPlan::Filter { .. } => "FILTER".into(),
            LogicalPlan::Projection { names, .. } => format!("PROJECT {names:?}"),
            LogicalPlan::Aggregate { groups, aggs, .. } => {
                format!("AGGREGATE groups={} aggs={}", groups.len(), aggs.len())
            }
            LogicalPlan::Sort { keys, .. } => format!("SORT keys={}", keys.len()),
            LogicalPlan::Limit { limit, offset, .. } => format!("LIMIT {limit} OFFSET {offset}"),
            LogicalPlan::Distinct { .. } => "DISTINCT".into(),
            LogicalPlan::Join { join_type, left_keys, .. } => {
                // The physical hash join always builds over its right
                // child; the optimizer's join reorderer places the
                // smaller estimated input there.
                format!("JOIN {join_type:?} keys={} build=right", left_keys.len())
            }
            LogicalPlan::NestedLoopJoin { .. } => "NESTED_LOOP_JOIN".into(),
            LogicalPlan::CrossJoin { .. } => "CROSS_JOIN build=right".into(),
            LogicalPlan::Union { .. } => "UNION_ALL".into(),
            LogicalPlan::Values { rows, .. } => format!("VALUES rows={}", rows.len()),
            LogicalPlan::SingleRow => "SINGLE_ROW".into(),
            LogicalPlan::Insert { entry, .. } => format!("INSERT INTO {}", entry.name),
            LogicalPlan::Update { entry, columns, .. } => {
                format!("UPDATE {} columns={:?}", entry.name, columns)
            }
            LogicalPlan::Delete { entry, .. } => format!("DELETE FROM {}", entry.name),
            LogicalPlan::CreateTable { name, .. } => format!("CREATE TABLE {name}"),
            LogicalPlan::DropTable { name, .. } => format!("DROP TABLE {name}"),
            LogicalPlan::CreateView { name, .. } => format!("CREATE VIEW {name}"),
            LogicalPlan::DropView { name, .. } => format!("DROP VIEW {name}"),
            LogicalPlan::Begin => "BEGIN".into(),
            LogicalPlan::Commit => "COMMIT".into(),
            LogicalPlan::Rollback => "ROLLBACK".into(),
            LogicalPlan::Checkpoint => "CHECKPOINT".into(),
            LogicalPlan::Pragma { name, .. } => format!("PRAGMA {name}"),
            LogicalPlan::Explain { .. } => "EXPLAIN".into(),
            LogicalPlan::ShowTables => "SHOW TABLES".into(),
            LogicalPlan::CopyFrom { entry, path, .. } => {
                format!("COPY {} FROM '{}'", entry.name, path)
            }
            LogicalPlan::CopyTo { path, .. } => format!("COPY TO '{}'", path),
        };
        out.push_str(&pad);
        out.push_str(&line);
        if self.has_cardinality() {
            out.push_str(&format!(" est={}", crate::optimizer::cardinality::estimate(self)));
        }
        out.push('\n');
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }

    /// Nodes whose EXPLAIN line carries an estimated cardinality — the
    /// dataflow operators, not DDL/utility statements.
    fn has_cardinality(&self) -> bool {
        matches!(
            self,
            LogicalPlan::TableScan { .. }
                | LogicalPlan::ExternalScan { .. }
                | LogicalPlan::Filter { .. }
                | LogicalPlan::Projection { .. }
                | LogicalPlan::Aggregate { .. }
                | LogicalPlan::Sort { .. }
                | LogicalPlan::Limit { .. }
                | LogicalPlan::Distinct { .. }
                | LogicalPlan::Join { .. }
                | LogicalPlan::NestedLoopJoin { .. }
                | LogicalPlan::CrossJoin { .. }
                | LogicalPlan::Union { .. }
                | LogicalPlan::Values { .. }
        )
    }

    /// Immediate child plans.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Projection { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Insert { input, .. }
            | LogicalPlan::Update { input, .. }
            | LogicalPlan::Delete { input, .. }
            | LogicalPlan::Explain { input }
            | LogicalPlan::CopyTo { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::NestedLoopJoin { left, right, .. }
            | LogicalPlan::CrossJoin { left, right }
            | LogicalPlan::Union { left, right } => vec![left, right],
            LogicalPlan::CreateTable { as_select: Some(p), .. } => vec![p],
            _ => Vec::new(),
        }
    }

    /// Is this a statement that only reads (safe in read-only txns)?
    pub fn is_read_only(&self) -> bool {
        !matches!(
            self,
            LogicalPlan::Insert { .. }
                | LogicalPlan::Update { .. }
                | LogicalPlan::Delete { .. }
                | LogicalPlan::CreateTable { .. }
                | LogicalPlan::DropTable { .. }
                | LogicalPlan::CreateView { .. }
                | LogicalPlan::DropView { .. }
                | LogicalPlan::CopyFrom { .. }
        )
    }
}
