//! The binder: resolves names against the catalog, types every expression,
//! and produces bound [`LogicalPlan`]s.

use crate::ast::*;
use crate::plan::{CsvOptions, LogicalPlan};
use eider_catalog::{Catalog, ColumnDefinition, TableEntry};
use eider_etl::{ArrowFileSource, CsvReadOptions, CsvSource, TableSource};
use eider_exec::aggregate::AggKind;
use eider_exec::expression::{ArithOp, Expr, ScalarFunc};
use eider_exec::ops::agg::AggExpr;
use eider_exec::ops::join::JoinType;
use eider_exec::ops::sort::SortKey;
use eider_vector::{EiderError, LogicalType, Result, Value};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// One visible column during binding.
#[derive(Debug, Clone)]
struct BoundColumn {
    qualifier: Option<String>,
    name: String,
    ty: LogicalType,
}

/// The set of columns an expression may reference.
#[derive(Debug, Clone, Default)]
struct BindContext {
    columns: Vec<BoundColumn>,
}

impl BindContext {
    fn push(&mut self, qualifier: Option<&str>, name: &str, ty: LogicalType) {
        self.columns.push(BoundColumn {
            qualifier: qualifier.map(|s| s.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
            ty,
        });
    }

    fn concat(mut self, other: BindContext) -> BindContext {
        self.columns.extend(other.columns);
        self
    }

    fn len(&self) -> usize {
        self.columns.len()
    }

    fn resolve(&self, table: Option<&str>, name: &str) -> Result<(usize, LogicalType)> {
        let name_l = name.to_ascii_lowercase();
        let table_l = table.map(|s| s.to_ascii_lowercase());
        let mut found: Option<(usize, LogicalType)> = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name != name_l {
                continue;
            }
            if let Some(t) = &table_l {
                if c.qualifier.as_deref() != Some(t.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(EiderError::Bind(format!("column reference \"{name}\" is ambiguous")));
            }
            found = Some((i, c.ty));
        }
        found.ok_or_else(|| {
            EiderError::Bind(match table {
                Some(t) => format!("column \"{t}.{name}\" not found"),
                None => format!("column \"{name}\" not found"),
            })
        })
    }
}

/// Aggregate-binding environment for SELECT/HAVING/ORDER BY of a grouped
/// query: group expressions become columns 0..G, aggregates G..G+A.
struct AggEnv<'a> {
    from_ctx: &'a BindContext,
    group_displays: Vec<String>,
    group_types: Vec<LogicalType>,
    aggs: Vec<(AggExpr, String)>,
}

pub struct Binder {
    catalog: Arc<Catalog>,
    /// CTE scopes, innermost last.
    cte_stack: Vec<HashMap<String, SelectStatement>>,
    depth: usize,
}

impl Binder {
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Binder { catalog, cte_stack: Vec::new(), depth: 0 }
    }

    pub fn bind_statement(&mut self, stmt: &Statement) -> Result<LogicalPlan> {
        match stmt {
            Statement::Select(sel) => {
                let (plan, _) = self.bind_select(sel)?;
                Ok(plan)
            }
            Statement::Insert { table, columns, source } => {
                self.bind_insert(table, columns.as_deref(), source)
            }
            Statement::Update { table, assignments, filter } => {
                self.bind_update(table, assignments, filter.as_ref())
            }
            Statement::Delete { table, filter } => self.bind_delete(table, filter.as_ref()),
            Statement::CreateTable { name, columns, if_not_exists, as_select } => {
                let mut defs = Vec::with_capacity(columns.len());
                for c in columns {
                    let ty = LogicalType::parse_sql_name(&c.type_name)?;
                    let default = match &c.default {
                        Some(e) => {
                            let bound = self.bind_scalar(e, &BindContext::default())?;
                            Some(bound.evaluate_row(&[])?.cast_to(ty)?)
                        }
                        None => None,
                    };
                    let mut def = ColumnDefinition::new(c.name.clone(), ty);
                    def.not_null = c.not_null;
                    def.default = default;
                    defs.push(def);
                }
                let as_plan = match as_select {
                    Some(sel) => {
                        let (plan, _) = self.bind_select(sel)?;
                        Some(Box::new(plan))
                    }
                    None => None,
                };
                if defs.is_empty() && as_plan.is_none() {
                    return Err(EiderError::Bind(format!(
                        "CREATE TABLE {name} requires columns or AS SELECT"
                    )));
                }
                Ok(LogicalPlan::CreateTable {
                    name: name.clone(),
                    columns: defs,
                    if_not_exists: *if_not_exists,
                    as_select: as_plan,
                })
            }
            Statement::DropTable { name, if_exists } => {
                Ok(LogicalPlan::DropTable { name: name.clone(), if_exists: *if_exists })
            }
            Statement::CreateView { name, sql, or_replace } => {
                // Validate the view body binds today.
                let stmts = crate::parser::parse_statements(sql)?;
                match stmts.first() {
                    Some(Statement::Select(sel)) => {
                        self.bind_select(sel)?;
                    }
                    _ => return Err(EiderError::Bind("view body must be a SELECT".into())),
                }
                Ok(LogicalPlan::CreateView {
                    name: name.clone(),
                    sql: sql.clone(),
                    or_replace: *or_replace,
                })
            }
            Statement::DropView { name, if_exists } => {
                Ok(LogicalPlan::DropView { name: name.clone(), if_exists: *if_exists })
            }
            Statement::Begin => Ok(LogicalPlan::Begin),
            Statement::Commit => Ok(LogicalPlan::Commit),
            Statement::Rollback => Ok(LogicalPlan::Rollback),
            Statement::Checkpoint => Ok(LogicalPlan::Checkpoint),
            Statement::Pragma { name, value } => {
                let v = match value {
                    Some(e) => {
                        Some(self.bind_scalar(e, &BindContext::default())?.evaluate_row(&[])?)
                    }
                    None => None,
                };
                Ok(LogicalPlan::Pragma { name: name.to_ascii_lowercase(), value: v })
            }
            Statement::Explain(inner) => {
                let plan = self.bind_statement(inner)?;
                Ok(LogicalPlan::Explain { input: Box::new(plan) })
            }
            Statement::ShowTables => Ok(LogicalPlan::ShowTables),
            Statement::CopyFrom { table, path, options } => {
                let entry = self.catalog.get_table(table)?;
                Ok(LogicalPlan::CopyFrom {
                    entry,
                    path: path.clone(),
                    options: CsvOptions {
                        header: options.header,
                        delimiter: options.delimiter,
                        null_string: options.null_string.clone(),
                    },
                })
            }
            Statement::CopyTo { table, path, options } => {
                let entry = self.catalog.get_table(table)?;
                let scan = self.scan_all(&entry, false);
                Ok(LogicalPlan::CopyTo {
                    input: Box::new(scan),
                    path: path.clone(),
                    options: CsvOptions {
                        header: options.header,
                        delimiter: options.delimiter,
                        null_string: options.null_string.clone(),
                    },
                })
            }
        }
    }

    fn scan_all(&self, entry: &Arc<TableEntry>, emit_row_ids: bool) -> LogicalPlan {
        let mut names = entry.column_names();
        let mut types = entry.column_types();
        if emit_row_ids {
            names.push("__rowid".into());
            types.push(LogicalType::BigInt);
        }
        LogicalPlan::TableScan {
            entry: Arc::clone(entry),
            column_ids: (0..entry.columns.len()).collect(),
            filters: Vec::new(),
            emit_row_ids,
            names,
            types,
        }
    }

    // ---------------- SELECT ----------------

    /// Bind a SELECT; returns the plan and its output context.
    fn bind_select(&mut self, stmt: &SelectStatement) -> Result<(LogicalPlan, BindContext)> {
        self.depth += 1;
        if self.depth > 64 {
            self.depth -= 1;
            return Err(EiderError::Bind("query nesting too deep".into()));
        }
        let mut scope = HashMap::new();
        for (name, query) in &stmt.ctes {
            scope.insert(name.to_ascii_lowercase(), query.clone());
        }
        self.cte_stack.push(scope);
        let result = self.bind_select_inner(stmt);
        self.cte_stack.pop();
        self.depth -= 1;
        result
    }

    fn bind_select_inner(&mut self, stmt: &SelectStatement) -> Result<(LogicalPlan, BindContext)> {
        let (mut plan, out_ctx) = self.bind_body(&stmt.body)?;
        // ORDER BY binds against the output columns (ordinal, name, or an
        // expression over output columns).
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for item in &stmt.order_by {
                let expr = self.bind_order_expr(&item.expr, &out_ctx)?;
                let nulls_first = item.nulls_first.unwrap_or(item.descending);
                keys.push(SortKey { expr, descending: item.descending, nulls_first });
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }
        if stmt.limit.is_some() || stmt.offset.is_some() {
            let eval_const = |b: &mut Binder, e: &Option<AstExpr>, what: &str| -> Result<usize> {
                match e {
                    None => Ok(if what == "LIMIT" { usize::MAX } else { 0 }),
                    Some(e) => {
                        let v = b.bind_scalar(e, &BindContext::default())?.evaluate_row(&[])?;
                        v.as_i64().filter(|&x| x >= 0).map(|x| x as usize).ok_or_else(|| {
                            EiderError::Bind(format!("{what} must be a non-negative integer"))
                        })
                    }
                }
            };
            let limit = eval_const(self, &stmt.limit, "LIMIT")?;
            let offset = eval_const(self, &stmt.offset, "OFFSET")?;
            plan = LogicalPlan::Limit { input: Box::new(plan), limit, offset };
        }
        Ok((plan, out_ctx))
    }

    fn bind_order_expr(&mut self, ast: &AstExpr, out_ctx: &BindContext) -> Result<Expr> {
        // Ordinal?
        if let AstExpr::Literal(Value::Integer(i)) = ast {
            let idx = *i as isize - 1;
            if idx < 0 || idx as usize >= out_ctx.len() {
                return Err(EiderError::Bind(format!("ORDER BY ordinal {i} out of range")));
            }
            let c = &out_ctx.columns[idx as usize];
            return Ok(Expr::column(idx as usize, c.ty));
        }
        // Display-name match (covers aliases and aggregate expressions).
        let display = ast.display_name();
        for (i, c) in out_ctx.columns.iter().enumerate() {
            if c.name == display.to_ascii_lowercase() {
                return Ok(Expr::column(i, c.ty));
            }
        }
        // Otherwise bind as an expression over the output columns.
        self.bind_scalar(ast, out_ctx).map_err(|e| {
            EiderError::Bind(format!(
                "ORDER BY expression must reference output columns \
                 (add it to the SELECT list): {e}"
            ))
        })
    }

    fn bind_body(&mut self, body: &SelectBody) -> Result<(LogicalPlan, BindContext)> {
        match body {
            SelectBody::Query(block) => self.bind_query_block(block),
            SelectBody::Union { left, right, all } => {
                let (lplan, lctx) = self.bind_body(left)?;
                let (rplan, rctx) = self.bind_body(right)?;
                if lctx.len() != rctx.len() {
                    return Err(EiderError::Bind(format!(
                        "UNION inputs have {} vs {} columns",
                        lctx.len(),
                        rctx.len()
                    )));
                }
                // Cast the right side to the left side's types if needed.
                let needs_cast = lctx.columns.iter().zip(&rctx.columns).any(|(l, r)| l.ty != r.ty);
                let rplan = if needs_cast {
                    let exprs: Vec<Expr> = lctx
                        .columns
                        .iter()
                        .zip(&rctx.columns)
                        .enumerate()
                        .map(|(i, (l, r))| {
                            if l.ty == r.ty {
                                Expr::column(i, r.ty)
                            } else {
                                Expr::Cast { child: Box::new(Expr::column(i, r.ty)), to: l.ty }
                            }
                        })
                        .collect();
                    let names = rctx.columns.iter().map(|c| c.name.clone()).collect();
                    LogicalPlan::Projection { input: Box::new(rplan), exprs, names }
                } else {
                    rplan
                };
                let mut plan = LogicalPlan::Union { left: Box::new(lplan), right: Box::new(rplan) };
                if !*all {
                    plan = LogicalPlan::Distinct { input: Box::new(plan) };
                }
                Ok((plan, lctx))
            }
        }
    }

    fn bind_query_block(&mut self, block: &QueryBlock) -> Result<(LogicalPlan, BindContext)> {
        // 1. FROM
        let (mut plan, ctx) = match &block.from {
            Some(tref) => self.bind_table_ref(tref)?,
            None => (LogicalPlan::SingleRow, BindContext::default()),
        };
        // 2. WHERE (with IN (SELECT) / EXISTS decorrelation to semi/anti
        //    joins)
        if let Some(filter) = &block.filter {
            let mut plain = Vec::new();
            for conjunct in split_ast_conjuncts(filter) {
                match conjunct {
                    AstExpr::InSubquery { child, query, negated } => {
                        let key = self.bind_scalar(child, &ctx)?;
                        let (sub, sub_ctx) = self.bind_select(query)?;
                        if sub_ctx.len() != 1 {
                            return Err(EiderError::Bind(
                                "IN (SELECT ...) requires exactly one output column".into(),
                            ));
                        }
                        let rkey = Expr::column(0, sub_ctx.columns[0].ty);
                        let (lk, rk) = coerce_pair(key, rkey)?;
                        plan = LogicalPlan::Join {
                            left: Box::new(plan),
                            right: Box::new(sub),
                            join_type: if *negated { JoinType::Anti } else { JoinType::Semi },
                            left_keys: vec![lk],
                            right_keys: vec![rk],
                        };
                    }
                    AstExpr::Exists { query, negated } => {
                        let (sub, _) = self.bind_select(query)?;
                        // Constant keys: every probe row matches iff the
                        // subquery is non-empty.
                        let one = Expr::constant(Value::Integer(1));
                        let sub = LogicalPlan::Projection {
                            input: Box::new(sub),
                            exprs: vec![one.clone()],
                            names: vec!["one".into()],
                        };
                        plan = LogicalPlan::Join {
                            left: Box::new(plan),
                            right: Box::new(sub),
                            join_type: if *negated { JoinType::Anti } else { JoinType::Semi },
                            left_keys: vec![one.clone()],
                            right_keys: vec![one],
                        };
                    }
                    other => plain.push(other.clone()),
                }
            }
            if !plain.is_empty() {
                let bound: Vec<Expr> =
                    plain.iter().map(|c| self.bind_boolean(c, &ctx)).collect::<Result<_>>()?;
                let predicate = if bound.len() == 1 {
                    bound.into_iter().next().expect("one")
                } else {
                    Expr::And(bound)
                };
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
            }
        }
        // 3. Aggregation?
        let has_aggs = !block.group_by.is_empty()
            || block.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            })
            || block.having.as_ref().is_some_and(contains_aggregate);
        let (mut plan, out_ctx) = if has_aggs {
            self.bind_aggregate_block(block, plan, &ctx)?
        } else {
            if block.having.is_some() {
                return Err(EiderError::Bind(
                    "HAVING requires GROUP BY or aggregate functions".into(),
                ));
            }
            // Plain projection.
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for item in &block.projection {
                match item {
                    SelectItem::Wildcard => {
                        for (i, c) in ctx.columns.iter().enumerate() {
                            exprs.push(Expr::column(i, c.ty));
                            names.push(c.name.clone());
                        }
                    }
                    SelectItem::QualifiedWildcard(t) => {
                        let tl = t.to_ascii_lowercase();
                        let before = exprs.len();
                        for (i, c) in ctx.columns.iter().enumerate() {
                            if c.qualifier.as_deref() == Some(tl.as_str()) {
                                exprs.push(Expr::column(i, c.ty));
                                names.push(c.name.clone());
                            }
                        }
                        if exprs.len() == before {
                            return Err(EiderError::Bind(format!(
                                "unknown table \"{t}\" in {t}.*"
                            )));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        exprs.push(self.bind_scalar(expr, &ctx)?);
                        names.push(
                            alias
                                .clone()
                                .unwrap_or_else(|| expr.display_name())
                                .to_ascii_lowercase(),
                        );
                    }
                }
            }
            let mut out_ctx = BindContext::default();
            for (e, n) in exprs.iter().zip(&names) {
                out_ctx.push(None, n, e.result_type());
            }
            (LogicalPlan::Projection { input: Box::new(plan), exprs, names }, out_ctx)
        };
        // 4. DISTINCT
        if block.distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }
        Ok((plan, out_ctx))
    }

    fn bind_aggregate_block(
        &mut self,
        block: &QueryBlock,
        input: LogicalPlan,
        ctx: &BindContext,
    ) -> Result<(LogicalPlan, BindContext)> {
        // Resolve GROUP BY items (ordinals and select-alias references).
        let mut group_asts: Vec<AstExpr> = Vec::with_capacity(block.group_by.len());
        for g in &block.group_by {
            let resolved = match g {
                AstExpr::Literal(Value::Integer(i)) => {
                    let idx = *i as isize - 1;
                    let item = block.projection.get(idx.max(0) as usize).ok_or_else(|| {
                        EiderError::Bind(format!("GROUP BY ordinal {i} out of range"))
                    })?;
                    match item {
                        SelectItem::Expr { expr, .. } => expr.clone(),
                        _ => {
                            return Err(EiderError::Bind(
                                "GROUP BY ordinal cannot reference *".into(),
                            ))
                        }
                    }
                }
                AstExpr::Column { table: None, name } => {
                    // Prefer an identically named select alias.
                    let alias_match = block.projection.iter().find_map(|item| match item {
                        SelectItem::Expr { expr, alias: Some(a) }
                            if a.eq_ignore_ascii_case(name) =>
                        {
                            Some(expr.clone())
                        }
                        _ => None,
                    });
                    alias_match.unwrap_or_else(|| g.clone())
                }
                other => other.clone(),
            };
            group_asts.push(resolved);
        }
        let mut env = AggEnv {
            from_ctx: ctx,
            group_displays: group_asts.iter().map(AstExpr::display_name).collect(),
            group_types: Vec::new(),
            aggs: Vec::new(),
        };
        let groups: Vec<Expr> =
            group_asts.iter().map(|g| self.bind_scalar(g, ctx)).collect::<Result<_>>()?;
        env.group_types = groups.iter().map(Expr::result_type).collect();

        // Bind select items and HAVING in the aggregate environment.
        let mut proj_exprs = Vec::new();
        let mut proj_names = Vec::new();
        for item in &block.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(EiderError::Bind("* is not allowed in an aggregated SELECT".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_agg_scalar(expr, &mut env)?;
                    proj_exprs.push(bound);
                    proj_names.push(
                        alias.clone().unwrap_or_else(|| expr.display_name()).to_ascii_lowercase(),
                    );
                }
            }
        }
        let having = match &block.having {
            Some(h) => Some(self.bind_agg_scalar(h, &mut env)?),
            None => None,
        };

        // Aggregate node output: groups then aggs.
        let mut agg_names: Vec<String> =
            env.group_displays.iter().map(|d| d.to_ascii_lowercase()).collect();
        agg_names.extend(env.aggs.iter().map(|(_, d)| d.to_ascii_lowercase()));
        let aggs: Vec<AggExpr> = env.aggs.iter().map(|(a, _)| a.clone()).collect();
        let mut plan =
            LogicalPlan::Aggregate { input: Box::new(input), groups, aggs, names: agg_names };
        if let Some(h) = having {
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: h };
        }
        let mut out_ctx = BindContext::default();
        for (e, n) in proj_exprs.iter().zip(&proj_names) {
            out_ctx.push(None, n, e.result_type());
        }
        let plan =
            LogicalPlan::Projection { input: Box::new(plan), exprs: proj_exprs, names: proj_names };
        Ok((plan, out_ctx))
    }

    fn bind_table_ref(&mut self, tref: &TableRef) -> Result<(LogicalPlan, BindContext)> {
        match tref {
            TableRef::Named { name, alias } => {
                let qualifier = alias.as_deref().unwrap_or(name).to_string();
                // CTEs shadow views shadow tables.
                let cte = self
                    .cte_stack
                    .iter()
                    .rev()
                    .find_map(|scope| scope.get(&name.to_ascii_lowercase()).cloned());
                if let Some(query) = cte {
                    let (plan, sub_ctx) = self.bind_select(&query)?;
                    let mut ctx = BindContext::default();
                    for c in &sub_ctx.columns {
                        ctx.push(Some(&qualifier), &c.name, c.ty);
                    }
                    return Ok((plan, ctx));
                }
                if let Some(view) = self.catalog.get_view(name) {
                    let stmts = crate::parser::parse_statements(&view.sql)?;
                    let Some(Statement::Select(sel)) = stmts.first() else {
                        return Err(EiderError::Bind(format!("view {name} body is not a SELECT")));
                    };
                    let (plan, sub_ctx) = self.bind_select(sel)?;
                    let mut ctx = BindContext::default();
                    for c in &sub_ctx.columns {
                        ctx.push(Some(&qualifier), &c.name, c.ty);
                    }
                    return Ok((plan, ctx));
                }
                let entry = self.catalog.get_table(name)?;
                let mut ctx = BindContext::default();
                for c in &entry.columns {
                    ctx.push(Some(&qualifier), &c.name, c.ty);
                }
                Ok((self.scan_all(&entry, false), ctx))
            }
            TableRef::Subquery { query, alias } => {
                let (plan, sub_ctx) = self.bind_select(query)?;
                let mut ctx = BindContext::default();
                for c in &sub_ctx.columns {
                    ctx.push(Some(alias), &c.name, c.ty);
                }
                Ok((plan, ctx))
            }
            TableRef::Function { name, args, alias } => {
                let source = bind_table_function(name, args)?;
                let qualifier = alias.clone().unwrap_or_else(|| name.to_ascii_lowercase());
                let names = source.column_names().to_vec();
                let types = source.column_types().to_vec();
                let mut ctx = BindContext::default();
                for (n, t) in names.iter().zip(&types) {
                    ctx.push(Some(&qualifier), n, *t);
                }
                let column_ids = (0..names.len()).collect();
                let plan = LogicalPlan::ExternalScan {
                    source,
                    column_ids,
                    filters: Vec::new(),
                    names,
                    types,
                };
                Ok((plan, ctx))
            }
            TableRef::Join { left, right, kind, on } => {
                let (lplan, lctx) = self.bind_table_ref(left)?;
                let (rplan, rctx) = self.bind_table_ref(right)?;
                let left_len = lctx.len();
                let combined = lctx.concat(rctx);
                match kind {
                    JoinKind::Cross => Ok((
                        LogicalPlan::CrossJoin { left: Box::new(lplan), right: Box::new(rplan) },
                        combined,
                    )),
                    JoinKind::Inner | JoinKind::Left => {
                        let on_ast = on.as_ref().ok_or_else(|| {
                            EiderError::Bind("JOIN requires an ON condition".into())
                        })?;
                        let mut equi: Vec<(Expr, Expr)> = Vec::new();
                        let mut residual: Vec<Expr> = Vec::new();
                        for conj in split_ast_conjuncts(on_ast) {
                            let bound = self.bind_boolean(conj, &combined)?;
                            match extract_equi_pair(&bound, left_len) {
                                Some((l, r)) => equi.push(coerce_pair(l, r)?),
                                None => residual.push(bound),
                            }
                        }
                        let join_type =
                            if *kind == JoinKind::Left { JoinType::Left } else { JoinType::Inner };
                        if equi.is_empty() {
                            if join_type == JoinType::Left {
                                return Err(EiderError::NotImplemented(
                                    "LEFT JOIN requires at least one equality condition".into(),
                                ));
                            }
                            let predicate = if residual.len() == 1 {
                                residual.into_iter().next().expect("one")
                            } else {
                                Expr::And(residual)
                            };
                            return Ok((
                                LogicalPlan::NestedLoopJoin {
                                    left: Box::new(lplan),
                                    right: Box::new(rplan),
                                    predicate,
                                },
                                combined,
                            ));
                        }
                        if join_type == JoinType::Left && !residual.is_empty() {
                            return Err(EiderError::NotImplemented(
                                "LEFT JOIN with non-equality residual conditions".into(),
                            ));
                        }
                        let (lk, rk): (Vec<Expr>, Vec<Expr>) = equi.into_iter().unzip();
                        let mut plan = LogicalPlan::Join {
                            left: Box::new(lplan),
                            right: Box::new(rplan),
                            join_type,
                            left_keys: lk,
                            right_keys: rk,
                        };
                        if !residual.is_empty() {
                            let predicate = if residual.len() == 1 {
                                residual.into_iter().next().expect("one")
                            } else {
                                Expr::And(residual)
                            };
                            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
                        }
                        Ok((plan, combined))
                    }
                }
            }
        }
    }

    // ---------------- INSERT / UPDATE / DELETE ----------------

    fn bind_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<LogicalPlan> {
        let entry = self.catalog.get_table(table)?;
        let provided: Vec<usize> = match columns {
            Some(cols) => {
                let mut idxs = Vec::with_capacity(cols.len());
                for c in cols {
                    let idx = entry.column_index(c).ok_or_else(|| {
                        EiderError::Bind(format!("table {table} has no column \"{c}\""))
                    })?;
                    if idxs.contains(&idx) {
                        return Err(EiderError::Bind(format!("duplicate column \"{c}\"")));
                    }
                    idxs.push(idx);
                }
                idxs
            }
            None => (0..entry.columns.len()).collect(),
        };
        let (source_plan, arity) = match source {
            InsertSource::Values(rows) => {
                let empty = BindContext::default();
                let mut bound_rows = Vec::with_capacity(rows.len());
                let arity = rows.first().map_or(0, Vec::len);
                for row in rows {
                    if row.len() != arity {
                        return Err(EiderError::Bind(
                            "VALUES rows must all have the same number of expressions".into(),
                        ));
                    }
                    let bound: Vec<Expr> =
                        row.iter().map(|e| self.bind_scalar(e, &empty)).collect::<Result<_>>()?;
                    bound_rows.push(bound);
                }
                // Column types: target column types (casts happen on insert).
                let types: Vec<LogicalType> =
                    provided.iter().map(|&i| entry.columns[i].ty).collect();
                let names: Vec<String> =
                    provided.iter().map(|&i| entry.columns[i].name.clone()).collect();
                if arity != provided.len() {
                    return Err(EiderError::Bind(format!(
                        "INSERT expects {} values per row, got {arity}",
                        provided.len()
                    )));
                }
                (LogicalPlan::Values { rows: bound_rows, types, names }, arity)
            }
            InsertSource::Select(sel) => {
                let (plan, ctx) = self.bind_select(sel)?;
                (plan, ctx.len())
            }
        };
        if arity != provided.len() {
            return Err(EiderError::Bind(format!(
                "INSERT column count mismatch: target expects {}, source provides {arity}",
                provided.len()
            )));
        }
        // Rearrange the source into full table width with defaults.
        let src_types = source_plan.output_types();
        let exprs: Vec<Expr> = entry
            .columns
            .iter()
            .enumerate()
            .map(|(table_idx, def)| match provided.iter().position(|&p| p == table_idx) {
                Some(src_pos) => {
                    let e = Expr::column(src_pos, src_types[src_pos]);
                    if src_types[src_pos] == def.ty {
                        e
                    } else {
                        Expr::Cast { child: Box::new(e), to: def.ty }
                    }
                }
                None => {
                    let v = def.default.clone().unwrap_or(Value::Null);
                    Expr::Cast { child: Box::new(Expr::constant(v)), to: def.ty }
                }
            })
            .collect();
        let names = entry.column_names();
        let projected = LogicalPlan::Projection { input: Box::new(source_plan), exprs, names };
        Ok(LogicalPlan::Insert { entry, input: Box::new(projected) })
    }

    fn table_ctx(entry: &TableEntry) -> BindContext {
        let mut ctx = BindContext::default();
        for c in &entry.columns {
            ctx.push(Some(&entry.name), &c.name, c.ty);
        }
        ctx
    }

    fn bind_update(
        &mut self,
        table: &str,
        assignments: &[(String, AstExpr)],
        filter: Option<&AstExpr>,
    ) -> Result<LogicalPlan> {
        let entry = self.catalog.get_table(table)?;
        let ctx = Self::table_ctx(&entry);
        let mut plan = self.scan_all(&entry, true);
        if let Some(f) = filter {
            if ast_contains_subquery(f) {
                return Err(EiderError::NotImplemented(
                    "subqueries in UPDATE/DELETE WHERE clauses".into(),
                ));
            }
            let predicate = self.bind_boolean(f, &ctx)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }
        let mut columns = Vec::with_capacity(assignments.len());
        let mut exprs = Vec::with_capacity(assignments.len() + 1);
        let mut names = Vec::with_capacity(assignments.len() + 1);
        for (name, value) in assignments {
            let idx = entry.column_index(name).ok_or_else(|| {
                EiderError::Bind(format!("table {table} has no column \"{name}\""))
            })?;
            if columns.contains(&idx) {
                return Err(EiderError::Bind(format!("column \"{name}\" assigned twice")));
            }
            columns.push(idx);
            let bound = self.bind_scalar(value, &ctx)?;
            let ty = entry.columns[idx].ty;
            let bound = if bound.result_type() == ty {
                bound
            } else {
                Expr::Cast { child: Box::new(bound), to: ty }
            };
            exprs.push(bound);
            names.push(name.clone());
        }
        // Trailing row id.
        exprs.push(Expr::column(entry.columns.len(), LogicalType::BigInt));
        names.push("__rowid".into());
        let projected = LogicalPlan::Projection { input: Box::new(plan), exprs, names };
        Ok(LogicalPlan::Update { entry, input: Box::new(projected), columns })
    }

    fn bind_delete(&mut self, table: &str, filter: Option<&AstExpr>) -> Result<LogicalPlan> {
        let entry = self.catalog.get_table(table)?;
        let ctx = Self::table_ctx(&entry);
        let mut plan = self.scan_all(&entry, true);
        if let Some(f) = filter {
            if ast_contains_subquery(f) {
                return Err(EiderError::NotImplemented(
                    "subqueries in UPDATE/DELETE WHERE clauses".into(),
                ));
            }
            let predicate = self.bind_boolean(f, &ctx)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }
        let exprs = vec![Expr::column(entry.columns.len(), LogicalType::BigInt)];
        let projected =
            LogicalPlan::Projection { input: Box::new(plan), exprs, names: vec!["__rowid".into()] };
        Ok(LogicalPlan::Delete { entry, input: Box::new(projected) })
    }

    // ---------------- expressions ----------------

    /// Bind an expression that must be boolean (WHERE/ON/HAVING).
    fn bind_boolean(&mut self, ast: &AstExpr, ctx: &BindContext) -> Result<Expr> {
        let e = self.bind_scalar(ast, ctx)?;
        if e.result_type() != LogicalType::Boolean {
            return Err(EiderError::Bind(format!(
                "predicate must be BOOLEAN, got {}",
                e.result_type()
            )));
        }
        Ok(e)
    }

    /// Bind a scalar expression; aggregate functions are rejected.
    fn bind_scalar(&mut self, ast: &AstExpr, ctx: &BindContext) -> Result<Expr> {
        self.bind_expr_impl(ast, ctx, None)
    }

    /// Bind inside an aggregated query block.
    fn bind_agg_scalar(&mut self, ast: &AstExpr, env: &mut AggEnv<'_>) -> Result<Expr> {
        // Group expression match?
        let display = ast.display_name();
        if let Some(idx) = env.group_displays.iter().position(|d| *d == display) {
            return Ok(Expr::column(idx, env.group_types[idx]));
        }
        // Aggregate function?
        if let AstExpr::Function { name, args, distinct, star } = ast {
            if let Some(kind) = AggKind::by_name(name) {
                let arg = if *star {
                    None
                } else {
                    if args.len() != 1 {
                        return Err(EiderError::Bind(format!("{name} takes exactly one argument")));
                    }
                    let from_ctx = env.from_ctx.clone();
                    Some(self.bind_scalar(&args[0], &from_ctx)?)
                };
                let agg = AggExpr { kind, arg, distinct: *distinct };
                let idx = match env.aggs.iter().position(|(_, d)| *d == display) {
                    Some(i) => i,
                    None => {
                        env.aggs.push((agg.clone(), display));
                        env.aggs.len() - 1
                    }
                };
                let ty = env.aggs[idx].0.result_type();
                return Ok(Expr::column(env.group_displays.len() + idx, ty));
            }
        }
        // Bare column that is not a group key: error.
        if let AstExpr::Column { table, name } = ast {
            let t = table.as_deref().map(|s| format!("{s}.")).unwrap_or_default();
            return Err(EiderError::Bind(format!(
                "column \"{t}{name}\" must appear in GROUP BY or inside an aggregate function"
            )));
        }
        // Recurse structurally.
        self.bind_expr_structurally(ast, &mut |b, child| b.bind_agg_scalar(child, env))
    }

    /// Bind an expression with leaf handling delegated to `leaf`.
    fn bind_expr_structurally(
        &mut self,
        ast: &AstExpr,
        leaf: &mut dyn FnMut(&mut Binder, &AstExpr) -> Result<Expr>,
    ) -> Result<Expr> {
        match ast {
            AstExpr::Literal(v) => Ok(Expr::constant(v.clone())),
            AstExpr::Binary { op, left, right } => {
                let l = leaf(self, left)?;
                let r = leaf(self, right)?;
                self.bind_binary(*op, l, r)
            }
            AstExpr::Unary { minus, child } => {
                let c = leaf(self, child)?;
                if !*minus {
                    return Ok(c);
                }
                let ty = c.result_type();
                if !ty.is_numeric() {
                    return Err(EiderError::Bind(format!("cannot negate {ty}")));
                }
                Ok(Expr::Arithmetic {
                    op: ArithOp::Sub,
                    left: Box::new(Expr::Cast {
                        child: Box::new(Expr::constant(Value::Integer(0))),
                        to: ty,
                    }),
                    right: Box::new(c),
                    ty,
                })
            }
            AstExpr::Not(child) => Ok(Expr::Not(Box::new(leaf(self, child)?))),
            AstExpr::IsNull { child, negated } => {
                Ok(Expr::IsNull { child: Box::new(leaf(self, child)?), negated: *negated })
            }
            AstExpr::Between { child, low, high, negated } => {
                let c = leaf(self, child)?;
                let lo = leaf(self, low)?;
                let hi = leaf(self, high)?;
                let (c1, lo) = coerce_pair(c.clone(), lo)?;
                let (c2, hi) = coerce_pair(c, hi)?;
                let range = Expr::And(vec![
                    Expr::Compare {
                        op: eider_txn::CmpOp::GtEq,
                        left: Box::new(c1),
                        right: Box::new(lo),
                    },
                    Expr::Compare {
                        op: eider_txn::CmpOp::LtEq,
                        left: Box::new(c2),
                        right: Box::new(hi),
                    },
                ]);
                Ok(if *negated { Expr::Not(Box::new(range)) } else { range })
            }
            AstExpr::InList { child, list, negated } => {
                let c = leaf(self, child)?;
                let items: Vec<Expr> = list.iter().map(|e| leaf(self, e)).collect::<Result<_>>()?;
                Ok(Expr::InList { child: Box::new(c), list: items, negated: *negated })
            }
            AstExpr::InSubquery { .. } | AstExpr::Exists { .. } => Err(EiderError::NotImplemented(
                "subquery predicates are only supported as top-level WHERE conjuncts".into(),
            )),
            AstExpr::Like { child, pattern, negated } => {
                let c = leaf(self, child)?;
                let p = leaf(self, pattern)?;
                let c = cast_to(c, LogicalType::Varchar);
                let p = cast_to(p, LogicalType::Varchar);
                Ok(Expr::Like { child: Box::new(c), pattern: Box::new(p), negated: *negated })
            }
            AstExpr::Cast { child, type_name } => {
                let to = LogicalType::parse_sql_name(type_name)?;
                Ok(Expr::Cast { child: Box::new(leaf(self, child)?), to })
            }
            AstExpr::Case { operand, branches, else_expr } => {
                let mut bound_branches = Vec::with_capacity(branches.len());
                for (cond, val) in branches {
                    let c = match operand {
                        Some(op) => {
                            let l = leaf(self, op)?;
                            let r = leaf(self, cond)?;
                            let (l, r) = coerce_pair(l, r)?;
                            Expr::Compare {
                                op: eider_txn::CmpOp::Eq,
                                left: Box::new(l),
                                right: Box::new(r),
                            }
                        }
                        None => {
                            let c = leaf(self, cond)?;
                            if c.result_type() != LogicalType::Boolean {
                                return Err(EiderError::Bind(
                                    "CASE WHEN condition must be BOOLEAN".into(),
                                ));
                            }
                            c
                        }
                    };
                    bound_branches.push((c, leaf(self, val)?));
                }
                let bound_else = match else_expr {
                    Some(e) => Some(leaf(self, e)?),
                    None => None,
                };
                // Unify result types.
                let mut ty: Option<LogicalType> = None;
                for (_, v) in &bound_branches {
                    ty = Some(unify_types(ty, v.result_type())?);
                }
                if let Some(e) = &bound_else {
                    ty = Some(unify_types(ty, e.result_type())?);
                }
                let ty = ty.unwrap_or(LogicalType::Varchar);
                let branches =
                    bound_branches.into_iter().map(|(c, v)| (c, cast_to(v, ty))).collect();
                let else_expr = bound_else.map(|e| Box::new(cast_to(e, ty)));
                Ok(Expr::Case { branches, else_expr, ty })
            }
            AstExpr::Function { name, args, distinct, star } => {
                if AggKind::by_name(name).is_some() {
                    return Err(EiderError::Bind(format!(
                        "aggregate function {name} is not allowed here"
                    )));
                }
                if *distinct || *star {
                    return Err(EiderError::Bind(format!(
                        "DISTINCT/* only apply to aggregate functions (in {name})"
                    )));
                }
                let func = ScalarFunc::by_name(name)
                    .ok_or_else(|| EiderError::Bind(format!("unknown function \"{name}\"")))?;
                let bound: Vec<Expr> = args.iter().map(|a| leaf(self, a)).collect::<Result<_>>()?;
                validate_function_arity(func, bound.len())?;
                let ty = func.result_type(&bound.iter().map(Expr::result_type).collect::<Vec<_>>());
                Ok(Expr::Function { func, args: bound, ty })
            }
            AstExpr::Column { .. } => unreachable!("columns handled by leaf fn"),
        }
    }

    fn bind_expr_impl(
        &mut self,
        ast: &AstExpr,
        ctx: &BindContext,
        _unused: Option<()>,
    ) -> Result<Expr> {
        match ast {
            AstExpr::Column { table, name } => {
                let (idx, ty) = ctx.resolve(table.as_deref(), name)?;
                Ok(Expr::column(idx, ty))
            }
            other => {
                let ctx = ctx.clone();
                self.bind_expr_structurally(other, &mut move |b, child| {
                    b.bind_expr_impl(child, &ctx, None)
                })
            }
        }
    }

    fn bind_binary(&mut self, op: BinaryOp, l: Expr, r: Expr) -> Result<Expr> {
        use eider_txn::CmpOp;
        Ok(match op {
            BinaryOp::And => Expr::And(vec![l, r]),
            BinaryOp::Or => Expr::Or(vec![l, r]),
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let cmp = match op {
                    BinaryOp::Eq => CmpOp::Eq,
                    BinaryOp::NotEq => CmpOp::NotEq,
                    BinaryOp::Lt => CmpOp::Lt,
                    BinaryOp::LtEq => CmpOp::LtEq,
                    BinaryOp::Gt => CmpOp::Gt,
                    _ => CmpOp::GtEq,
                };
                let (l, r) = coerce_pair(l, r)?;
                Expr::Compare { op: cmp, left: Box::new(l), right: Box::new(r) }
            }
            BinaryOp::Concat => Expr::Function {
                func: ScalarFunc::Concat,
                args: vec![cast_to(l, LogicalType::Varchar), cast_to(r, LogicalType::Varchar)],
                ty: LogicalType::Varchar,
            },
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                let (lt, rt) = (l.result_type(), r.result_type());
                // VARCHAR operands coerce to DOUBLE in arithmetic.
                let l =
                    if lt == LogicalType::Varchar { cast_to(l, LogicalType::Double) } else { l };
                let r =
                    if rt == LogicalType::Varchar { cast_to(r, LogicalType::Double) } else { r };
                let (lt, rt) = (l.result_type(), r.result_type());
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(EiderError::Bind(format!(
                        "arithmetic over non-numeric types {lt} and {rt}"
                    )));
                }
                let ty = match op {
                    BinaryOp::Div => LogicalType::Double,
                    // Widen to at least BIGINT to dodge gratuitous overflow.
                    _ => {
                        let t = LogicalType::max_numeric(lt, rt)?;
                        if t.is_integral() {
                            LogicalType::BigInt
                        } else {
                            t
                        }
                    }
                };
                let aop = match op {
                    BinaryOp::Add => ArithOp::Add,
                    BinaryOp::Sub => ArithOp::Sub,
                    BinaryOp::Mul => ArithOp::Mul,
                    BinaryOp::Div => ArithOp::Div,
                    _ => ArithOp::Mod,
                };
                Expr::Arithmetic { op: aop, left: Box::new(l), right: Box::new(r), ty }
            }
        })
    }
}

// ---------------- helpers ----------------

/// Resolve a FROM-clause table function to its [`TableSource`]. The file
/// is opened (and its schema sniffed) at bind time so the plan's types
/// are fixed before execution.
fn bind_table_function(
    name: &str,
    args: &[(Option<String>, Value)],
) -> Result<Arc<dyn TableSource>> {
    let path = match args.first() {
        Some((None, Value::Varchar(p))) => p.clone(),
        _ => {
            return Err(EiderError::Bind(format!(
                "{name} expects a file path string as its first argument"
            )))
        }
    };
    match name.to_ascii_lowercase().as_str() {
        "read_csv" => {
            let mut options = CsvReadOptions::default();
            for (opt, value) in &args[1..] {
                let Some(opt) = opt.as_deref() else {
                    return Err(EiderError::Bind(
                        "read_csv options after the path must be named, e.g. header = false".into(),
                    ));
                };
                match (opt, value) {
                    ("header", Value::Boolean(b)) => options.header = *b,
                    ("delimiter", Value::Varchar(s)) if s.chars().count() == 1 => {
                        options.delimiter = s.chars().next().expect("one char");
                    }
                    ("null_string", Value::Varchar(s)) => options.null_string = s.clone(),
                    ("sample_rows", Value::BigInt(n)) if *n > 0 => {
                        options.sample_rows = *n as usize;
                    }
                    _ => {
                        return Err(EiderError::Bind(format!(
                            "read_csv: unsupported option {opt} = {value}"
                        )))
                    }
                }
            }
            Ok(Arc::new(CsvSource::open(Path::new(&path), options)?))
        }
        "read_arrow" => {
            if args.len() > 1 {
                return Err(EiderError::Bind("read_arrow takes only a file path".into()));
            }
            Ok(Arc::new(ArrowFileSource::open(Path::new(&path))?))
        }
        other => Err(EiderError::Bind(format!("unknown table function {other}"))),
    }
}

fn cast_to(e: Expr, to: LogicalType) -> Expr {
    if e.result_type() == to {
        e
    } else {
        Expr::Cast { child: Box::new(e), to }
    }
}

/// Insert casts so both sides of a comparison share a type.
fn coerce_pair(l: Expr, r: Expr) -> Result<(Expr, Expr)> {
    let (lt, rt) = (l.result_type(), r.result_type());
    if lt == rt {
        return Ok((l, r));
    }
    if lt.is_numeric() && rt.is_numeric() {
        let t = LogicalType::max_numeric(lt, rt)?;
        return Ok((cast_to(l, t), cast_to(r, t)));
    }
    match (lt, rt) {
        (LogicalType::Date, LogicalType::Timestamp) => Ok((cast_to(l, LogicalType::Timestamp), r)),
        (LogicalType::Timestamp, LogicalType::Date) => Ok((l, cast_to(r, LogicalType::Timestamp))),
        (LogicalType::Varchar, _) => Ok((cast_to(l, rt), r)),
        (_, LogicalType::Varchar) => Ok((l, cast_to(r, lt))),
        _ => Err(EiderError::Bind(format!("cannot compare {lt} with {rt}"))),
    }
}

fn unify_types(acc: Option<LogicalType>, next: LogicalType) -> Result<LogicalType> {
    match acc {
        None => Ok(next),
        Some(a) if a == next => Ok(a),
        Some(a) if a.is_numeric() && next.is_numeric() => LogicalType::max_numeric(a, next),
        Some(LogicalType::Date) if next == LogicalType::Timestamp => Ok(LogicalType::Timestamp),
        Some(LogicalType::Timestamp) if next == LogicalType::Date => Ok(LogicalType::Timestamp),
        Some(_) => Ok(LogicalType::Varchar),
    }
}

fn validate_function_arity(func: ScalarFunc, n: usize) -> Result<()> {
    let ok = match func {
        ScalarFunc::Abs
        | ScalarFunc::Floor
        | ScalarFunc::Ceil
        | ScalarFunc::Sqrt
        | ScalarFunc::Length
        | ScalarFunc::Lower
        | ScalarFunc::Upper => n == 1,
        ScalarFunc::Round => n == 1 || n == 2,
        ScalarFunc::Substr => n == 2 || n == 3,
        ScalarFunc::Concat => n >= 1,
        ScalarFunc::Coalesce => n >= 1,
        ScalarFunc::NullIf => n == 2,
    };
    if ok {
        Ok(())
    } else {
        Err(EiderError::Bind(format!("wrong number of arguments ({n}) for {func:?}")))
    }
}

/// Split an AST expression on top-level ANDs.
fn split_ast_conjuncts(e: &AstExpr) -> Vec<&AstExpr> {
    match e {
        AstExpr::Binary { op: BinaryOp::And, left, right } => {
            let mut v = split_ast_conjuncts(left);
            v.extend(split_ast_conjuncts(right));
            v
        }
        other => vec![other],
    }
}

fn contains_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Function { name, args, .. } => {
            AggKind::by_name(name).is_some() || args.iter().any(contains_aggregate)
        }
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Unary { child, .. } | AstExpr::Not(child) => contains_aggregate(child),
        AstExpr::IsNull { child, .. } => contains_aggregate(child),
        AstExpr::Between { child, low, high, .. } => {
            contains_aggregate(child) || contains_aggregate(low) || contains_aggregate(high)
        }
        AstExpr::InList { child, list, .. } => {
            contains_aggregate(child) || list.iter().any(contains_aggregate)
        }
        AstExpr::Like { child, pattern, .. } => {
            contains_aggregate(child) || contains_aggregate(pattern)
        }
        AstExpr::Cast { child, .. } => contains_aggregate(child),
        AstExpr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || branches.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        _ => false,
    }
}

fn ast_contains_subquery(e: &AstExpr) -> bool {
    match e {
        AstExpr::InSubquery { .. } | AstExpr::Exists { .. } => true,
        AstExpr::Binary { left, right, .. } => {
            ast_contains_subquery(left) || ast_contains_subquery(right)
        }
        AstExpr::Unary { child, .. } | AstExpr::Not(child) => ast_contains_subquery(child),
        AstExpr::IsNull { child, .. } => ast_contains_subquery(child),
        AstExpr::Between { child, low, high, .. } => {
            ast_contains_subquery(child)
                || ast_contains_subquery(low)
                || ast_contains_subquery(high)
        }
        AstExpr::InList { child, list, .. } => {
            ast_contains_subquery(child) || list.iter().any(ast_contains_subquery)
        }
        AstExpr::Like { child, pattern, .. } => {
            ast_contains_subquery(child) || ast_contains_subquery(pattern)
        }
        AstExpr::Cast { child, .. } => ast_contains_subquery(child),
        AstExpr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_some_and(ast_contains_subquery)
                || branches
                    .iter()
                    .any(|(c, v)| ast_contains_subquery(c) || ast_contains_subquery(v))
                || else_expr.as_deref().is_some_and(ast_contains_subquery)
        }
        AstExpr::Function { args, .. } => args.iter().any(ast_contains_subquery),
        _ => false,
    }
}

/// Collect all column indexes referenced by a bound expression.
pub(crate) fn collect_columns(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::ColumnRef { index, .. } => out.push(*index),
        Expr::Constant { .. } => {}
        Expr::Compare { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::And(c) | Expr::Or(c) => c.iter().for_each(|e| collect_columns(e, out)),
        Expr::Not(c) => collect_columns(c, out),
        Expr::Arithmetic { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Cast { child, .. } => collect_columns(child, out),
        Expr::IsNull { child, .. } => collect_columns(child, out),
        Expr::Case { branches, else_expr, .. } => {
            for (c, v) in branches {
                collect_columns(c, out);
                collect_columns(v, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        Expr::Function { args, .. } => args.iter().for_each(|e| collect_columns(e, out)),
        Expr::Like { child, pattern, .. } => {
            collect_columns(child, out);
            collect_columns(pattern, out);
        }
        Expr::InList { child, list, .. } => {
            collect_columns(child, out);
            list.iter().for_each(|e| collect_columns(e, out));
        }
    }
}

/// Shift every column reference by `-shift` (used to rebase join-side keys).
pub(crate) fn shift_columns(e: &Expr, shift: usize) -> Expr {
    let mut c = e.clone();
    shift_columns_mut(&mut c, shift);
    c
}

fn shift_columns_mut(e: &mut Expr, shift: usize) {
    match e {
        Expr::ColumnRef { index, .. } => *index -= shift,
        Expr::Constant { .. } => {}
        Expr::Compare { left, right, .. } => {
            shift_columns_mut(left, shift);
            shift_columns_mut(right, shift);
        }
        Expr::And(c) | Expr::Or(c) => c.iter_mut().for_each(|e| shift_columns_mut(e, shift)),
        Expr::Not(c) => shift_columns_mut(c, shift),
        Expr::Arithmetic { left, right, .. } => {
            shift_columns_mut(left, shift);
            shift_columns_mut(right, shift);
        }
        Expr::Cast { child, .. } => shift_columns_mut(child, shift),
        Expr::IsNull { child, .. } => shift_columns_mut(child, shift),
        Expr::Case { branches, else_expr, .. } => {
            for (c, v) in branches {
                shift_columns_mut(c, shift);
                shift_columns_mut(v, shift);
            }
            if let Some(e) = else_expr {
                shift_columns_mut(e, shift);
            }
        }
        Expr::Function { args, .. } => args.iter_mut().for_each(|e| shift_columns_mut(e, shift)),
        Expr::Like { child, pattern, .. } => {
            shift_columns_mut(child, shift);
            shift_columns_mut(pattern, shift);
        }
        Expr::InList { child, list, .. } => {
            shift_columns_mut(child, shift);
            list.iter_mut().for_each(|e| shift_columns_mut(e, shift));
        }
    }
}

/// If `bound` is `left_side = right_side` with each side touching only one
/// join input, return (left key, right key rebased to the right input).
fn extract_equi_pair(bound: &Expr, left_len: usize) -> Option<(Expr, Expr)> {
    let Expr::Compare { op: eider_txn::CmpOp::Eq, left, right } = bound else {
        return None;
    };
    let mut lcols = Vec::new();
    let mut rcols = Vec::new();
    collect_columns(left, &mut lcols);
    collect_columns(right, &mut rcols);
    let all_left = |cols: &[usize]| !cols.is_empty() && cols.iter().all(|&c| c < left_len);
    let all_right = |cols: &[usize]| !cols.is_empty() && cols.iter().all(|&c| c >= left_len);
    if all_left(&lcols) && all_right(&rcols) {
        Some(((**left).clone(), shift_columns(right, left_len)))
    } else if all_right(&lcols) && all_left(&rcols) {
        Some(((**right).clone(), shift_columns(left, left_len)))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statements;

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            vec![
                ColumnDefinition::new("a", LogicalType::Integer),
                ColumnDefinition::new("b", LogicalType::Varchar),
                ColumnDefinition::new("d", LogicalType::Integer),
            ],
            false,
        )
        .unwrap();
        cat.create_table(
            "u",
            vec![
                ColumnDefinition::new("a", LogicalType::Integer),
                ColumnDefinition::new("v", LogicalType::Double),
            ],
            false,
        )
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let cat = catalog();
        let stmts = parse_statements(sql)?;
        Binder::new(cat).bind_statement(&stmts[0])
    }

    #[test]
    fn simple_select_binds() {
        let plan = bind("SELECT a, b FROM t WHERE a > 5").unwrap();
        assert_eq!(plan.output_names(), vec!["a", "b"]);
        assert_eq!(plan.output_types(), vec![LogicalType::Integer, LogicalType::Varchar]);
    }

    #[test]
    fn wildcard_and_alias() {
        let plan = bind("SELECT * FROM t AS x WHERE x.a = 1").unwrap();
        assert_eq!(plan.output_names(), vec!["a", "b", "d"]);
        let plan = bind("SELECT t.* , a + 1 AS next FROM t").unwrap();
        assert_eq!(plan.output_names(), vec!["a", "b", "d", "next"]);
    }

    #[test]
    fn unknown_names_error() {
        assert!(bind("SELECT nope FROM t").is_err());
        assert!(bind("SELECT a FROM missing").is_err());
        assert!(bind("SELECT z.a FROM t").is_err());
    }

    #[test]
    fn ambiguity_detected() {
        let err = bind("SELECT a FROM t, u").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        assert!(bind("SELECT t.a FROM t, u").is_ok());
    }

    #[test]
    fn aggregate_binding() {
        let plan = bind("SELECT d, count(*), sum(a) AS total FROM t GROUP BY d HAVING sum(a) > 10")
            .unwrap();
        assert_eq!(plan.output_names(), vec!["d", "count(*)", "total"]);
        assert_eq!(
            plan.output_types(),
            vec![LogicalType::Integer, LogicalType::BigInt, LogicalType::BigInt]
        );
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = bind("SELECT a, sum(d) FROM t GROUP BY d").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn group_by_expression_match() {
        let plan = bind("SELECT a % 10, count(*) FROM t GROUP BY a % 10").unwrap();
        assert_eq!(plan.output_types()[0], LogicalType::BigInt);
    }

    #[test]
    fn implicit_aggregate_without_group_by() {
        let plan = bind("SELECT count(*), min(a) FROM t").unwrap();
        assert_eq!(plan.output_types(), vec![LogicalType::BigInt, LogicalType::Integer]);
    }

    #[test]
    fn join_extracts_equi_keys() {
        let plan = bind("SELECT t.a, u.v FROM t JOIN u ON t.a = u.a").unwrap();
        fn find_join(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::Join { .. }) || p.children().iter().any(|c| find_join(c))
        }
        assert!(find_join(&plan));
    }

    #[test]
    fn inequality_join_becomes_nested_loop() {
        let plan = bind("SELECT t.a FROM t JOIN u ON t.a < u.a").unwrap();
        fn find_nl(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::NestedLoopJoin { .. })
                || p.children().iter().any(|c| find_nl(c))
        }
        assert!(find_nl(&plan));
    }

    #[test]
    fn in_subquery_becomes_semi_join() {
        let plan = bind("SELECT a FROM t WHERE a IN (SELECT a FROM u)").unwrap();
        fn find_semi(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::Join { join_type: JoinType::Semi, .. })
                || p.children().iter().any(|c| find_semi(c))
        }
        assert!(find_semi(&plan));
        let plan = bind("SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)").unwrap();
        fn find_anti(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::Join { join_type: JoinType::Anti, .. })
                || p.children().iter().any(|c| find_anti(c))
        }
        assert!(find_anti(&plan));
    }

    #[test]
    fn update_plan_shape() {
        let plan = bind("UPDATE t SET d = NULL WHERE d = -999").unwrap();
        let LogicalPlan::Update { columns, .. } = &plan else { panic!() };
        assert_eq!(columns, &vec![2]);
        assert_eq!(plan.output_names(), vec!["Count"]);
    }

    #[test]
    fn insert_fills_defaults_and_casts() {
        let plan = bind("INSERT INTO t (a) VALUES (1), (2)").unwrap();
        let LogicalPlan::Insert { input, .. } = &plan else { panic!() };
        // The projection must produce full table width.
        assert_eq!(input.output_types().len(), 3);
    }

    #[test]
    fn insert_arity_mismatch() {
        assert!(bind("INSERT INTO t (a, b) VALUES (1)").is_err());
        assert!(bind("INSERT INTO t VALUES (1, 'x')").is_err());
    }

    #[test]
    fn order_by_forms() {
        assert!(bind("SELECT a FROM t ORDER BY 1 DESC").is_ok());
        assert!(bind("SELECT a AS z FROM t ORDER BY z").is_ok());
        assert!(bind("SELECT a FROM t ORDER BY a").is_ok());
        assert!(bind("SELECT d, sum(a) FROM t GROUP BY d ORDER BY sum(a)").is_ok());
        let err = bind("SELECT a FROM t ORDER BY b").unwrap_err();
        assert!(err.to_string().contains("SELECT list"), "{err}");
    }

    #[test]
    fn union_types_unify() {
        let plan = bind("SELECT a FROM t UNION ALL SELECT CAST(v AS INTEGER) FROM u").unwrap();
        assert_eq!(plan.output_types(), vec![LogicalType::Integer]);
        assert!(bind("SELECT a, b FROM t UNION ALL SELECT a FROM u").is_err());
    }

    #[test]
    fn ctes_resolve() {
        let plan = bind("WITH big AS (SELECT a FROM t WHERE a > 10) SELECT * FROM big").unwrap();
        assert_eq!(plan.output_names(), vec!["a"]);
    }

    #[test]
    fn comparison_coercion() {
        // VARCHAR compared with INTEGER: the string side is cast.
        assert!(bind("SELECT a FROM t WHERE b = 5").is_ok());
        assert!(bind("SELECT a FROM t WHERE a = 'x'").is_ok());
    }

    #[test]
    fn arithmetic_types() {
        let plan = bind("SELECT a / 2, a + 1, a % 2 FROM t").unwrap();
        assert_eq!(
            plan.output_types(),
            vec![LogicalType::Double, LogicalType::BigInt, LogicalType::BigInt]
        );
    }

    #[test]
    fn where_must_be_boolean() {
        let err = bind("SELECT a FROM t WHERE a + 1").unwrap_err();
        assert!(err.to_string().contains("BOOLEAN"), "{err}");
    }

    #[test]
    fn case_type_unification() {
        let plan = bind("SELECT CASE WHEN a > 0 THEN 1 ELSE 2.5 END FROM t").unwrap();
        assert_eq!(plan.output_types(), vec![LogicalType::Double]);
    }
}
