//! The abstract syntax tree produced by the parser.

use eider_vector::Value;

/// A parsed SQL statement.
/// Variant sizes span from a table name to a whole SELECT; statements are
/// parsed one at a time, so boxing the big variants would only add hops.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Statement {
    Select(SelectStatement),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        assignments: Vec<(String, AstExpr)>,
        filter: Option<AstExpr>,
    },
    Delete {
        table: String,
        filter: Option<AstExpr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
        /// CREATE TABLE ... AS SELECT
        as_select: Option<Box<SelectStatement>>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    CreateView {
        name: String,
        sql: String,
        or_replace: bool,
    },
    DropView {
        name: String,
        if_exists: bool,
    },
    Begin,
    Commit,
    Rollback,
    Checkpoint,
    Pragma {
        name: String,
        value: Option<AstExpr>,
    },
    Explain(Box<Statement>),
    ShowTables,
    CopyFrom {
        table: String,
        path: String,
        options: CopyOptions,
    },
    CopyTo {
        table: String,
        path: String,
        options: CopyOptions,
    },
}

/// Options of COPY ... FROM/TO.
#[derive(Debug, Clone)]
pub struct CopyOptions {
    pub header: bool,
    pub delimiter: char,
    pub null_string: String,
}

impl Default for CopyOptions {
    fn default() -> Self {
        CopyOptions { header: true, delimiter: ',', null_string: String::new() }
    }
}

/// The source of an INSERT.
#[derive(Debug, Clone)]
pub enum InsertSource {
    Values(Vec<Vec<AstExpr>>),
    Select(Box<SelectStatement>),
}

/// One column of CREATE TABLE.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    pub name: String,
    pub type_name: String,
    pub not_null: bool,
    pub default: Option<AstExpr>,
}

/// A SELECT statement (possibly with CTEs and UNIONs).
#[derive(Debug, Clone)]
pub struct SelectStatement {
    pub ctes: Vec<(String, SelectStatement)>,
    pub body: SelectBody,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<AstExpr>,
    pub offset: Option<AstExpr>,
}

/// The set-operation structure of a SELECT.
/// `Query` carries a full block inline; union arms are already boxed, and
/// a query holds only a handful of these at once.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SelectBody {
    Query(QueryBlock),
    Union { left: Box<SelectBody>, right: Box<SelectBody>, all: bool },
}

/// One plain query block.
#[derive(Debug, Clone)]
pub struct QueryBlock {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub filter: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
}

/// One SELECT-list item.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// expression with optional alias
    Expr { expr: AstExpr, alias: Option<String> },
}

/// A FROM-clause table reference.
#[derive(Debug, Clone)]
pub enum TableRef {
    Named {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<SelectStatement>,
        alias: String,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<AstExpr>,
    },
    /// A table-producing function call, e.g. `read_csv('f.csv', header = true)`.
    /// Arguments are literals, optionally named (`(None, v)` is positional).
    Function {
        name: String,
        args: Vec<(Option<String>, Value)>,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// ORDER BY item.
#[derive(Debug, Clone)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub descending: bool,
    /// None = engine default (NULLS LAST asc / NULLS FIRST desc).
    pub nulls_first: Option<bool>,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

/// A parse-level expression.
#[derive(Debug, Clone)]
pub enum AstExpr {
    Literal(Value),
    /// Possibly qualified column: `[table.]name`.
    Column {
        table: Option<String>,
        name: String,
    },
    Binary {
        op: BinaryOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Unary {
        minus: bool,
        child: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        child: Box<AstExpr>,
        negated: bool,
    },
    Between {
        child: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    InList {
        child: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    InSubquery {
        child: Box<AstExpr>,
        query: Box<SelectStatement>,
        negated: bool,
    },
    Exists {
        query: Box<SelectStatement>,
        negated: bool,
    },
    Like {
        child: Box<AstExpr>,
        pattern: Box<AstExpr>,
        negated: bool,
    },
    Cast {
        child: Box<AstExpr>,
        type_name: String,
    },
    Case {
        operand: Option<Box<AstExpr>>,
        branches: Vec<(AstExpr, AstExpr)>,
        else_expr: Option<Box<AstExpr>>,
    },
    /// Function call; `distinct` applies to aggregates, `star` to COUNT(*).
    Function {
        name: String,
        args: Vec<AstExpr>,
        distinct: bool,
        star: bool,
    },
}

impl AstExpr {
    /// Canonical textual form for output column naming and GROUP BY
    /// matching (normalized: lowercase identifiers, canonical spacing).
    pub fn display_name(&self) -> String {
        match self {
            AstExpr::Literal(v) => v.to_string(),
            AstExpr::Column { table: Some(t), name } => {
                format!("{}.{}", t.to_lowercase(), name.to_lowercase())
            }
            AstExpr::Column { table: None, name } => name.to_lowercase(),
            AstExpr::Binary { op, left, right } => {
                let o = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::Mod => "%",
                    BinaryOp::Eq => "=",
                    BinaryOp::NotEq => "<>",
                    BinaryOp::Lt => "<",
                    BinaryOp::LtEq => "<=",
                    BinaryOp::Gt => ">",
                    BinaryOp::GtEq => ">=",
                    BinaryOp::And => "AND",
                    BinaryOp::Or => "OR",
                    BinaryOp::Concat => "||",
                };
                format!("({} {} {})", left.display_name(), o, right.display_name())
            }
            AstExpr::Unary { minus, child } => {
                format!("({}{})", if *minus { "-" } else { "+" }, child.display_name())
            }
            AstExpr::Not(c) => format!("(NOT {})", c.display_name()),
            AstExpr::IsNull { child, negated } => {
                format!("({} IS {}NULL)", child.display_name(), if *negated { "NOT " } else { "" })
            }
            AstExpr::Between { child, low, high, negated } => format!(
                "({} {}BETWEEN {} AND {})",
                child.display_name(),
                if *negated { "NOT " } else { "" },
                low.display_name(),
                high.display_name()
            ),
            AstExpr::InList { child, negated, .. } => {
                format!("({} {}IN (...))", child.display_name(), if *negated { "NOT " } else { "" })
            }
            AstExpr::InSubquery { child, negated, .. } => {
                format!(
                    "({} {}IN (subquery))",
                    child.display_name(),
                    if *negated { "NOT " } else { "" }
                )
            }
            AstExpr::Exists { negated, .. } => {
                format!("({}EXISTS(subquery))", if *negated { "NOT " } else { "" })
            }
            AstExpr::Like { child, pattern, negated } => format!(
                "({} {}LIKE {})",
                child.display_name(),
                if *negated { "NOT " } else { "" },
                pattern.display_name()
            ),
            AstExpr::Cast { child, type_name } => {
                format!("CAST({} AS {})", child.display_name(), type_name.to_uppercase())
            }
            AstExpr::Case { .. } => "CASE".to_string(),
            AstExpr::Function { name, args, distinct, star } => {
                if *star {
                    format!("{}(*)", name.to_lowercase())
                } else {
                    format!(
                        "{}({}{})",
                        name.to_lowercase(),
                        if *distinct { "DISTINCT " } else { "" },
                        args.iter().map(AstExpr::display_name).collect::<Vec<_>>().join(", ")
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        let e = AstExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(AstExpr::Column { table: Some("T".into()), name: "X".into() }),
            right: Box::new(AstExpr::Literal(Value::Integer(1))),
        };
        assert_eq!(e.display_name(), "(t.x + 1)");
        let f = AstExpr::Function {
            name: "SUM".into(),
            args: vec![AstExpr::Column { table: None, name: "v".into() }],
            distinct: true,
            star: false,
        };
        assert_eq!(f.display_name(), "sum(DISTINCT v)");
    }
}
