//! Recursive-descent SQL parser: token stream → [`Statement`] ASTs.
//!
//! Covers the dialect the engine executes: SELECT (joins, GROUP BY /
//! HAVING, ORDER BY / LIMIT, DISTINCT, UNION ALL, subqueries, CTEs),
//! INSERT / UPDATE / DELETE, CREATE / DROP TABLE and VIEW, COPY, PRAGMA,
//! EXPLAIN and transaction control. Expression parsing is precedence
//! climbing; anything unsupported fails here with a position rather than
//! deep in the binder.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use eider_vector::{EiderError, Result, Value};

/// Parse a semicolon-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, sql: sql.to_string(), depth: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_token(&Token::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.parse_statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    sql: String,
    /// Expression nesting depth, bounded to keep recursion off the guard
    /// page (corrupt or adversarial inputs must error, not abort; §3's
    /// "distrust everything" applies to inputs too).
    depth: usize,
}

/// Maximum expression nesting depth.
const MAX_EXPR_DEPTH: usize = 64;

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> EiderError {
        EiderError::Parse(format!("{} (near token {} of `{}`)", msg.into(), self.pos, self.sql))
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_string(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.error(format!("expected string literal, found {other:?}"))),
        }
    }

    // ---------------- statements ----------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") || self.peek_kw("WITH") || self.peek_kw("VALUES") {
            return Ok(Statement::Select(self.parse_select()?));
        }
        if self.peek_kw("EXPLAIN") {
            self.pos += 1;
            return Ok(Statement::Explain(Box::new(self.parse_statement()?)));
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.expect_ident()?;
            let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("CREATE") {
            return self.parse_create();
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                let if_exists = self.parse_if_exists()?;
                let name = self.expect_ident()?;
                return Ok(Statement::DropTable { name, if_exists });
            }
            if self.eat_kw("VIEW") {
                let if_exists = self.parse_if_exists()?;
                let name = self.expect_ident()?;
                return Ok(Statement::DropView { name, if_exists });
            }
            return Err(self.error("expected TABLE or VIEW after DROP"));
        }
        if self.eat_kw("BEGIN") || self.eat_kw("START") {
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") || self.eat_kw("ABORT") {
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("CHECKPOINT") {
            return Ok(Statement::Checkpoint);
        }
        if self.eat_kw("PRAGMA") {
            let name = self.expect_ident()?;
            let value = if self.eat_token(&Token::Eq) {
                Some(self.parse_expr()?)
            } else if self.eat_token(&Token::LParen) {
                let v = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Some(v)
            } else {
                None
            };
            return Ok(Statement::Pragma { name, value });
        }
        if self.eat_kw("SHOW") {
            self.expect_kw("TABLES")?;
            return Ok(Statement::ShowTables);
        }
        if self.eat_kw("COPY") {
            return self.parse_copy();
        }
        Err(self.error(format!("unrecognized statement start {:?}", self.peek())))
    }

    fn parse_if_exists(&mut self) -> Result<bool> {
        if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        let mut columns = None;
        if self.peek() == Some(&Token::LParen) {
            // Distinguish column list from `INSERT INTO t (SELECT ...)`.
            if !matches!(self.peek_at(1), Some(t) if t.is_kw("SELECT") || t.is_kw("WITH")) {
                self.expect_token(&Token::LParen)?;
                let mut cols = vec![self.expect_ident()?];
                while self.eat_token(&Token::Comma) {
                    cols.push(self.expect_ident()?);
                }
                self.expect_token(&Token::RParen)?;
                columns = Some(cols);
            }
        }
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_token(&Token::LParen)?;
                let mut row = vec![self.parse_expr()?];
                while self.eat_token(&Token::Comma) {
                    row.push(self.parse_expr()?);
                }
                self.expect_token(&Token::RParen)?;
                rows.push(row);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            let wrapped = self.eat_token(&Token::LParen);
            let select = self.parse_select()?;
            if wrapped {
                self.expect_token(&Token::RParen)?;
            }
            InsertSource::Select(Box::new(select))
        };
        Ok(Statement::Insert { table, columns, source })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        let table = self.expect_ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_token(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    fn parse_create(&mut self) -> Result<Statement> {
        let or_replace = if self.eat_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        if self.eat_kw("VIEW") {
            let name = self.expect_ident()?;
            self.expect_kw("AS")?;
            // Store the remaining statement text verbatim: views re-parse
            // at bind time.
            let start = self.pos;
            let select = self.parse_select()?;
            let _ = select;
            let sql = self.render_tokens(start, self.pos);
            return Ok(Statement::CreateView { name, sql, or_replace });
        }
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        if self.eat_kw("AS") {
            let select = self.parse_select()?;
            return Ok(Statement::CreateTable {
                name,
                columns: Vec::new(),
                if_not_exists,
                as_select: Some(Box::new(select)),
            });
        }
        self.expect_token(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_ident()?;
            let type_name = self.parse_type_name()?;
            let mut not_null = false;
            let mut default = None;
            loop {
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    not_null = true;
                } else if self.eat_kw("DEFAULT") {
                    default = Some(self.parse_expr()?);
                } else if self.eat_kw("PRIMARY") {
                    // PRIMARY KEY is accepted and treated as NOT NULL (no
                    // index structures; see DESIGN.md non-goals).
                    self.expect_kw("KEY")?;
                    not_null = true;
                } else if self.eat_kw("NULL") {
                    // explicit NULL-able marker
                } else {
                    break;
                }
            }
            columns.push(ColumnDef { name: col_name, type_name, not_null, default });
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns, if_not_exists, as_select: None })
    }

    fn parse_type_name(&mut self) -> Result<String> {
        let base = self.expect_ident()?;
        // Swallow parametrized types: VARCHAR(20), DECIMAL(10,2).
        if self.eat_token(&Token::LParen) {
            while !self.eat_token(&Token::RParen) {
                if self.advance().is_none() {
                    return Err(self.error("unterminated type parameters"));
                }
            }
        }
        Ok(base)
    }

    fn parse_copy(&mut self) -> Result<Statement> {
        let table = self.expect_ident()?;
        let to = if self.eat_kw("FROM") {
            false
        } else {
            self.expect_kw("TO")?;
            true
        };
        let path = self.expect_string()?;
        let mut options = CopyOptions::default();
        if self.eat_token(&Token::LParen) {
            loop {
                let opt = self.expect_ident()?.to_ascii_uppercase();
                match opt.as_str() {
                    "HEADER" => {
                        options.header = match self.peek() {
                            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => {
                                self.pos += 1;
                                false
                            }
                            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => {
                                self.pos += 1;
                                true
                            }
                            _ => true,
                        }
                    }
                    "DELIMITER" | "DELIM" | "SEP" => {
                        let s = self.expect_string()?;
                        options.delimiter = s.chars().next().unwrap_or(',');
                    }
                    "NULL" | "NULLSTR" => {
                        options.null_string = self.expect_string()?;
                    }
                    other => return Err(self.error(format!("unknown COPY option {other}"))),
                }
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        Ok(if to {
            Statement::CopyTo { table, path, options }
        } else {
            Statement::CopyFrom { table, path, options }
        })
    }

    /// Reconstruct SQL text from tokens (for view definitions).
    fn render_tokens(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for t in &self.tokens[start..end] {
            if !out.is_empty() {
                out.push(' ');
            }
            match t {
                Token::Ident(s) => out.push_str(s),
                Token::QuotedIdent(s) => {
                    out.push('"');
                    out.push_str(&s.replace('"', "\"\""));
                    out.push('"');
                }
                Token::Integer(v) => out.push_str(&v.to_string()),
                Token::Float(v) => out.push_str(&v.to_string()),
                Token::Str(s) => {
                    out.push('\'');
                    out.push_str(&s.replace('\'', "''"));
                    out.push('\'');
                }
                Token::LParen => out.push('('),
                Token::RParen => out.push(')'),
                Token::Comma => out.push(','),
                Token::Semicolon => out.push(';'),
                Token::Star => out.push('*'),
                Token::Plus => out.push('+'),
                Token::Minus => out.push('-'),
                Token::Slash => out.push('/'),
                Token::Percent => out.push('%'),
                Token::Eq => out.push('='),
                Token::NotEq => out.push_str("<>"),
                Token::Lt => out.push('<'),
                Token::LtEq => out.push_str("<="),
                Token::Gt => out.push('>'),
                Token::GtEq => out.push_str(">="),
                Token::Dot => out.push('.'),
                Token::Concat => out.push_str("||"),
            }
        }
        out
    }

    // ---------------- SELECT ----------------

    pub fn parse_select(&mut self) -> Result<SelectStatement> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.expect_ident()?;
                self.expect_kw("AS")?;
                self.expect_token(&Token::LParen)?;
                let query = self.parse_select()?;
                self.expect_token(&Token::RParen)?;
                ctes.push((name, query));
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_select_body()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                let nulls_first = if self.eat_kw("NULLS") {
                    if self.eat_kw("FIRST") {
                        Some(true)
                    } else {
                        self.expect_kw("LAST")?;
                        Some(false)
                    }
                } else {
                    None
                };
                order_by.push(OrderItem { expr, descending, nulls_first });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("LIMIT") {
                limit = Some(self.parse_expr()?);
            } else if self.eat_kw("OFFSET") {
                offset = Some(self.parse_expr()?);
            } else {
                break;
            }
        }
        Ok(SelectStatement { ctes, body, order_by, limit, offset })
    }

    fn parse_select_body(&mut self) -> Result<SelectBody> {
        let mut left = SelectBody::Query(self.parse_query_block()?);
        while self.peek_kw("UNION") {
            self.pos += 1;
            let all = self.eat_kw("ALL");
            if !all {
                self.eat_kw("DISTINCT");
            }
            let right = SelectBody::Query(self.parse_query_block()?);
            left = SelectBody::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    fn parse_query_block(&mut self) -> Result<QueryBlock> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut projection = Vec::new();
        loop {
            if self.eat_token(&Token::Star) {
                projection.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Some(Token::Ident(_)))
                && self.peek_at(1) == Some(&Token::Dot)
                && self.peek_at(2) == Some(&Token::Star)
            {
                let t = self.expect_ident()?;
                self.pos += 2;
                projection.push(SelectItem::QualifiedWildcard(t));
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_ident()?)
                } else {
                    match self.peek() {
                        Some(Token::Ident(s)) if !is_reserved_after_select_item(s) => {
                            let a = s.clone();
                            self.pos += 1;
                            Some(a)
                        }
                        Some(Token::QuotedIdent(s)) => {
                            let a = s.clone();
                            self.pos += 1;
                            Some(a)
                        }
                        _ => None,
                    }
                };
                projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") { Some(self.parse_table_ref()?) } else { None };
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.parse_expr()?) } else { None };
        Ok(QueryBlock { distinct, projection, from, filter, group_by, having })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.eat_token(&Token::Comma) {
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if kind != JoinKind::Cross {
                self.expect_kw("ON")?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableRef> {
        if self.eat_token(&Token::LParen) {
            let query = self.parse_select()?;
            self.expect_token(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.expect_ident()?;
        if self.eat_token(&Token::LParen) {
            let args = self.parse_table_func_args()?;
            let alias = if self.eat_kw("AS") {
                Some(self.expect_ident()?)
            } else {
                match self.peek() {
                    Some(Token::Ident(s)) if !is_reserved_after_table(s) => {
                        let a = s.clone();
                        self.pos += 1;
                        Some(a)
                    }
                    Some(Token::QuotedIdent(s)) => {
                        let a = s.clone();
                        self.pos += 1;
                        Some(a)
                    }
                    _ => None,
                }
            };
            return Ok(TableRef::Function { name, args, alias });
        }
        let alias = if self.eat_kw("AS") {
            Some(self.expect_ident()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !is_reserved_after_table(s) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                Some(Token::QuotedIdent(s)) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef::Named { name, alias })
    }

    /// Arguments of a FROM-clause table function: comma-separated
    /// literals, each optionally named (`header = true`). The opening
    /// paren has been consumed; consumes through the closing paren.
    fn parse_table_func_args(&mut self) -> Result<Vec<(Option<String>, Value)>> {
        let mut args = Vec::new();
        if self.eat_token(&Token::RParen) {
            return Ok(args);
        }
        loop {
            let name = match (self.peek(), self.peek_at(1)) {
                (Some(Token::Ident(s)), Some(Token::Eq)) => {
                    let n = s.to_ascii_lowercase();
                    self.pos += 2;
                    Some(n)
                }
                _ => None,
            };
            let value = self.parse_table_func_literal()?;
            args.push((name, value));
            if !self.eat_token(&Token::Comma) {
                self.expect_token(&Token::RParen)?;
                return Ok(args);
            }
        }
    }

    fn parse_table_func_literal(&mut self) -> Result<Value> {
        let value = match self.peek().cloned() {
            Some(Token::Str(s)) => Value::Varchar(s),
            Some(Token::Integer(v)) => Value::BigInt(v),
            Some(Token::Float(v)) => Value::Double(v),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Value::Boolean(true),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Value::Boolean(false),
            other => {
                return Err(EiderError::Parse(format!(
                    "table function arguments must be literals, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        Ok(value)
    }

    // ---------------- expressions (precedence climbing) ----------------

    pub fn parse_expr(&mut self) -> Result<AstExpr> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(EiderError::Parse(format!(
                "expression nesting exceeds the maximum depth of {MAX_EXPR_DEPTH}"
            )));
        }
        let result = self.parse_or();
        self.depth -= 1;
        result
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left =
                AstExpr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left =
                AstExpr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.eat_kw("NOT") {
            if self.peek_kw("EXISTS") {
                // NOT EXISTS(...)
                let e = self.parse_not()?;
                if let AstExpr::Exists { query, negated } = e {
                    return Ok(AstExpr::Exists { query, negated: !negated });
                }
                return Ok(AstExpr::Not(Box::new(e)));
            }
            return Ok(AstExpr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<AstExpr> {
        let left = self.parse_additive()?;
        // postfix predicates: IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(AstExpr::IsNull { child: Box::new(left), negated });
        }
        let negated = if self.peek_kw("NOT")
            && matches!(self.peek_at(1), Some(t) if t.is_kw("BETWEEN") || t.is_kw("IN") || t.is_kw("LIKE"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                child: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_token(&Token::LParen)?;
            if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                let query = self.parse_select()?;
                self.expect_token(&Token::RParen)?;
                return Ok(AstExpr::InSubquery {
                    child: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_token(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_token(&Token::RParen)?;
            return Ok(AstExpr::InList { child: Box::new(left), list, negated });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(AstExpr::Like {
                child: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error("dangling NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::NotEq) => BinaryOp::NotEq,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::LtEq) => BinaryOp::LtEq,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) })
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        if self.eat_token(&Token::Minus) {
            return Ok(AstExpr::Unary { minus: true, child: Box::new(self.parse_unary()?) });
        }
        if self.eat_token(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Integer(v)) => {
                self.pos += 1;
                // Literals small enough become INTEGER, else BIGINT.
                Ok(AstExpr::Literal(if v >= i64::from(i32::MIN) && v <= i64::from(i32::MAX) {
                    Value::Integer(v as i32)
                } else {
                    Value::BigInt(v)
                }))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Double(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Varchar(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                    return Err(self.error(
                        "scalar subqueries in expressions are not supported \
                         (IN (SELECT ...) and EXISTS are)",
                    ));
                }
                let e = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => {
                // Keyword-led expressions.
                if word.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(AstExpr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(AstExpr::Literal(Value::Boolean(true)));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(AstExpr::Literal(Value::Boolean(false)));
                }
                if word.eq_ignore_ascii_case("DATE") {
                    if let Some(Token::Str(_)) = self.peek_at(1) {
                        self.pos += 1;
                        let s = self.expect_string()?;
                        return Ok(AstExpr::Literal(Value::Date(eider_vector::date::parse_date(
                            &s,
                        )?)));
                    }
                }
                if word.eq_ignore_ascii_case("TIMESTAMP") {
                    if let Some(Token::Str(_)) = self.peek_at(1) {
                        self.pos += 1;
                        let s = self.expect_string()?;
                        return Ok(AstExpr::Literal(Value::Timestamp(
                            eider_vector::date::parse_timestamp(&s)?,
                        )));
                    }
                }
                if word.eq_ignore_ascii_case("CAST") {
                    self.pos += 1;
                    self.expect_token(&Token::LParen)?;
                    let child = self.parse_expr()?;
                    self.expect_kw("AS")?;
                    let type_name = self.parse_type_name()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(AstExpr::Cast { child: Box::new(child), type_name });
                }
                if word.eq_ignore_ascii_case("CASE") {
                    return self.parse_case();
                }
                if word.eq_ignore_ascii_case("EXISTS") {
                    self.pos += 1;
                    self.expect_token(&Token::LParen)?;
                    let query = self.parse_select()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(AstExpr::Exists { query: Box::new(query), negated: false });
                }
                // Function call?
                if self.peek_at(1) == Some(&Token::LParen) {
                    self.pos += 2;
                    if self.eat_token(&Token::Star) {
                        self.expect_token(&Token::RParen)?;
                        return Ok(AstExpr::Function {
                            name: word,
                            args: Vec::new(),
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if !self.eat_token(&Token::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat_token(&Token::Comma) {
                            args.push(self.parse_expr()?);
                        }
                        self.expect_token(&Token::RParen)?;
                    }
                    return Ok(AstExpr::Function { name: word, args, distinct, star: false });
                }
                // Qualified or bare column.
                self.pos += 1;
                if self.eat_token(&Token::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(AstExpr::Column { table: Some(word), name: col });
                }
                Ok(AstExpr::Column { table: None, name: word })
            }
            Some(Token::QuotedIdent(word)) => {
                self.pos += 1;
                if self.eat_token(&Token::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(AstExpr::Column { table: Some(word), name: col });
                }
                Ok(AstExpr::Column { table: None, name: word })
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_case(&mut self) -> Result<AstExpr> {
        self.expect_kw("CASE")?;
        let operand = if !self.peek_kw("WHEN") { Some(Box::new(self.parse_expr()?)) } else { None };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("ELSE") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(AstExpr::Case { operand, branches, else_expr })
    }
}

fn is_reserved_after_select_item(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "UNION", "AS", "ON",
        "JOIN", "INNER", "LEFT", "CROSS", "AND", "OR", "NOT", "WHEN", "THEN", "ELSE", "END", "ASC",
        "DESC", "NULLS",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

fn is_reserved_after_table(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "UNION", "ON", "JOIN", "INNER",
        "LEFT", "CROSS", "SET", "AND", "OR", "USING",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(sql: &str) -> Statement {
        let mut v = parse_statements(sql).unwrap();
        assert_eq!(v.len(), 1, "{sql}");
        v.remove(0)
    }

    #[test]
    fn select_with_all_clauses() {
        let s = one("SELECT a, sum(b) AS total FROM t WHERE c > 5 GROUP BY a \
             HAVING sum(b) > 10 ORDER BY total DESC NULLS LAST LIMIT 5 OFFSET 2");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.order_by.len(), 1);
        assert!(sel.order_by[0].descending);
        assert_eq!(sel.order_by[0].nulls_first, Some(false));
        assert!(sel.limit.is_some() && sel.offset.is_some());
        let SelectBody::Query(q) = &sel.body else { panic!() };
        assert_eq!(q.projection.len(), 2);
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
    }

    #[test]
    fn joins() {
        let s = one("SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z");
        let Statement::Select(sel) = s else { panic!() };
        let SelectBody::Query(q) = &sel.body else { panic!() };
        let Some(TableRef::Join { kind, .. }) = &q.from else { panic!() };
        assert_eq!(*kind, JoinKind::Left);
    }

    #[test]
    fn implicit_cross_join_and_aliases() {
        let s = one("SELECT t1.a FROM t t1, t t2 WHERE t1.a = t2.a");
        let Statement::Select(sel) = s else { panic!() };
        let SelectBody::Query(q) = &sel.body else { panic!() };
        assert!(matches!(&q.from, Some(TableRef::Join { kind: JoinKind::Cross, .. })));
    }

    #[test]
    fn insert_forms() {
        let s = one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
        let Statement::Insert { columns, source, .. } = s else { panic!() };
        assert_eq!(columns.unwrap().len(), 2);
        let InsertSource::Values(rows) = source else { panic!() };
        assert_eq!(rows.len(), 2);
        let s = one("INSERT INTO t SELECT * FROM u");
        assert!(matches!(s, Statement::Insert { source: InsertSource::Select(_), .. }));
    }

    #[test]
    fn the_papers_wrangling_update() {
        let s = one("UPDATE t SET d = NULL WHERE d = -999");
        let Statement::Update { table, assignments, filter } = s else { panic!() };
        assert_eq!(table, "t");
        assert_eq!(assignments.len(), 1);
        assert!(matches!(assignments[0].1, AstExpr::Literal(Value::Null)));
        assert!(filter.is_some());
    }

    #[test]
    fn create_table_with_constraints() {
        let s = one("CREATE TABLE IF NOT EXISTS sensors (id INTEGER PRIMARY KEY, \
             v DOUBLE DEFAULT 0.0, name VARCHAR(20) NOT NULL, ts TIMESTAMP)");
        let Statement::CreateTable { columns, if_not_exists, .. } = s else { panic!() };
        assert!(if_not_exists);
        assert_eq!(columns.len(), 4);
        assert!(columns[0].not_null); // PRIMARY KEY implies NOT NULL
        assert!(columns[1].default.is_some());
        assert!(columns[2].not_null);
    }

    #[test]
    fn create_view_round_trips_sql() {
        let s = one("CREATE VIEW v AS SELECT a + 1 FROM t WHERE b = 'x''y'");
        let Statement::CreateView { sql, .. } = s else { panic!() };
        // The stored text must re-parse.
        let reparsed = parse_statements(&sql).unwrap();
        assert!(matches!(reparsed[0], Statement::Select(_)));
    }

    #[test]
    fn expressions() {
        let s = one("SELECT CASE WHEN a BETWEEN 1 AND 5 THEN 'low' ELSE upper(b) END, \
             a IN (1, 2, 3), c IS NOT NULL, d NOT LIKE '%x%', \
             CAST(e AS BIGINT), -f + 2 * 3, DATE '2020-01-12' FROM t");
        let Statement::Select(sel) = s else { panic!() };
        let SelectBody::Query(q) = &sel.body else { panic!() };
        assert_eq!(q.projection.len(), 7);
    }

    #[test]
    fn subquery_predicates() {
        let s = one("SELECT * FROM t WHERE x IN (SELECT y FROM u) AND EXISTS(SELECT 1 FROM v)");
        let Statement::Select(_) = s else { panic!() };
        let err = parse_statements("SELECT (SELECT 1)").unwrap_err();
        assert!(err.to_string().contains("scalar subqueries"));
    }

    #[test]
    fn union_and_ctes() {
        let s = one("WITH big AS (SELECT a FROM t WHERE a > 100) \
             SELECT * FROM big UNION ALL SELECT a FROM u");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.ctes.len(), 1);
        assert!(matches!(sel.body, SelectBody::Union { all: true, .. }));
    }

    #[test]
    fn utility_statements() {
        assert!(matches!(one("BEGIN TRANSACTION"), Statement::Begin));
        assert!(matches!(one("COMMIT"), Statement::Commit));
        assert!(matches!(one("ROLLBACK"), Statement::Rollback));
        assert!(matches!(one("CHECKPOINT"), Statement::Checkpoint));
        assert!(matches!(one("SHOW TABLES"), Statement::ShowTables));
        let s = one("PRAGMA memory_limit = 1000000");
        assert!(matches!(s, Statement::Pragma { .. }));
        let s = one("EXPLAIN SELECT 1");
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn copy_statements() {
        let s = one("COPY t FROM 'data.csv' (HEADER, DELIMITER '|', NULL '-999')");
        let Statement::CopyFrom { options, .. } = s else { panic!() };
        assert!(options.header);
        assert_eq!(options.delimiter, '|');
        assert_eq!(options.null_string, "-999");
        assert!(matches!(one("COPY t TO 'out.csv'"), Statement::CopyTo { .. }));
    }

    #[test]
    fn multiple_statements() {
        let v = parse_statements("SELECT 1; SELECT 2;; SELECT 3").unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn parse_errors_are_errors() {
        for bad in ["SELECT a,", "INSERT t", "CREATE TABLE t", "SELECT * FROM", "UPDATE"] {
            assert!(parse_statements(bad).is_err(), "{bad} should fail");
        }
    }
}
