//! Synthetic workload generators for tests, examples and benchmarks.
//!
//! §2 describes the workload mix an embedded analytical system faces:
//! large scans with aggregates and joins, bulk appends as new data
//! arrives, and data-wrangling updates (the `-999`-means-missing
//! convention the paper quotes from McMullen). These generators produce
//! exactly those shapes, deterministically from a seed.

use eider_vector::{DataChunk, LogicalType, Result, Value, VECTOR_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator state.
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    pub fn new(seed: u64) -> Self {
        Workload { rng: StdRng::seed_from_u64(seed) }
    }

    /// A Zipf-ish skewed key in `[0, n)`: heavy head, long tail (used for
    /// join/group keys; exact Zipf is unnecessary for the benches).
    pub fn skewed_key(&mut self, n: u64) -> u64 {
        let u: f64 = self.rng.gen_range(0.0f64..1.0);
        let x = u.powi(3); // cube concentrates mass near zero
        (x * n as f64) as u64
    }

    /// The §2 wrangling table: `(id INTEGER, d INTEGER, v DOUBLE)`, where a
    /// fraction of `d` holds the sentinel `-999` for missing data.
    pub fn wrangling_chunks(
        &mut self,
        rows: usize,
        missing_fraction: f64,
    ) -> Result<Vec<DataChunk>> {
        let types = [LogicalType::Integer, LogicalType::Integer, LogicalType::Double];
        let mut chunks = Vec::new();
        let mut produced = 0usize;
        while produced < rows {
            let n = (rows - produced).min(VECTOR_SIZE);
            let mut chunk = DataChunk::new(&types);
            for i in 0..n {
                let id = (produced + i) as i32;
                let d = if self.rng.gen_bool(missing_fraction) {
                    -999
                } else {
                    self.rng.gen_range(0..10_000)
                };
                let v = self.rng.gen_range(0.0..1000.0);
                chunk.append_row(&[Value::Integer(id), Value::Integer(d), Value::Double(v)])?;
            }
            chunks.push(chunk);
            produced += n;
        }
        Ok(chunks)
    }

    /// Star-schema-ish fact rows `(order_id, customer_id, amount, quantity,
    /// order_date)` with skewed customer keys — the OLAP scan/join/aggregate
    /// substrate (a TPC-H-lite `orders`).
    pub fn orders_chunks(&mut self, rows: usize, customers: u64) -> Result<Vec<DataChunk>> {
        let types = [
            LogicalType::BigInt,
            LogicalType::BigInt,
            LogicalType::Double,
            LogicalType::Integer,
            LogicalType::Date,
        ];
        let base_date = 18262; // 2020-01-01
        let mut chunks = Vec::new();
        let mut produced = 0usize;
        while produced < rows {
            let n = (rows - produced).min(VECTOR_SIZE);
            let mut chunk = DataChunk::new(&types);
            for i in 0..n {
                let oid = (produced + i) as i64;
                let cid = self.skewed_key(customers) as i64;
                let amount = self.rng.gen_range(1.0..500.0);
                let qty = self.rng.gen_range(1..50);
                let date = base_date + self.rng.gen_range(0..365);
                chunk.append_row(&[
                    Value::BigInt(oid),
                    Value::BigInt(cid),
                    Value::Double(amount),
                    Value::Integer(qty),
                    Value::Date(date),
                ])?;
            }
            chunks.push(chunk);
            produced += n;
        }
        Ok(chunks)
    }

    /// Dimension rows `(customer_id, name, segment)` for joining against
    /// [`Workload::orders_chunks`].
    pub fn customers_chunks(&mut self, customers: u64) -> Result<Vec<DataChunk>> {
        let types = [LogicalType::BigInt, LogicalType::Varchar, LogicalType::Varchar];
        const SEGMENTS: [&str; 5] =
            ["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"];
        let mut chunks = Vec::new();
        let mut produced = 0u64;
        while produced < customers {
            let n = ((customers - produced) as usize).min(VECTOR_SIZE);
            let mut chunk = DataChunk::new(&types);
            for i in 0..n {
                let cid = (produced + i as u64) as i64;
                let seg = SEGMENTS[self.rng.gen_range(0..SEGMENTS.len())];
                chunk.append_row(&[
                    Value::BigInt(cid),
                    Value::Varchar(format!("Customer#{cid:09}")),
                    Value::Varchar(seg.to_string()),
                ])?;
            }
            chunks.push(chunk);
            produced += n as u64;
        }
        Ok(chunks)
    }

    /// Edge-node sensor readings `(sensor_id, ts, reading)` with occasional
    /// out-of-range spikes (for the edge pre-aggregation example).
    pub fn sensor_chunks(&mut self, rows: usize, sensors: u32) -> Result<Vec<DataChunk>> {
        let types = [LogicalType::Integer, LogicalType::Timestamp, LogicalType::Double];
        let base_ts: i64 = 1_577_836_800_000_000; // 2020-01-01 00:00:00
        let mut chunks = Vec::new();
        let mut produced = 0usize;
        while produced < rows {
            let n = (rows - produced).min(VECTOR_SIZE);
            let mut chunk = DataChunk::new(&types);
            for i in 0..n {
                let sid = self.rng.gen_range(0..sensors) as i32;
                let ts = base_ts + ((produced + i) as i64) * 1_000_000;
                let reading = if self.rng.gen_bool(0.01) {
                    self.rng.gen_range(500.0..1000.0) // spike
                } else {
                    self.rng.gen_range(15.0..30.0)
                };
                chunk.append_row(&[
                    Value::Integer(sid),
                    Value::Timestamp(ts),
                    Value::Double(reading),
                ])?;
            }
            chunks.push(chunk);
            produced += n;
        }
        Ok(chunks)
    }

    /// Raw integer column (for resilience/AN-code benches).
    pub fn int_column(&mut self, rows: usize, max: i32) -> Vec<i32> {
        (0..rows).map(|_| self.rng.gen_range(0..max)).collect()
    }
}

/// Format chunks row count (test helper).
pub fn total_rows(chunks: &[DataChunk]) -> usize {
    chunks.iter().map(DataChunk::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = Workload::new(7).wrangling_chunks(5000, 0.25).unwrap();
        let b = Workload::new(7).wrangling_chunks(5000, 0.25).unwrap();
        assert_eq!(total_rows(&a), 5000);
        assert_eq!(a[0].to_rows(), b[0].to_rows());
    }

    #[test]
    fn missing_fraction_roughly_honored() {
        let chunks = Workload::new(1).wrangling_chunks(20_000, 0.25).unwrap();
        let missing: usize = chunks
            .iter()
            .flat_map(|c| c.to_rows())
            .filter(|r| r[1] == Value::Integer(-999))
            .count();
        let frac = missing as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "{frac}");
    }

    #[test]
    fn skewed_keys_are_skewed() {
        let mut w = Workload::new(3);
        let keys: Vec<u64> = (0..10_000).map(|_| w.skewed_key(1000)).collect();
        let head = keys.iter().filter(|&&k| k < 100).count();
        assert!(head > 3000, "head of distribution too light: {head}");
        assert!(keys.iter().all(|&k| k < 1000));
    }

    #[test]
    fn orders_and_customers_shapes() {
        let mut w = Workload::new(5);
        let orders = w.orders_chunks(3000, 100).unwrap();
        assert_eq!(total_rows(&orders), 3000);
        assert_eq!(orders[0].column_count(), 5);
        let customers = w.customers_chunks(100).unwrap();
        assert_eq!(total_rows(&customers), 100);
        // Every order's customer exists.
        let max_cid =
            orders.iter().flat_map(|c| c.to_rows()).filter_map(|r| r[1].as_i64()).max().unwrap();
        assert!(max_cid < 100);
    }

    #[test]
    fn sensor_readings_have_spikes() {
        let chunks = Workload::new(11).sensor_chunks(20_000, 16).unwrap();
        let spikes = chunks
            .iter()
            .flat_map(|c| c.to_rows())
            .filter(|r| r[2].as_f64().unwrap() > 100.0)
            .count();
        assert!(spikes > 50, "expected ~1% spikes, got {spikes}");
    }
}
