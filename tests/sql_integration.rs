//! Cross-crate integration tests: the full SQL surface against the
//! complete engine stack.

use eider::{Database, Value};

fn db() -> std::sync::Arc<Database> {
    Database::in_memory().unwrap()
}

#[test]
fn scalar_expressions_and_functions() {
    let conn = db().connect();
    let cases: Vec<(&str, Value)> = vec![
        ("SELECT 1 + 2 * 3", Value::BigInt(7)),
        ("SELECT 10 / 4", Value::Double(2.5)),
        ("SELECT 10 % 3", Value::BigInt(1)),
        ("SELECT -5", Value::BigInt(-5)),
        ("SELECT 'a' || 'b' || 1", Value::Varchar("ab1".into())),
        ("SELECT upper('quack')", Value::Varchar("QUACK".into())),
        ("SELECT substr('embedded', 1, 5)", Value::Varchar("embed".into())),
        ("SELECT length('analytics')", Value::BigInt(9)),
        ("SELECT abs(-42)", Value::BigInt(42)),
        ("SELECT round(2.567, 2)", Value::Double(2.57)),
        ("SELECT coalesce(NULL, NULL, 3)", Value::Integer(3)),
        ("SELECT nullif(5, 5)", Value::Null),
        ("SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END", Value::Varchar("b".into())),
        ("SELECT CAST('17' AS INTEGER)", Value::Integer(17)),
        ("SELECT CAST(DATE '2020-01-12' AS VARCHAR)", Value::Varchar("2020-01-12".into())),
        ("SELECT 3 BETWEEN 1 AND 5", Value::Boolean(true)),
        ("SELECT 7 IN (1, 2, 3)", Value::Boolean(false)),
        ("SELECT 'duckdb' LIKE '%uck%'", Value::Boolean(true)),
        ("SELECT NULL IS NULL", Value::Boolean(true)),
        ("SELECT 1 = 1 AND NULL IS NOT NULL", Value::Boolean(false)),
        ("SELECT sqrt(16.0)", Value::Double(4.0)),
    ];
    for (sql, expected) in cases {
        let r = conn.query(sql).unwrap();
        assert_eq!(r.scalar().unwrap(), expected, "{sql}");
    }
}

#[test]
fn null_propagation() {
    let conn = db().connect();
    for sql in [
        "SELECT 1 + NULL",
        "SELECT NULL = NULL",
        "SELECT NULL AND TRUE",
        "SELECT upper(NULL)",
        "SELECT 1 / 0", // division by zero is NULL in eider
    ] {
        let r = conn.query(sql).unwrap();
        assert!(r.scalar().unwrap().is_null(), "{sql}");
    }
}

#[test]
fn group_by_having_order_limit() {
    let conn = db().connect();
    conn.execute("CREATE TABLE sales (region VARCHAR, amount INTEGER)").unwrap();
    conn.execute(
        "INSERT INTO sales VALUES
         ('n', 10), ('n', 20), ('s', 1), ('s', 2), ('e', 100), ('w', 5), ('w', NULL)",
    )
    .unwrap();
    let r = conn
        .query(
            "SELECT region, sum(amount) AS total, count(*) AS n
             FROM sales GROUP BY region
             HAVING sum(amount) > 2
             ORDER BY total DESC LIMIT 2",
        )
        .unwrap();
    let rows = r.to_rows();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Varchar("e".into()));
    assert_eq!(rows[0][1], Value::BigInt(100));
    assert_eq!(rows[1][0], Value::Varchar("n".into()));
    assert_eq!(rows[1][1], Value::BigInt(30));
}

#[test]
fn join_varieties() {
    let conn = db().connect();
    conn.execute("CREATE TABLE a (x INTEGER, tag VARCHAR)").unwrap();
    conn.execute("CREATE TABLE b (x INTEGER, val INTEGER)").unwrap();
    conn.execute("INSERT INTO a VALUES (1, 'one'), (2, 'two'), (3, 'three')").unwrap();
    conn.execute("INSERT INTO b VALUES (1, 10), (1, 11), (3, 30), (4, 40)").unwrap();

    let r = conn.query("SELECT count(*) FROM a JOIN b ON a.x = b.x").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(3));

    let r = conn.query("SELECT count(*) FROM a LEFT JOIN b ON a.x = b.x").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(4)); // 2 for x=1, 1 for x=3, null-padded x=2

    let r = conn.query("SELECT count(*) FROM a, b").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(12));

    // Inequality join goes through the nested-loop operator:
    // a={1,2,3}, b={1,1,3,4}: pairs with a.x < b.x are (1,3),(1,4),(2,3),(2,4),(3,4).
    let r = conn.query("SELECT count(*) FROM a JOIN b ON a.x < b.x").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(5));

    // Semi/anti via IN / NOT IN subqueries.
    let r = conn.query("SELECT tag FROM a WHERE x IN (SELECT x FROM b) ORDER BY tag").unwrap();
    assert_eq!(
        r.to_rows(),
        vec![vec![Value::Varchar("one".into())], vec![Value::Varchar("three".into())]]
    );
    let r = conn.query("SELECT tag FROM a WHERE x NOT IN (SELECT x FROM b)").unwrap();
    assert_eq!(r.to_rows(), vec![vec![Value::Varchar("two".into())]]);
    let r =
        conn.query("SELECT count(*) FROM a WHERE EXISTS(SELECT 1 FROM b WHERE val > 35)").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(3));
}

#[test]
fn distinct_union_cte_views() {
    let conn = db().connect();
    conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
    conn.execute("INSERT INTO t VALUES (1), (1), (2), (3), (3), (3)").unwrap();
    let r = conn.query("SELECT DISTINCT v FROM t ORDER BY v").unwrap();
    assert_eq!(r.row_count(), 3);

    let r = conn.query("SELECT v FROM t UNION SELECT v + 10 FROM t ORDER BY 1").unwrap();
    assert_eq!(r.row_count(), 6); // {1,2,3,11,12,13}

    let r =
        conn.query("WITH big AS (SELECT v FROM t WHERE v >= 2) SELECT count(*) FROM big").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(4));

    conn.execute("CREATE VIEW doubled AS SELECT v * 2 AS d FROM t").unwrap();
    let r = conn.query("SELECT max(d) FROM doubled").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(6));
    conn.execute("DROP VIEW doubled").unwrap();
    assert!(conn.query("SELECT * FROM doubled").is_err());
}

#[test]
fn subquery_in_from_and_ctas() {
    let conn = db().connect();
    conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
    conn.execute("INSERT INTO t VALUES (1), (2), (3), (4)").unwrap();
    let r = conn
        .query("SELECT avg(sq.doubled) FROM (SELECT v * 2 AS doubled FROM t WHERE v > 1) sq")
        .unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Double(6.0));

    conn.execute("CREATE TABLE big AS SELECT v, v * v AS sq FROM t WHERE v >= 3").unwrap();
    let r = conn.query("SELECT sum(sq) FROM big").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(25));
}

#[test]
fn insert_defaults_and_constraints() {
    let conn = db().connect();
    conn.execute("CREATE TABLE items (id INTEGER NOT NULL, qty INTEGER DEFAULT 1, note VARCHAR)")
        .unwrap();
    conn.execute("INSERT INTO items (id) VALUES (7)").unwrap();
    let r = conn.query("SELECT id, qty, note FROM items").unwrap();
    assert_eq!(r.to_rows()[0], vec![Value::Integer(7), Value::Integer(1), Value::Null]);
    let err = conn.execute("INSERT INTO items (id) VALUES (NULL)").unwrap_err();
    assert!(err.to_string().contains("NOT NULL"), "{err}");
    // Failed statement rolled back: nothing extra in the table.
    let r = conn.query("SELECT count(*) FROM items").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(1));
}

#[test]
fn update_delete_with_expressions() {
    let conn = db().connect();
    conn.execute("CREATE TABLE acc (id INTEGER, bal DOUBLE)").unwrap();
    conn.execute("INSERT INTO acc VALUES (1, 100.0), (2, 50.0), (3, 10.0)").unwrap();
    // Expression referencing the old value.
    conn.execute("UPDATE acc SET bal = bal * 1.1 WHERE bal >= 50").unwrap();
    let r = conn.query("SELECT round(sum(bal), 2) FROM acc").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Double(175.0));
    let n = conn.execute("DELETE FROM acc WHERE bal < 20").unwrap();
    assert_eq!(n, 1);
    let r = conn.query("SELECT count(*) FROM acc").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(2));
}

#[test]
fn multi_column_update_single_statement() {
    let conn = db().connect();
    conn.execute("CREATE TABLE p (x INTEGER, y INTEGER, z VARCHAR)").unwrap();
    conn.execute("INSERT INTO p VALUES (1, 2, 'a'), (3, 4, 'b')").unwrap();
    conn.execute("UPDATE p SET x = x + y, y = 0 WHERE z = 'b'").unwrap();
    let r = conn.query("SELECT x, y FROM p WHERE z = 'b'").unwrap();
    assert_eq!(r.to_rows()[0], vec![Value::Integer(7), Value::Integer(0)]);
}

#[test]
fn order_by_nulls_and_directions() {
    let conn = db().connect();
    conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
    conn.execute("INSERT INTO t VALUES (2), (NULL), (1), (3)").unwrap();
    let r = conn.query("SELECT v FROM t ORDER BY v").unwrap();
    let vals: Vec<Value> = r.to_rows().into_iter().map(|mut r| r.remove(0)).collect();
    assert_eq!(vals[0], Value::Integer(1));
    assert!(vals[3].is_null(), "NULLS LAST by default");
    let r = conn.query("SELECT v FROM t ORDER BY v DESC NULLS LAST LIMIT 1").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Integer(3));
}

#[test]
fn large_scale_aggregation_across_row_groups() {
    // More rows than one row group (122880) exercises multi-group scans.
    let conn = db().connect();
    conn.execute("CREATE TABLE big (v INTEGER)").unwrap();
    for batch in 0..13 {
        let rows: Vec<String> = (0..10_000).map(|i| format!("({})", batch * 10_000 + i)).collect();
        conn.execute(&format!("INSERT INTO big VALUES {}", rows.join(","))).unwrap();
    }
    let r = conn.query("SELECT count(*), sum(v), min(v), max(v) FROM big").unwrap();
    let row = &r.to_rows()[0];
    assert_eq!(row[0], Value::BigInt(130_000));
    assert_eq!(row[1], Value::BigInt((0..130_000i64).sum()));
    assert_eq!(row[2], Value::Integer(0));
    assert_eq!(row[3], Value::Integer(129_999));
}

#[test]
fn planner_estimates_track_table_mutations() {
    // Table stats are computed on demand from live storage metadata, so
    // EXPLAIN estimates must follow appends immediately, stay conservative
    // (never undercount live rows) across deletes and rollbacks, and the
    // plans built from stale-looking estimates must still return exact
    // results.
    let conn = db().connect();
    conn.execute("CREATE TABLE s (id INTEGER, v INTEGER)").unwrap();
    let scan_est = |sql: &str| -> i64 {
        let plan = conn.query(&format!("EXPLAIN {sql}")).unwrap();
        for row in plan.to_rows() {
            if let Value::Varchar(line) = &row[0] {
                if line.contains("SCAN s") {
                    let est = line.split("est=").nth(1).expect("scan line carries an estimate");
                    return est.trim().parse().unwrap();
                }
            }
        }
        panic!("no SCAN s line");
    };
    let count = |sql: &str| -> i64 {
        match conn.query(sql).unwrap().scalar().unwrap() {
            Value::BigInt(n) => n,
            other => panic!("unexpected {other:?}"),
        }
    };

    assert_eq!(scan_est("SELECT count(*) FROM s"), 0, "empty table");

    // Appends are visible to the next plan without any ANALYZE step.
    let rows: Vec<String> = (0..1000).map(|i| format!("({i}, {})", i % 10)).collect();
    conn.execute(&format!("INSERT INTO s VALUES {}", rows.join(","))).unwrap();
    assert_eq!(scan_est("SELECT count(*) FROM s"), 1000);
    conn.execute(&format!("INSERT INTO s VALUES {}", rows.join(","))).unwrap();
    assert_eq!(scan_est("SELECT count(*) FROM s"), 2000);

    // Deleted rows may linger in the estimate (group row counts are not
    // compacted eagerly) but must never make it *undercount* live rows,
    // and execution stays exact.
    conn.execute("DELETE FROM s WHERE id >= 500").unwrap();
    assert_eq!(count("SELECT count(*) FROM s"), 1000);
    assert!(scan_est("SELECT count(*) FROM s") >= 1000, "estimate undercounts after delete");

    // A rolled-back append must not leave permanent rows behind; the
    // post-rollback estimate stays within the pre-rollback bound and the
    // results are exact.
    let before = scan_est("SELECT count(*) FROM s");
    conn.execute("BEGIN").unwrap();
    conn.execute(&format!("INSERT INTO s VALUES {}", rows.join(","))).unwrap();
    conn.execute("ROLLBACK").unwrap();
    assert_eq!(count("SELECT count(*) FROM s"), 1000);
    assert!(
        scan_est("SELECT count(*) FROM s") >= before,
        "estimate must stay conservative after rollback"
    );

    // Estimates feed filter selectivity too: zone maps know id's live
    // range, so a predicate outside it estimates (near) zero while an
    // in-range one does not — and both execute correctly.
    assert_eq!(count("SELECT count(*) FROM s WHERE id < 100"), 200);
    assert!(
        scan_est("SELECT count(*) FROM s WHERE id < 100")
            < scan_est("SELECT count(*) FROM s WHERE id < 2000"),
        "narrower range must estimate fewer rows"
    );
}

#[test]
fn streaming_cursor_shares_an_explicit_transaction() {
    let conn = db().connect();
    conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
    conn.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t VALUES (4)").unwrap();
    // The cursor reads under the open transaction: it sees the
    // uncommitted row.
    let mut cursor = conn.query_stream("SELECT count(*) FROM t").unwrap();
    let first = cursor.next_chunk().unwrap().unwrap();
    assert_eq!(first.column(0).get_value(0), Value::BigInt(4));
    // Committing while the stream is open must fail — the cursor still
    // holds a reference to the transaction.
    let err = conn.execute("COMMIT").unwrap_err();
    assert!(err.to_string().contains("still open"), "{err}");
    drop(cursor);
    conn.execute("COMMIT").unwrap();
    let r = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(4));
}

#[test]
fn streaming_cursor_wraps_non_query_statements() {
    let conn = db().connect();
    // DDL/DML through query_stream: the statement executes eagerly and
    // the (small) result replays through the cursor.
    let mut cursor = conn.query_stream("CREATE TABLE t (x INTEGER)").unwrap();
    assert!(cursor.next_chunk().unwrap().is_none());
    let mut cursor = conn.query_stream("INSERT INTO t VALUES (5), (6)").unwrap();
    assert_eq!(cursor.column_names(), ["Count"]);
    let chunk = cursor.next_chunk().unwrap().unwrap();
    assert_eq!(chunk.column(0).get_value(0), Value::BigInt(2));
    assert!(cursor.next_chunk().unwrap().is_none());
    // Multi-statement strings: earlier statements run to completion, the
    // last one streams.
    let mut cursor =
        conn.query_stream("INSERT INTO t VALUES (7); SELECT x FROM t ORDER BY x").unwrap();
    let mut values = Vec::new();
    while let Some(chunk) = cursor.next_chunk().unwrap() {
        for row in 0..chunk.len() {
            values.push(chunk.column(0).get_value(row));
        }
    }
    assert_eq!(values, vec![Value::Integer(5), Value::Integer(6), Value::Integer(7)]);
}

#[test]
fn streaming_cursor_surfaces_mid_stream_errors_and_recovers() {
    let conn = db().connect();
    conn.execute("CREATE TABLE t (x INTEGER)").unwrap();
    let rows: Vec<String> = (0..20_000).map(|i| format!("({i})")).collect();
    conn.execute(&format!("INSERT INTO t VALUES {}", rows.join(","))).unwrap();
    // The second union arm overflows (x * i64::MAX): the first arm
    // streams fine, then the error must surface from next_chunk, the
    // auto-commit transaction roll back, and the connection keep working.
    let mut cursor = conn
        .query_stream(
            "SELECT x FROM t WHERE x < 1000 \
             UNION ALL SELECT x * 9223372036854775807 FROM t",
        )
        .unwrap();
    let mut saw_error = false;
    loop {
        match cursor.next_chunk() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(_) => {
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "the multiplication overflow must surface through the stream");
    drop(cursor);
    assert!(!conn.in_transaction());
    let r = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(20_000));
}
