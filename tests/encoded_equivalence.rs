//! Encoded-vs-plain kernel equivalence suite.
//!
//! The compressed-domain fast paths (PR 8) must be *bit-identical* to the
//! decoded paths they shortcut: a dictionary-coded, run-length or
//! frame-of-reference vector fed to a hot kernel has to produce exactly
//! the bytes/hashes/values the plain vector produces — including NULLs,
//! embedded NUL bytes inside VARCHAR, and empty inputs. Property tests
//! cover each kernel in isolation (hash, group/join key encoding, pushed
//! filter, aggregate update); a deterministic engine-level harness then
//! runs group-by, hash-join, sort and filtered aggregation over a table
//! whose first row group really is compressed, at worker counts 1/2/4/8,
//! and asserts every configuration returns the same rows. (CI additionally
//! re-runs the whole suite under `EIDER_THREADS` 1/2/4/8.)

use eider_exec::aggregate::{AggKind, AggState};
use eider_exec::fxhash::hash_vector;
use eider_exec::rowkey::{encode_keys, KeyLayout, KeyScratch};
use eider_txn::{CmpOp, TableFilter};
use eider_vector::{DataChunk, LogicalType, SelectionVector, Value, Vector};
use proptest::prelude::*;

/// Expand `(seed, run)` pairs into a row-wise value column. Runs make the
/// column RLE-friendly; `None` seeds become NULL rows.
fn expand_runs(pairs: &[(Option<u8>, u8)], f: impl Fn(u8) -> Value) -> Vec<Value> {
    pairs
        .iter()
        .flat_map(|&(seed, run)| {
            let v = seed.map_or(Value::Null, &f);
            std::iter::repeat_n(v, usize::from(run) + 1)
        })
        .collect()
}

fn vector_of(ty: LogicalType, values: &[Value]) -> Vector {
    Vector::from_values(ty, values).unwrap()
}

/// The encoded twin of `v`: whatever the stats-driven chooser picks, or a
/// clone when it declines (equivalence must hold either way).
fn encoded(v: &Vector) -> Vector {
    v.encode_auto().unwrap_or_else(|| v.clone())
}

/// Hostile low-cardinality strings: embedded NULs, empty string, repeats.
fn dict_string(k: u8) -> Value {
    match k % 6 {
        0 => Value::Varchar(String::new()),
        1 => Value::Varchar("a\0b".into()),
        2 => Value::Varchar("a\0\0".into()),
        k => Value::Varchar(format!("city_{k}\0x")),
    }
}

/// The three column shapes the chooser targets, built from one seed list:
/// dict-friendly varchar, runny integers, narrow-range bigints.
fn shaped_columns(pairs: &[(Option<u8>, u8)]) -> Vec<Vector> {
    vec![
        vector_of(LogicalType::Varchar, &expand_runs(pairs, dict_string)),
        vector_of(LogicalType::Integer, &expand_runs(pairs, |k| Value::Integer(i32::from(k % 4)))),
        vector_of(
            LogicalType::BigInt,
            &expand_runs(pairs, |k| Value::BigInt(1_000_000_000 + i64::from(k))),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // fxhash::hash_vector — the group-by/join hash kernel — must emit the
    // same 64-bit lanes from codes as from decoded values, both when a
    // column starts the hash and when it folds into a multi-column key.
    #[test]
    fn hash_kernel_is_encoding_blind(
        pairs in prop::collection::vec((prop::option::of(any::<u8>()), 0u8..12), 0..80),
    ) {
        let cols = shaped_columns(&pairs);
        let mut plain_hashes = Vec::new();
        let mut enc_hashes = Vec::new();
        for (i, col) in cols.iter().enumerate() {
            hash_vector(col, &mut plain_hashes, i == 0);
            hash_vector(&encoded(col), &mut enc_hashes, i == 0);
            prop_assert_eq!(&plain_hashes, &enc_hashes, "column {} diverged", i);
        }
    }

    // rowkey::encode_keys — the serialized group/join key — must produce
    // identical key bytes and NULL flags from encoded columns.
    #[test]
    fn rowkey_kernel_is_encoding_blind(
        pairs in prop::collection::vec((prop::option::of(any::<u8>()), 0u8..12), 0..80),
    ) {
        let cols = shaped_columns(&pairs);
        let n = cols[0].len();
        let layout = KeyLayout::new(cols.iter().map(Vector::logical_type).collect());
        let enc_cols: Vec<Vector> = cols.iter().map(encoded).collect();

        let mut plain = KeyScratch::default();
        encode_keys(&layout, &cols, n, &mut plain).unwrap();
        let mut enc = KeyScratch::default();
        encode_keys(&layout, &enc_cols, n, &mut enc).unwrap();
        for row in 0..n {
            prop_assert_eq!(plain.key(row), enc.key(row), "key bytes diverged at row {}", row);
            prop_assert_eq!(plain.has_null(row), enc.has_null(row));
        }
    }

    // TableFilter::filter_vector — the pushed-down scan predicate — must
    // keep exactly the same row indexes when it short-circuits per
    // dictionary entry or per run.
    #[test]
    fn filter_kernel_is_encoding_blind(
        pairs in prop::collection::vec((prop::option::of(any::<u8>()), 0u8..12), 0..80),
        pivot in any::<u8>(),
    ) {
        let cols = shaped_columns(&pairs);
        let n = cols[0].len();
        let filters = [
            TableFilter::new(0, CmpOp::Eq, dict_string(pivot)),
            TableFilter::new(0, CmpOp::NotEq, dict_string(pivot)),
            TableFilter::new(1, CmpOp::GtEq, Value::Integer(i32::from(pivot % 4))),
            TableFilter::new(2, CmpOp::Lt, Value::BigInt(1_000_000_000 + i64::from(pivot))),
        ];
        for f in &filters {
            let col = &cols[f.column];
            let mut plain_sel: Vec<u32> = (0..n as u32).collect();
            f.filter_vector(col, &mut plain_sel);
            let mut enc_sel: Vec<u32> = (0..n as u32).collect();
            f.filter_vector(&encoded(col), &mut enc_sel);
            prop_assert_eq!(&plain_sel, &enc_sel, "filter on column {} diverged", f.column);
        }
    }

    // AggState::update_vector — every aggregate kind, full vectors and
    // selections, integer and varchar inputs — must finalize to the same
    // Value whether it consumed frames/runs or decoded rows.
    #[test]
    fn aggregate_kernel_is_encoding_blind(
        pairs in prop::collection::vec((prop::option::of(any::<u8>()), 0u8..12), 0..80),
        sel_mask in prop::collection::vec(any::<bool>(), 0..1000),
    ) {
        let kinds = [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::StdDevSamp,
            AggKind::VarSamp,
        ];
        for col in shaped_columns(&pairs) {
            let ty = col.logical_type();
            let enc = encoded(&col);
            let sel = SelectionVector::from_indexes(
                (0..col.len() as u32).filter(|&i| *sel_mask.get(i as usize).unwrap_or(&false)).collect(),
            );
            for kind in kinds {
                if ty == LogicalType::Varchar && !matches!(kind, AggKind::Min | AggKind::Max | AggKind::Count) {
                    continue;
                }
                for selection in [None, Some(&sel)] {
                    let mut a = AggState::new(kind, Some(ty), false);
                    a.update_vector(&col, selection).unwrap();
                    let mut b = AggState::new(kind, Some(ty), false);
                    b.update_vector(&enc, selection).unwrap();
                    prop_assert_eq!(
                        a.finalize().unwrap(),
                        b.finalize().unwrap(),
                        "{:?} over {:?} diverged", kind, ty
                    );
                }
            }
        }
    }

    // Decode fidelity: sorting (and every other operator that materializes
    // rows) sees `to_rows()`, which must be identical for the encoded twin.
    #[test]
    fn decoded_rows_are_identical(
        pairs in prop::collection::vec((prop::option::of(any::<u8>()), 0u8..12), 0..80),
    ) {
        let cols = shaped_columns(&pairs);
        let enc_cols: Vec<Vector> = cols.iter().map(encoded).collect();
        let plain = DataChunk::from_vectors(cols).unwrap();
        let enc = DataChunk::from_vectors(enc_cols).unwrap();
        prop_assert_eq!(plain.to_rows(), enc.to_rows());
    }
}

/// Kernels accept empty vectors (zero rows, no encoding possible) without
/// panicking and with empty outputs — the empty-chunk edge the streaming
/// pipeline can produce.
#[test]
fn empty_inputs_are_handled() {
    let cols = shaped_columns(&[]);
    assert_eq!(cols[0].len(), 0);
    let mut hashes = vec![1, 2, 3];
    hash_vector(&cols[0], &mut hashes, true);
    assert!(hashes.is_empty());

    let layout = KeyLayout::new(cols.iter().map(Vector::logical_type).collect());
    let mut scratch = KeyScratch::default();
    encode_keys(&layout, &cols, 0, &mut scratch).unwrap();

    let mut sel: Vec<u32> = Vec::new();
    TableFilter::new(0, CmpOp::Eq, dict_string(0)).filter_vector(&cols[0], &mut sel);
    assert!(sel.is_empty());

    let mut agg = AggState::new(AggKind::Sum, Some(LogicalType::Integer), false);
    agg.update_vector(&cols[1], None).unwrap();
    assert_eq!(agg.finalize().unwrap(), Value::Null);
}

/// Canonical shapes must actually encode — otherwise the proptests above
/// would silently compare plain against plain.
#[test]
fn canonical_shapes_do_encode() {
    use eider_vector::Encoding;
    let pairs: Vec<(Option<u8>, u8)> = (0..40).map(|i| (Some(i as u8 % 5), 7)).collect();
    let cols = shaped_columns(&pairs);
    assert_eq!(cols[0].encode_auto().unwrap().encoding(), Encoding::Dict);
    assert_eq!(cols[1].encode_auto().unwrap().encoding(), Encoding::Rle);
    assert!(cols[2].encode_auto().unwrap().is_encoded());
}

/// Engine-level harness: a table one full row group deep (so
/// `compress_columns` really ran on group 0) queried with group-by,
/// hash-join, sort and filtered aggregation at 1/2/4/8 workers. Every
/// worker count must return the same rows, and those rows must match
/// ground truth computed here from the plain generator — the decoded
/// reference the encoded scan has to reproduce.
#[test]
fn engine_results_match_ground_truth_at_every_worker_count() {
    use eider::{Database, DatabaseConfig};
    use eider_txn::table::ROW_GROUP_SIZE;
    use std::sync::Arc;

    let rows = ROW_GROUP_SIZE + 10_000;
    let group_of = |i: usize| format!("g{}", i * 7 % 5);
    let val_of = |i: usize| (i / 1000) as i64;

    // Ground truth from the generator, entirely in plain Rust.
    let mut counts = std::collections::BTreeMap::new();
    let mut filtered_sum = 0i64;
    for i in 0..rows {
        *counts.entry(group_of(i)).or_insert(0i64) += 1;
        if val_of(i) >= 100 {
            filtered_sum += val_of(i);
        }
    }
    let want_groups: Vec<Vec<Value>> =
        counts.iter().map(|(g, &c)| vec![Value::Varchar(g.clone()), Value::BigInt(c)]).collect();

    for threads in [1usize, 2, 4, 8] {
        let config = DatabaseConfig { threads, ..DatabaseConfig::default() };
        let db = Database::in_memory_with_config(config).unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (g VARCHAR, v BIGINT)").unwrap();
        conn.execute("CREATE TABLE dim (g VARCHAR, label VARCHAR)").unwrap();
        for k in 0..5 {
            conn.execute(&format!("INSERT INTO dim VALUES ('g{k}', 'label{k}')")).unwrap();
        }
        let entry = db.catalog().get_table("t").unwrap();
        let txn = Arc::new(db.txn_manager().begin());
        let types = [LogicalType::Varchar, LogicalType::BigInt];
        for base in (0..rows).step_by(2048) {
            let hi = (base + 2048).min(rows);
            let batch: Vec<Vec<Value>> = (base..hi)
                .map(|i| vec![Value::Varchar(group_of(i)), Value::BigInt(val_of(i))])
                .collect();
            let chunk = DataChunk::from_rows(&types, &batch).unwrap();
            entry.data.append_chunk(&txn, &chunk).unwrap();
        }
        db.commit_transaction(Arc::try_unwrap(txn).expect("sole owner")).unwrap();

        let groups =
            conn.query("SELECT g, count(*) FROM t GROUP BY g ORDER BY g").unwrap().to_rows();
        assert_eq!(groups, want_groups, "group-by diverged at {threads} workers");

        let joined = conn
            .query(
                "SELECT dim.label, count(*) FROM t JOIN dim ON t.g = dim.g \
                 GROUP BY dim.label ORDER BY dim.label",
            )
            .unwrap()
            .to_rows();
        assert_eq!(joined.len(), 5, "join lost groups at {threads} workers");
        for (row, want) in joined.iter().zip(want_groups.iter()) {
            assert_eq!(row[1], want[1], "join counts diverged at {threads} workers");
        }

        let filtered = conn.query("SELECT sum(v) FROM t WHERE v >= 100").unwrap().to_rows();
        assert_eq!(
            filtered,
            vec![vec![Value::BigInt(filtered_sum)]],
            "filtered aggregate diverged at {threads} workers"
        );

        let top = conn.query("SELECT g, v FROM t ORDER BY v DESC, g LIMIT 3").unwrap().to_rows();
        // Many rows tie at the max v; "g0" sorts first among them, so the
        // top three are all ("g0", max).
        let want_v = val_of(rows - 1);
        assert_eq!(
            top,
            vec![vec![Value::Varchar("g0".into()), Value::BigInt(want_v)]; 3],
            "sort diverged at {threads} workers"
        );
    }
}
