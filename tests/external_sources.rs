//! External table sources end to end: `read_csv` / `read_arrow` must be
//! indistinguishable from querying an ingested copy of the same data —
//! bit-identical rows at every thread count CI runs (1, 2, 4, 8), with
//! and without a starvation-level 1 MB memory budget — and the Arrow IPC
//! export must round-trip losslessly through `read_arrow`, including
//! dictionary-coded columns that never decode in between.

use eider::{Database, Value};
use eider_etl::{for_each_chunk, ArrowFileSource, ArrowWriter, TableSource};
use eider_vector::{DataChunk, LogicalType, Vector};
use proptest::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

const ROWS: usize = 6_000;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("eider_ext_{}_{name}", std::process::id()));
    p
}

/// A deterministic CSV well past the 32 KB two-partition floor: a BigInt
/// key, a dictionary-friendly group, an exactly-representable Double, and
/// a quoted varchar with embedded delimiters and newlines — the shapes
/// the byte-range partitioner has to get right.
fn write_fixture_csv(path: &PathBuf) {
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "id,grp,val,note").unwrap();
    for i in 0..ROWS {
        let note = match i % 5 {
            0 => format!("\"comma, {i}\""),
            1 => format!("\"line\nbreak {i}\""),
            2 => String::new(), // empty field → NULL
            _ => format!("plain_note_number_{i}"),
        };
        writeln!(f, "{i},g{},{}.5,{note}", i % 8, i % 13).unwrap();
    }
}

/// Build a database with the fixture ingested as table `t` (via COPY FROM
/// — the same `TableSource` path `read_csv` uses) and the Arrow twin
/// exported from that table through `ResultCursor::export_arrow_ipc`.
fn fixture() -> (Arc<Database>, PathBuf, PathBuf) {
    let csv = tmp("fixture.csv");
    let arrow = tmp("fixture.arrow");
    write_fixture_csv(&csv);
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id BIGINT, grp VARCHAR, val DOUBLE, note VARCHAR)").unwrap();
    conn.execute(&format!("COPY t FROM '{}'", csv.display())).unwrap();
    let out = std::fs::File::create(&arrow).unwrap();
    let exported = conn.query_stream("SELECT * FROM t").unwrap().export_arrow_ipc(out).unwrap();
    assert_eq!(exported, ROWS as u64);
    (db, csv, arrow)
}

/// Queries whose row output is fully deterministic (ordered sinks, exact
/// aggregates, or plain scans whose morsel merge is seq-ordered) — the
/// set we demand be *bit-identical* between the table and both external
/// sources at every thread count.
fn equivalence_queries(source: &str) -> Vec<String> {
    [
        "SELECT id, grp, val, note FROM {src}",
        "SELECT id, val FROM {src} WHERE id % 7 = 3",
        "SELECT count(*), min(val), max(val), min(id), max(id) FROM {src}",
        "SELECT grp, count(*) FROM {src} GROUP BY grp ORDER BY grp",
        "SELECT id, note FROM {src} ORDER BY id DESC LIMIT 20 OFFSET 5",
        "SELECT count(*) FROM {src} WHERE note IS NULL",
    ]
    .iter()
    .map(|q| q.replace("{src}", source))
    .collect()
}

fn rows_at(db: &Arc<Database>, sql: &str, threads: usize) -> Vec<Vec<Value>> {
    let conn = db.connect();
    conn.execute(&format!("PRAGMA threads = {threads}")).unwrap();
    conn.query(sql).unwrap().to_rows()
}

#[test]
fn external_scans_match_the_ingested_table_at_every_thread_count() {
    let (db, csv, arrow) = fixture();
    let sources =
        [format!("read_csv('{}')", csv.display()), format!("read_arrow('{}')", arrow.display())];
    for threads in [1, 2, 4, 8] {
        for source in &sources {
            for (table_sql, ext_sql) in
                equivalence_queries("t").iter().zip(equivalence_queries(source))
            {
                let expect = rows_at(&db, table_sql, threads);
                let got = rows_at(&db, &ext_sql, threads);
                assert_eq!(got, expect, "{ext_sql} @ {threads} threads");
            }
        }
    }
    // Every thread count must also agree with every other (the partition
    // decomposition is a pure function of the data, never of the fleet).
    for source in &sources {
        for ext_sql in equivalence_queries(source) {
            let baseline = rows_at(&db, &ext_sql, 1);
            for threads in [2, 4, 8] {
                assert_eq!(rows_at(&db, &ext_sql, threads), baseline, "{ext_sql}");
            }
        }
    }
    std::fs::remove_file(&csv).unwrap();
    std::fs::remove_file(&arrow).unwrap();
}

#[test]
fn external_scans_survive_a_one_megabyte_budget() {
    let (db, csv, arrow) = fixture();
    db.connect().execute("PRAGMA memory_limit = 1000000").unwrap();
    let sources =
        [format!("read_csv('{}')", csv.display()), format!("read_arrow('{}')", arrow.display())];
    for source in &sources {
        for (table_sql, ext_sql) in equivalence_queries("t").iter().zip(equivalence_queries(source))
        {
            for threads in [1, 4] {
                let expect = rows_at(&db, table_sql, threads);
                assert_eq!(rows_at(&db, &ext_sql, threads), expect, "{ext_sql} under 1MB");
            }
        }
    }
    std::fs::remove_file(&csv).unwrap();
    std::fs::remove_file(&arrow).unwrap();
}

/// Exporting a query result to Arrow IPC and scanning the file back with
/// `read_arrow` must reproduce the rows exactly — the §5 "result transfer
/// is a file format" story.
#[test]
fn arrow_export_round_trips_through_read_arrow() {
    let (db, csv, arrow) = fixture();
    let conn = db.connect();
    // Round-trip a *derived* result, not just the base table.
    let derived = tmp("derived.arrow");
    let sql = "SELECT grp, count(*) AS n, min(val) AS lo FROM t GROUP BY grp ORDER BY grp";
    let expect = conn.query(sql).unwrap().to_rows();
    let out = std::fs::File::create(&derived).unwrap();
    conn.query_stream(sql).unwrap().export_arrow_ipc(out).unwrap();
    let back = conn.query(&format!("SELECT * FROM read_arrow('{}')", derived.display())).unwrap();
    assert_eq!(back.column_names(), ["grp", "n", "lo"]);
    assert_eq!(back.to_rows(), expect);
    std::fs::remove_file(&csv).unwrap();
    std::fs::remove_file(&arrow).unwrap();
    std::fs::remove_file(&derived).unwrap();
}

/// Read an Arrow file back into rows via the raw `TableSource`, recording
/// whether any imported column arrived dictionary-coded.
fn arrow_rows(path: &PathBuf) -> (Vec<Vec<Value>>, bool) {
    let source = ArrowFileSource::open(path).unwrap();
    let projection: Vec<usize> = (0..source.column_types().len()).collect();
    let mut rows = Vec::new();
    let mut saw_dict = false;
    for_each_chunk(&source, &projection, |chunk| {
        saw_dict |= chunk.columns().iter().any(|c| c.dict_parts().is_some());
        rows.extend(chunk.to_rows());
        Ok(())
    })
    .unwrap();
    (rows, saw_dict)
}

// Random chunks — NULLs, empty strings, and a dictionary-coded varchar
// column — survive the write→read Arrow IPC round trip bit-for-bit,
// across multiple record batches.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arrow_ipc_round_trips_random_chunks(
        batches in prop::collection::vec(
            prop::collection::vec(
                (
                    prop::option::of(any::<i64>()),
                    prop::option::of("[a-z ,\"\n]{0,12}"),
                    prop::option::of(0u8..4),
                ),
                1..80,
            ),
            1..4,
        ),
        case in 0u32..u32::MAX,
    ) {
        let types =
            [LogicalType::BigInt, LogicalType::Varchar, LogicalType::Varchar];
        let path = tmp(&format!("prop_{case}.arrow"));
        let mut expected = Vec::new();
        {
            let out = std::fs::File::create(&path).unwrap();
            let names = vec!["a".into(), "b".into(), "c".into()];
            let mut writer = ArrowWriter::new(out, names, types.to_vec()).unwrap();
            for batch in &batches {
                let rows: Vec<Vec<Value>> = batch
                    .iter()
                    .map(|(i, s, d)| {
                        vec![
                            i.map_or(Value::Null, Value::BigInt),
                            s.clone().map_or(Value::Null, Value::Varchar),
                            // Low-cardinality column: dict-encodes below.
                            d.map_or(Value::Null, |k| Value::Varchar(format!("dict_{k}"))),
                        ]
                    })
                    .collect();
                expected.extend(rows.iter().cloned());
                let chunk = DataChunk::from_rows(&types, &rows).unwrap();
                let mut cols: Vec<Vector> = chunk.into_columns();
                // Force the compressed-domain path when the chooser takes
                // it: dict-coded codes must export without decoding.
                if let Some(encoded) = cols[2].encode_auto() {
                    cols[2] = encoded;
                }
                writer.write_chunk(&DataChunk::from_vectors(cols).unwrap()).unwrap();
            }
            writer.finish().unwrap();
        }
        let (rows, _saw_dict) = arrow_rows(&path);
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(rows, expected);
    }
}

/// A dictionary-coded source column must arrive at the reader still
/// dictionary-coded (no decode on either side of the file boundary).
#[test]
fn dict_columns_cross_the_file_without_decoding() {
    let path = tmp("dict.arrow");
    let types = [LogicalType::Varchar];
    let rows: Vec<Vec<Value>> =
        (0..1000).map(|i| vec![Value::Varchar(format!("group_{}", i % 4))]).collect();
    {
        let out = std::fs::File::create(&path).unwrap();
        let mut writer = ArrowWriter::new(out, vec!["g".into()], types.to_vec()).unwrap();
        let chunk = DataChunk::from_rows(&types, &rows).unwrap();
        let mut cols = chunk.into_columns();
        cols[0] = cols[0].encode_auto().expect("4 distinct values over 1000 rows must dict-encode");
        writer.write_chunk(&DataChunk::from_vectors(cols).unwrap()).unwrap();
        writer.finish().unwrap();
    }
    let (got, saw_dict) = arrow_rows(&path);
    assert!(saw_dict, "imported column must still be dictionary-coded");
    assert_eq!(got, rows);
    std::fs::remove_file(&path).unwrap();
}

/// `Appender::from_source` and `COPY FROM` are the same ingest path; the
/// tables they produce must scan identically.
#[test]
fn bulk_ingest_matches_copy_from() {
    use eider_client::Appender;
    use eider_etl::csv::{CsvReadOptions, CsvSource};
    let csv = tmp("ingest.csv");
    write_fixture_csv(&csv);
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    let ddl = "(id BIGINT, grp VARCHAR, val DOUBLE, note VARCHAR)";
    conn.execute(&format!("CREATE TABLE via_copy {ddl}")).unwrap();
    conn.execute(&format!("CREATE TABLE via_appender {ddl}")).unwrap();
    conn.execute(&format!("COPY via_copy FROM '{}'", csv.display())).unwrap();

    let entry = db.catalog().get_table("via_appender").unwrap();
    let txn = Arc::new(db.txn_manager().begin());
    let source = CsvSource::open(&csv, CsvReadOptions::default()).unwrap();
    let loaded = Appender::from_source(entry, Arc::clone(&txn), &source).unwrap();
    assert_eq!(loaded, ROWS as u64);
    db.commit_transaction(Arc::try_unwrap(txn).expect("sole handle")).unwrap();

    let a = conn.query("SELECT * FROM via_copy").unwrap().to_rows();
    let b = conn.query("SELECT * FROM via_appender").unwrap().to_rows();
    assert_eq!(a, b);
    std::fs::remove_file(&csv).unwrap();
}
