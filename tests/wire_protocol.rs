//! Property tests for the columnar wire protocol (`eider_client::wire`).
//!
//! The protocol round-trip must be lossless for every logical type —
//! including NULLs, embedded NUL bytes inside VARCHAR payloads, and empty
//! chunks — both for synthetic chunks and for real [`ResultCursor`] output
//! pumped through the writer the way the server does.
//!
//! [`ResultCursor`]: eider::ResultCursor

use eider::{Database, Value};
use eider_client::wire::{ChunkReader, ChunkWriter, Frame};
use eider_vector::{DataChunk, LogicalType, Vector};
use proptest::prelude::*;

/// Derive one typed value from a seed; NULL when the seed is `None`.
fn cell(ty: LogicalType, seed: Option<i64>) -> Value {
    let Some(n) = seed else { return Value::Null };
    match ty {
        LogicalType::Boolean => Value::Boolean(n & 1 == 0),
        LogicalType::TinyInt => Value::TinyInt(n as i8),
        LogicalType::SmallInt => Value::SmallInt(n as i16),
        LogicalType::Integer => Value::Integer(n as i32),
        LogicalType::BigInt => Value::BigInt(n),
        LogicalType::Double => Value::Double(n as f64 / 3.0),
        // Exercise the hostile string shapes: embedded NULs, non-ASCII,
        // empty strings.
        LogicalType::Varchar => Value::Varchar(match n.rem_euclid(4) {
            0 => String::new(),
            1 => format!("v\0{n}\0"),
            2 => format!("héllo-{n}"),
            _ => format!("{n}"),
        }),
        LogicalType::Date => Value::Date(n as i32),
        LogicalType::Timestamp => Value::Timestamp(n),
    }
}

/// A chunk over all nine logical types, one column each, built from seeds.
fn chunk_from_seeds(seeds: &[Option<i64>]) -> DataChunk {
    let columns: Vec<Vector> = LogicalType::ALL
        .iter()
        .map(|&ty| {
            let values: Vec<Value> = seeds.iter().map(|&s| cell(ty, s)).collect();
            Vector::from_values(ty, &values).unwrap()
        })
        .collect();
    DataChunk::from_vectors(columns).unwrap()
}

fn wire_round_trip(chunks: &[DataChunk]) -> eider_client::wire::WireResult {
    let names: Vec<String> = LogicalType::ALL.iter().map(|t| t.to_string()).collect();
    let mut w = ChunkWriter::new(Vec::new());
    w.write_header(&names, &LogicalType::ALL).unwrap();
    for c in chunks {
        w.write_chunk(c).unwrap();
    }
    w.finish().unwrap();
    let bytes = w.into_inner();
    ChunkReader::new(&bytes[..]).read_result().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Every logical type — with NULLs and embedded NULs — survives the
    // wire bit-for-bit, across multi-chunk streams with empty chunks
    // interleaved.
    #[test]
    fn wire_round_trips_every_type(
        batches in prop::collection::vec(
            prop::collection::vec(prop::option::of(any::<i64>()), 0..90),
            0..5,
        ),
    ) {
        let chunks: Vec<DataChunk> = batches.iter().map(|b| chunk_from_seeds(b)).collect();
        let result = wire_round_trip(&chunks);
        prop_assert_eq!(result.types.clone(), LogicalType::ALL.to_vec());
        let want: Vec<Vec<Value>> = chunks.iter().flat_map(|c| c.to_rows()).collect();
        prop_assert_eq!(result.rows as usize, want.len());
        prop_assert_eq!(result.to_rows(), want);
    }

    // Low-cardinality varchar streams take the dictionary-coded wire path
    // (the chooser accepts once a chunk crosses its minimum length), and
    // must still decode to exactly the source rows — NULLs, embedded NULs,
    // and repeated values included.
    #[test]
    fn wire_round_trips_dict_coded_varchar(
        seeds in prop::collection::vec(
            prop::option::of(0u8..5),
            64..300,
        ),
    ) {
        let values: Vec<Value> = seeds
            .iter()
            .map(|s| match s {
                None => Value::Null,
                Some(k) => Value::Varchar(format!("label\0{k}")),
            })
            .collect();
        let col = Vector::from_values(LogicalType::Varchar, &values).unwrap();
        let chunk = DataChunk::from_vectors(vec![col]).unwrap();

        let mut w = ChunkWriter::new(Vec::new());
        w.write_header(&["s".to_string()], &[LogicalType::Varchar]).unwrap();
        w.write_chunk(&chunk).unwrap();
        w.finish().unwrap();
        let bytes = w.into_inner();
        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        prop_assert_eq!(result.to_rows(), chunk.to_rows());
    }

    // Live engine results pumped through the protocol the way the server
    // does (cursor chunk → wire frame) decode to exactly what the
    // in-process materialized API returns.
    #[test]
    fn wire_round_trips_result_cursor_output(
        ints in prop::collection::vec(prop::option::of(any::<i32>()), 1..120),
        strs in prop::collection::vec(prop::option::of("[a-z ]{0,12}"), 1..120),
    ) {
        let db = Database::in_memory().unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (i INTEGER, s VARCHAR)").unwrap();
        let n = ints.len().min(strs.len());
        for row in 0..n {
            let i = ints[row].map_or("NULL".into(), |v| v.to_string());
            let s = strs[row]
                .as_ref()
                .map_or("NULL".into(), |v| format!("'{v}'"));
            conn.execute(&format!("INSERT INTO t VALUES ({i}, {s})")).unwrap();
        }
        let want = conn
            .query("SELECT i, s FROM t ORDER BY i, s")
            .unwrap()
            .to_rows();

        // Server side: stream the cursor into wire frames.
        let mut cursor = conn.query_stream("SELECT i, s FROM t ORDER BY i, s").unwrap();
        let mut w = ChunkWriter::new(Vec::new());
        w.write_header(cursor.column_names(), cursor.column_types()).unwrap();
        while let Some(chunk) = cursor.next_chunk().unwrap() {
            w.write_chunk(&chunk).unwrap();
        }
        w.finish().unwrap();
        let bytes = w.into_inner();

        // Client side: reassemble and compare against the zero-copy API.
        let result = ChunkReader::new(&bytes[..]).read_result().unwrap();
        prop_assert_eq!(result.names.clone(), vec!["i".to_string(), "s".to_string()]);
        prop_assert_eq!(result.to_rows(), want);
    }
}

/// Deterministic spot-checks that don't need generation: zero-column
/// streams and frame-level iteration.
#[test]
fn zero_row_and_frame_level_reads() {
    let result = wire_round_trip(&[]);
    assert_eq!(result.rows, 0);
    assert!(result.chunks.is_empty());

    let chunk = chunk_from_seeds(&[Some(7), None, Some(-3)]);
    let names: Vec<String> = LogicalType::ALL.iter().map(|t| t.to_string()).collect();
    let mut w = ChunkWriter::new(Vec::new());
    w.write_header(&names, &LogicalType::ALL).unwrap();
    w.write_chunk(&chunk).unwrap();
    w.finish().unwrap();
    let bytes = w.into_inner();
    let mut r = ChunkReader::new(&bytes[..]);
    assert!(matches!(r.read_frame().unwrap(), Some(Frame::Header { .. })));
    assert!(matches!(r.read_frame().unwrap(), Some(Frame::Chunk(c)) if c.len() == 3));
    assert!(matches!(r.read_frame().unwrap(), Some(Frame::End { rows: 3 })));
    assert!(r.read_frame().unwrap().is_none());
}
