//! Deterministic multi-session concurrency harness.
//!
//! One `Database`, many concurrent connections — each connection is a
//! *session* with its own memory-quota sub-account and a fair share of the
//! shared worker fleet. The harness runs a seeded mix of reads, writes and
//! streaming cursors across sessions and asserts the strongest property an
//! embedded engine can offer its host: **concurrency is unobservable**.
//! Every session's results are bit-identical to a serial replay of the
//! same script, at every `EIDER_THREADS` level CI runs (1, 2, 4, 8), under
//! a 1 MB memory limit, with no deadlocks and no cross-session
//! interference — a dropped cursor cancels only its own query, and a
//! quota-starved session fails (or spills) strictly within its own
//! sub-account.
//!
//! Determinism rules the harness relies on (proven by
//! `parallel_execution.rs`): parallel plans produce identical rows across
//! thread counts, and sessions write only to private tables, so a serial
//! replay in session order reproduces each session's view exactly.

use eider::{Database, Value};
use eider_bench::wrangling_db;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SHARED_ROWS: usize = 40_000;
const SESSIONS: usize = 6;
const OPS_PER_SESSION: usize = 12;
const MEMORY_LIMIT: usize = 1_000_000;

/// SplitMix64: one seeded generator per session script, so the op mix is
/// reproducible from (session id, seed) alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One step of a session script. Only integer-valued queries appear in the
/// mix: they are exact at every thread count, so "bit-identical" is a
/// meaningful cross-run assertion.
#[derive(Debug, Clone)]
enum Op {
    /// Materialized read over the shared table.
    Read(String),
    /// Streaming read over the shared table, drained chunk by chunk.
    Stream(String),
    /// Streaming read abandoned after the first chunk — must cancel only
    /// this session's query.
    StreamDrop(String),
    /// Append to this session's private table.
    Write(String),
}

/// The seeded op mix for one session. Writes go to the session's private
/// table `w{sid}`; reads hit the shared immutable `t`.
fn session_script(sid: usize, seed: u64) -> Vec<Op> {
    let mut rng = Rng(seed ^ (sid as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    let mut ops = Vec::new();
    for step in 0..OPS_PER_SESSION {
        let r = rng.below(100);
        let modulus = 3 + rng.below(7);
        let residue = rng.below(modulus);
        ops.push(if r < 35 {
            Op::Read(format!(
                "SELECT count(*), sum(id), min(id), max(d) FROM t \
                 WHERE id % {modulus} = {residue} AND d <> -999"
            ))
        } else if r < 60 {
            Op::Stream(format!("SELECT id, d FROM t WHERE id % {modulus} = {residue} ORDER BY id"))
        } else if r < 70 {
            Op::StreamDrop("SELECT id, d FROM t ORDER BY id".into())
        } else {
            let a = rng.below(1_000_000) as i64;
            let b = rng.below(1_000_000) as i64;
            Op::Write(format!("INSERT INTO w{sid} VALUES ({step}, {a}), ({step}, {b})"))
        });
    }
    ops
}

/// Build the shared fixture: the read-only analytics table plus one
/// private write table per session, under the tight global limit.
fn harness_db(seed: u64) -> Arc<Database> {
    let db = wrangling_db(SHARED_ROWS, 0.25, seed).unwrap();
    let conn = db.connect();
    for sid in 0..SESSIONS {
        conn.execute(&format!("CREATE TABLE w{sid} (k INTEGER, val BIGINT)")).unwrap();
    }
    conn.execute(&format!("PRAGMA memory_limit = {MEMORY_LIMIT}")).unwrap();
    db
}

/// Run one session's script on its own connection, recording every
/// result-producing op's rows plus a final fingerprint of the session's
/// private table. This transcript is what must be bit-identical between
/// serial replay and concurrent execution.
fn run_script(db: &Arc<Database>, sid: usize, seed: u64) -> Vec<Vec<Vec<Value>>> {
    let conn = db.connect();
    // Each session takes its fair quota. This is the point of the quota
    // layer: the sessions' charged reservations can never collectively
    // over-commit the 1 MB pool, so memory pressure degrades into
    // spilling and backpressure inside each session instead of surfacing
    // as a hard out-of-memory error in whichever session asked last.
    conn.execute(&format!("PRAGMA session_memory_limit = {}", MEMORY_LIMIT / SESSIONS)).unwrap();
    let mut transcript = Vec::new();
    for op in session_script(sid, seed) {
        match op {
            Op::Read(sql) => transcript.push(conn.query(&sql).unwrap().to_rows()),
            Op::Stream(sql) => {
                let mut cursor = conn.query_stream(&sql).unwrap();
                let mut rows = Vec::new();
                while let Some(chunk) = cursor.next_chunk().unwrap() {
                    rows.extend(chunk.to_rows());
                }
                transcript.push(rows);
            }
            Op::StreamDrop(sql) => {
                let mut cursor = conn.query_stream(&sql).unwrap();
                // Pull one chunk, then abandon mid-stream: the drop must
                // cancel this query without disturbing the transcript.
                let first = cursor.next_chunk().unwrap();
                transcript.push(first.map(|c| c.to_rows()).unwrap_or_default());
                drop(cursor);
            }
            Op::Write(sql) => {
                conn.execute(&sql).unwrap();
            }
        }
    }
    transcript.push(
        conn.query(&format!("SELECT count(*), sum(k), sum(val) FROM w{sid}")).unwrap().to_rows(),
    );
    transcript
}

/// Serial baseline: sessions run one after another on a fresh fixture.
fn serial_transcripts(seed: u64) -> Vec<Vec<Vec<Vec<Value>>>> {
    let db = harness_db(seed);
    (0..SESSIONS).map(|sid| run_script(&db, sid, seed)).collect()
}

/// Concurrent run: the same scripts race on one fixture, one thread and
/// one connection per session.
fn concurrent_transcripts(seed: u64) -> Vec<Vec<Vec<Vec<Value>>>> {
    let db = harness_db(seed);
    let handles: Vec<_> = (0..SESSIONS)
        .map(|sid| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || run_script(&db, sid, seed))
        })
        .collect();
    let transcripts = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(db.buffers().used_memory(), 0, "all session reservations released after the storm");
    transcripts
}

/// The tentpole assertion: N sessions racing on one database observe
/// exactly what they would observe alone. Runs under whatever
/// `EIDER_THREADS` CI sets (the config default reads it), under the 1 MB
/// limit — completing at all proves no deadlock between admission, quota
/// accounting and the chunk-queue backpressure.
#[test]
fn concurrent_sessions_match_serial_replay_bit_for_bit() {
    for seed in [3, 29] {
        let serial = serial_transcripts(seed);
        let concurrent = concurrent_transcripts(seed);
        for (sid, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
            assert_eq!(s, c, "session {sid} (seed {seed}) diverged from its serial replay");
        }
    }
}

/// Repeating the identical concurrent storm must give the identical
/// transcripts: the harness itself is deterministic, so CI failures are
/// reproducible from the seed alone.
#[test]
fn the_harness_is_deterministic_across_runs() {
    assert_eq!(concurrent_transcripts(71), concurrent_transcripts(71));
}

/// Dropping a cursor mid-stream cancels *that* query only: a sibling
/// session streaming the same large result concurrently sees every row,
/// and the dropper's session keeps working.
#[test]
fn mid_stream_drop_cancels_only_its_own_query() {
    let db = harness_db(5);
    let sql = "SELECT id, d, v FROM t ORDER BY id";
    let reference = db.connect().query(sql).unwrap().to_rows();

    let victim_db = Arc::clone(&db);
    let survivor = std::thread::spawn(move || {
        let conn = victim_db.connect();
        let mut rows = Vec::new();
        let mut cursor = conn.query_stream(sql).unwrap();
        while let Some(chunk) = cursor.next_chunk().unwrap() {
            rows.extend(chunk.to_rows());
        }
        rows
    });

    // Meanwhile this session abandons the same query over and over.
    let conn = db.connect();
    for _ in 0..8 {
        let mut cursor = conn.query_stream(sql).unwrap();
        let _ = cursor.next_chunk().unwrap();
        drop(cursor);
    }
    // The dropper's session is still fully functional...
    assert_eq!(
        conn.query("SELECT count(*) FROM t").unwrap().scalar().unwrap(),
        Value::BigInt(SHARED_ROWS as i64)
    );
    // ...and the survivor streamed the complete, untouched result.
    assert_eq!(survivor.join().unwrap(), reference);
    assert_eq!(db.buffers().used_memory(), 0);
}

/// Quota starvation regression: a session pinned to a tiny quota must
/// spill or fail *inside its own sub-account* while sibling sessions keep
/// completing. No reservation may bleed across sessions, and the database
/// must return to zero used memory afterwards.
#[test]
fn a_starved_session_cannot_disturb_its_siblings() {
    let db = wrangling_db(SHARED_ROWS, 0.25, 17).unwrap();
    let setup = db.connect();
    setup.execute("PRAGMA memory_limit = 8000000").unwrap();

    let completed = Arc::new(AtomicUsize::new(0));
    let sibling_handles: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let conn = db.connect();
                for _ in 0..6 {
                    let rows = conn
                        .query("SELECT count(*), sum(id) FROM t WHERE d <> -999")
                        .unwrap()
                        .to_rows();
                    assert_eq!(rows.len(), 1);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The victim: a 64 KB quota, then a query whose working set exceeds it
    // many times over. The planner must route it through spilling operators
    // (or fail with the session-quota message) — never eat into siblings.
    let victim = db.connect();
    victim.execute("PRAGMA session_memory_limit = 64000").unwrap();
    let victim_buffers = victim.session().buffers();
    assert_eq!(victim_buffers.memory_limit(), 64_000);
    for _ in 0..3 {
        match victim.query("SELECT id, d, v FROM t ORDER BY v DESC, id LIMIT 30000") {
            Ok(result) => assert_eq!(result.row_count(), 30_000),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("session_memory_limit") || msg.contains("emory"),
                    "victim failed outside its quota: {msg}"
                );
            }
        }
        // Whatever happened, the victim stayed inside its own account.
        assert!(
            victim_buffers.peak_memory() <= 64_000,
            "victim peaked at {} bytes, past its 64000-byte quota",
            victim_buffers.peak_memory()
        );
        assert_eq!(victim_buffers.used_memory(), 0);
    }

    for h in sibling_handles {
        h.join().unwrap();
    }
    assert_eq!(completed.load(Ordering::Relaxed), 18, "every sibling query completed");
    assert_eq!(db.buffers().used_memory(), 0, "no reservation bled across sessions");
}

/// The admission gate serializes graph start-up without changing results:
/// with the cap pinned to 2, six concurrent streaming sessions still see
/// bit-identical rows — they just take turns on the fleet.
#[test]
fn admission_cap_throttles_without_changing_results() {
    let db = harness_db(43);
    db.connect().execute("PRAGMA admission_limit = 2").unwrap();
    let serial = serial_transcripts(43);
    let handles: Vec<_> = (0..SESSIONS)
        .map(|sid| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || run_script(&db, sid, 43))
        })
        .collect();
    for (sid, h) in handles.into_iter().enumerate() {
        assert_eq!(
            h.join().unwrap(),
            serial[sid],
            "session {sid} diverged under admission_limit = 2"
        );
    }
}

/// Sessions register and unregister with the database as connections come
/// and go; the registry never leaks dead sessions.
#[test]
fn session_registry_tracks_connection_lifetimes() {
    let db = Database::in_memory().unwrap();
    let base = db.session_count();
    let conns: Vec<_> = (0..5).map(|_| db.connect()).collect();
    assert_eq!(db.session_count(), base + 5);
    drop(conns);
    assert_eq!(db.session_count(), base);
}
