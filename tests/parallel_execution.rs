//! The morsel-driven parallel executor must be invisible to SQL: every
//! query returns the same rows at 1, 2 and N worker threads, repeated runs
//! are bit-identical, and the cooperation clamp keeps the engine polite
//! when the host application burns CPU.

use eider::Value;
use eider_bench::{star_db, wrangling_db};

const ROWS: usize = 60_000;

/// Queries spanning every parallel sink: collect, simple aggregate,
/// grouped aggregate (incl. DISTINCT), sort, hash-join build — plus
/// shapes that must fall back to the serial path (LIMIT, UNION).
const WRANGLING_QUERIES: &[&str] = &[
    "SELECT count(*), sum(id) FROM t WHERE d <> -999",
    "SELECT min(v), max(v), avg(v), stddev(v) FROM t",
    "SELECT id, v FROM t WHERE id % 97 = 3",
    "SELECT d % 10 AS bucket, count(*), sum(id), count(DISTINCT d) FROM t \
     WHERE d <> -999 GROUP BY d % 10",
    "SELECT id FROM t WHERE id < 30000 ORDER BY id % 1000 DESC, id",
    "SELECT count(*) FROM t WHERE v > 500.0",
    "SELECT sum(DISTINCT v), count(DISTINCT d) FROM t WHERE id < 40000",
    "SELECT id FROM t ORDER BY id LIMIT 25 OFFSET 10",
    "SELECT count(*) FROM (SELECT id FROM t WHERE id < 100 UNION ALL SELECT id FROM t WHERE id >= 59900) u",
];

fn rows_for(db: &std::sync::Arc<eider::Database>, sql: &str, threads: usize) -> Vec<Vec<Value>> {
    let conn = db.connect();
    conn.execute(&format!("PRAGMA threads = {threads}")).unwrap();
    conn.query(sql).unwrap().to_rows()
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Rows equal, allowing the parallel merge tree's last-ulp rounding
/// differences on Doubles (integer aggregates must match exactly).
fn assert_rows_close(a: &[Vec<Value>], b: &[Vec<Value>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: row counts differ");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "{context}");
        for (x, y) in ra.iter().zip(rb) {
            match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    let tolerance = 1e-9 * p.abs().max(q.abs()).max(1.0);
                    assert!((p - q).abs() <= tolerance, "{context}: {p} vs {q}");
                }
                _ => assert_eq!(x, y, "{context}"),
            }
        }
    }
}

#[test]
fn every_query_shape_is_thread_count_invariant() {
    let db = wrangling_db(ROWS, 0.25, 7).unwrap();
    for sql in WRANGLING_QUERIES {
        let serial = rows_for(&db, sql, 1);
        assert!(!serial.is_empty(), "{sql}");
        for threads in [2, 3, 8] {
            let parallel = rows_for(&db, sql, threads);
            let context = format!("{sql} (threads={threads})");
            if sql.contains("ORDER BY") {
                assert_rows_close(&parallel, &serial, &context);
            } else {
                assert_rows_close(&sorted(parallel), &sorted(serial.clone()), &context);
            }
        }
    }
}

#[test]
fn parallel_runs_are_deterministic() {
    let db = wrangling_db(ROWS, 0.25, 11).unwrap();
    for sql in WRANGLING_QUERIES {
        // Same thread count, repeated: byte-identical rows including order
        // (collect re-orders by morsel, groups come out key-sorted, sorts
        // tie-break on scan position).
        let a = rows_for(&db, sql, 4);
        let b = rows_for(&db, sql, 4);
        assert_eq!(a, b, "{sql} not deterministic at 4 threads");
        // Different thread counts also agree exactly.
        let c = rows_for(&db, sql, 2);
        assert_eq!(a, c, "{sql} differs between 4 and 2 threads");
    }
}

#[test]
fn join_with_parallel_build_matches_serial() {
    let db = star_db(50_000, 500, 3).unwrap();
    let sql = "SELECT c.segment, count(*), sum(o.amount) FROM orders o \
               JOIN customers c ON o.cid = c.cid GROUP BY c.segment";
    let serial = sorted(rows_for(&db, sql, 1));
    for threads in [2, 8] {
        assert_eq!(sorted(rows_for(&db, sql, threads)), serial, "threads={threads}");
    }
    // Join with the big table as the (parallel) build side.
    let sql = "SELECT count(*) FROM customers c JOIN orders o ON c.cid = o.cid \
               WHERE o.amount > 250.0";
    let serial = rows_for(&db, sql, 1);
    for threads in [2, 8] {
        assert_eq!(rows_for(&db, sql, threads), serial, "threads={threads}");
    }
}

#[test]
fn writes_interleaved_with_parallel_reads_stay_consistent() {
    let db = wrangling_db(ROWS, 0.25, 5).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    let before = conn.query("SELECT count(*) FROM t WHERE d = -999").unwrap();
    let missing = match before.scalar().unwrap() {
        Value::BigInt(n) => n,
        other => panic!("{other:?}"),
    };
    assert!(missing > 0);
    // The §2 wrangling update, executed while parallel scans are the
    // default read path.
    conn.execute("UPDATE t SET d = NULL WHERE d = -999").unwrap();
    let after = conn.query("SELECT count(*) FROM t WHERE d IS NULL").unwrap();
    assert_eq!(after.scalar().unwrap(), Value::BigInt(missing));
    let total = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(total.scalar().unwrap(), Value::BigInt(ROWS as i64));
}

#[test]
fn oversized_sorts_fall_back_to_the_spilling_serial_path() {
    let db = wrangling_db(ROWS, 0.25, 17).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    let sql = "SELECT id, v FROM t ORDER BY v DESC, id";
    let unconstrained = conn.query(sql).unwrap().to_rows();
    // A memory limit far below the table size: the planner must route the
    // sort to the serial ExternalSortOp (which spills runs to disk)
    // rather than materializing everything in parallel workers — and the
    // answer must not change.
    conn.execute("PRAGMA memory_limit = 1000000").unwrap();
    let constrained = conn.query(sql).unwrap().to_rows();
    assert_eq!(constrained.len(), ROWS);
    assert_eq!(constrained, unconstrained);
    conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
}

#[test]
fn grouped_aggregate_respects_the_memory_limit() {
    let db = wrangling_db(ROWS, 0.25, 19).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    // GROUP BY id has one group per row; at the engine's ~96 bytes/group
    // accounting that far exceeds a 2 MB budget, so the parallel
    // aggregate must abort with an error — not sail past the limit.
    conn.execute("PRAGMA memory_limit = 2000000").unwrap();
    let r = conn.query("SELECT id, count(*) FROM t GROUP BY id");
    assert!(r.is_err(), "60k-group aggregate must exceed a 2MB budget");
    // With the budget restored the same query runs.
    conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
    let ok = conn.query("SELECT id, count(*) FROM t GROUP BY id").unwrap();
    assert_eq!(ok.row_count(), ROWS);
}

#[test]
fn cooperation_clamp_reduces_fanout_not_results() {
    let db = wrangling_db(ROWS, 0.25, 13).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 8").unwrap();
    let sql = "SELECT d % 5, count(*) FROM t GROUP BY d % 5";
    let relaxed = conn.query(sql).unwrap().to_rows();
    // Host app pegs the CPU: policy clamps workers to the floor of one —
    // i.e. the serial path — without changing any result.
    db.policy().set_app_cpu_load(0.99);
    assert_eq!(db.policy().worker_threads(), 1);
    let clamped = conn.query(sql).unwrap().to_rows();
    assert_eq!(sorted(relaxed), sorted(clamped));
    db.policy().set_app_cpu_load(0.5);
    assert_eq!(db.policy().worker_threads(), 4);
    let half = conn.query(sql).unwrap().to_rows();
    assert_eq!(sorted(half), sorted(conn.query(sql).unwrap().to_rows()));
}
