//! The pipeline-DAG parallel executor must be invisible to SQL: every
//! query returns the same rows at 1, 2, 3 and 8 worker threads, repeated
//! runs are bit-identical, and the cooperation clamp keeps the engine
//! polite when the host application burns CPU.

use eider::Value;
use eider_bench::{star_db, wrangling_db};

const ROWS: usize = 60_000;

/// Queries spanning every parallel sink and DAG shape: collect, simple
/// aggregate, grouped aggregate (incl. DISTINCT aggregates), spilling
/// sort, Top-N (ORDER BY + LIMIT), DISTINCT as a grouped aggregate, and
/// UNION ALL of sibling pipelines — bare and under an aggregate.
const WRANGLING_QUERIES: &[&str] = &[
    "SELECT count(*), sum(id) FROM t WHERE d <> -999",
    "SELECT min(v), max(v), avg(v), stddev(v) FROM t",
    "SELECT id, v FROM t WHERE id % 97 = 3",
    "SELECT d % 10 AS bucket, count(*), sum(id), count(DISTINCT d) FROM t \
     WHERE d <> -999 GROUP BY d % 10",
    "SELECT id FROM t WHERE id < 30000 ORDER BY id % 1000 DESC, id",
    "SELECT count(*) FROM t WHERE v > 500.0",
    "SELECT sum(DISTINCT v), count(DISTINCT d) FROM t WHERE id < 40000",
    "SELECT id FROM t ORDER BY id LIMIT 25 OFFSET 10",
    "SELECT id, v FROM t WHERE id < 20000 ORDER BY v DESC, id LIMIT 40 OFFSET 5",
    "SELECT DISTINCT d % 10 FROM t WHERE d <> -999",
    "SELECT id FROM t WHERE id < 3000 UNION ALL SELECT id FROM t WHERE id >= 57000",
    "SELECT count(*) FROM (SELECT id FROM t WHERE id < 100 UNION ALL SELECT id FROM t WHERE id >= 59900) u",
    // Sinks directly above a UNION ALL: these stream through the chunk
    // queue (grouped aggregate, DISTINCT, sort, Top-N above the union).
    "SELECT d % 10, count(*), sum(id) FROM (SELECT id, d FROM t WHERE id < 20000 \
     UNION ALL SELECT id, d FROM t WHERE id >= 40000) u GROUP BY d % 10",
    "SELECT DISTINCT d % 10 FROM (SELECT id, d FROM t WHERE id < 20000 \
     UNION ALL SELECT id, d FROM t WHERE id >= 40000) u",
    "SELECT id FROM (SELECT id FROM t WHERE id < 2000 \
     UNION ALL SELECT id FROM t WHERE id >= 58000) u ORDER BY id DESC",
    "SELECT id FROM (SELECT id FROM t WHERE id < 2000 \
     UNION ALL SELECT id FROM t WHERE id >= 58000) u ORDER BY id DESC LIMIT 30 OFFSET 3",
];

fn rows_for(db: &std::sync::Arc<eider::Database>, sql: &str, threads: usize) -> Vec<Vec<Value>> {
    let conn = db.connect();
    conn.execute(&format!("PRAGMA threads = {threads}")).unwrap();
    conn.query(sql).unwrap().to_rows()
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Rows equal, allowing the parallel merge tree's last-ulp rounding
/// differences on Doubles (integer aggregates must match exactly).
fn assert_rows_close(a: &[Vec<Value>], b: &[Vec<Value>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: row counts differ");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "{context}");
        for (x, y) in ra.iter().zip(rb) {
            match (x, y) {
                (Value::Double(p), Value::Double(q)) => {
                    let tolerance = 1e-9 * p.abs().max(q.abs()).max(1.0);
                    assert!((p - q).abs() <= tolerance, "{context}: {p} vs {q}");
                }
                _ => assert_eq!(x, y, "{context}"),
            }
        }
    }
}

#[test]
fn every_query_shape_is_thread_count_invariant() {
    let db = wrangling_db(ROWS, 0.25, 7).unwrap();
    for sql in WRANGLING_QUERIES {
        let serial = rows_for(&db, sql, 1);
        assert!(!serial.is_empty(), "{sql}");
        for threads in [2, 3, 8] {
            let parallel = rows_for(&db, sql, threads);
            let context = format!("{sql} (threads={threads})");
            if sql.contains("ORDER BY") {
                assert_rows_close(&parallel, &serial, &context);
            } else {
                assert_rows_close(&sorted(parallel), &sorted(serial.clone()), &context);
            }
        }
    }
}

#[test]
fn parallel_runs_are_deterministic() {
    let db = wrangling_db(ROWS, 0.25, 11).unwrap();
    for sql in WRANGLING_QUERIES {
        // Same thread count, repeated: byte-identical rows including order
        // (collect re-orders by morsel, groups come out key-sorted, sorts
        // tie-break on scan position).
        let a = rows_for(&db, sql, 4);
        let b = rows_for(&db, sql, 4);
        assert_eq!(a, b, "{sql} not deterministic at 4 threads");
        // Different thread counts also agree exactly.
        let c = rows_for(&db, sql, 2);
        assert_eq!(a, c, "{sql} differs between 4 and 2 threads");
    }
}

#[test]
fn join_with_parallel_probe_matches_serial() {
    let db = star_db(50_000, 500, 3).unwrap();
    // Fact-table probe side runs morsel-parallel against the small
    // dimension build; the grouped aggregate rides the same pipeline, so
    // its double sums carry the parallel merge tree's ±ulp (exact
    // equality across parallel thread counts is asserted below).
    let sql = "SELECT c.segment, count(*), sum(o.amount) FROM orders o \
               JOIN customers c ON o.cid = c.cid GROUP BY c.segment";
    let serial = sorted(rows_for(&db, sql, 1));
    let reference = sorted(rows_for(&db, sql, 2));
    assert_rows_close(&reference, &serial, sql);
    for threads in [3, 8] {
        assert_eq!(sorted(rows_for(&db, sql, threads)), reference, "threads={threads}");
    }
    // Join with the big table as the (morsel-parallel) build side and the
    // small one as a serially-pulled probe.
    let sql = "SELECT count(*) FROM customers c JOIN orders o ON c.cid = o.cid \
               WHERE o.amount > 250.0";
    let serial = rows_for(&db, sql, 1);
    for threads in [2, 8] {
        assert_eq!(rows_for(&db, sql, threads), serial, "threads={threads}");
    }
}

#[test]
fn limit_over_join_stays_correct_with_the_parallel_build() {
    // Plain LIMIT over a join is not a DAG shape, but the serial path
    // still evaluates a chain-shaped big build side morsel-parallel and
    // streams the probe with early-stop semantics. Probe rows arrive in
    // scan order and matches in build-entry order, so even the unsorted
    // prefix is identical at every thread count.
    let db = star_db(50_000, 500, 31).unwrap();
    let sql = "SELECT c.cid, o.oid FROM customers c JOIN orders o ON c.cid = o.cid LIMIT 20";
    let serial = rows_for(&db, sql, 1);
    assert_eq!(serial.len(), 20);
    for threads in [2, 4, 8] {
        assert_eq!(rows_for(&db, sql, threads), serial, "threads={threads}");
    }
}

#[test]
fn parallel_probe_is_deterministic_run_to_run() {
    let db = star_db(50_000, 500, 13).unwrap();
    // Probe chunks re-order by morsel sequence, so even the raw (unsorted,
    // ungrouped) join output is byte-identical across runs and thread
    // counts — including the double column.
    let sql = "SELECT o.oid, o.amount, c.segment FROM orders o \
               JOIN customers c ON o.cid = c.cid WHERE o.qty > 2";
    let a = rows_for(&db, sql, 4);
    let b = rows_for(&db, sql, 4);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same thread count must reproduce byte-identical rows");
    let c = rows_for(&db, sql, 2);
    let d = rows_for(&db, sql, 8);
    assert_eq!(a, c, "4 vs 2 threads");
    assert_eq!(a, d, "4 vs 8 threads");
}

#[test]
fn writes_interleaved_with_parallel_reads_stay_consistent() {
    let db = wrangling_db(ROWS, 0.25, 5).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    let before = conn.query("SELECT count(*) FROM t WHERE d = -999").unwrap();
    let missing = match before.scalar().unwrap() {
        Value::BigInt(n) => n,
        other => panic!("{other:?}"),
    };
    assert!(missing > 0);
    // The §2 wrangling update, executed while parallel scans are the
    // default read path.
    conn.execute("UPDATE t SET d = NULL WHERE d = -999").unwrap();
    let after = conn.query("SELECT count(*) FROM t WHERE d IS NULL").unwrap();
    assert_eq!(after.scalar().unwrap(), Value::BigInt(missing));
    let total = conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(total.scalar().unwrap(), Value::BigInt(ROWS as i64));
}

#[test]
fn oversized_sorts_spill_worker_runs_instead_of_falling_back() {
    let db = wrangling_db(ROWS, 0.25, 17).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    let sql = "SELECT id, v FROM t ORDER BY v DESC, id";
    let unconstrained = conn.query(sql).unwrap().to_rows();
    // A memory limit far below the data size: the parallel sort keeps
    // running (no serial fallback) — its workers sort bounded runs, spill
    // them through the external-sort run format, and the merge streams
    // them back. Every thread count returns the identical row order.
    conn.execute("PRAGMA memory_limit = 1000000").unwrap();
    for threads in [1, 2, 3, 8] {
        let constrained = rows_for(&db, sql, threads);
        assert_eq!(constrained.len(), ROWS, "threads={threads}");
        assert_eq!(constrained, unconstrained, "threads={threads}");
    }
    conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
    assert_eq!(db.buffers().used_memory(), 0, "sort reservations all released");
}

#[test]
fn topn_and_distinct_survive_tight_memory_limits() {
    let db = wrangling_db(ROWS, 0.25, 23).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    let topn = "SELECT id, v FROM t ORDER BY v, id LIMIT 11 OFFSET 3";
    let distinct = "SELECT DISTINCT d % 25 FROM t WHERE d <> -999";
    let topn_rows = conn.query(topn).unwrap().to_rows();
    let distinct_rows = sorted(conn.query(distinct).unwrap().to_rows());
    assert_eq!(topn_rows.len(), 11);
    assert_eq!(distinct_rows.len(), 25);
    conn.execute("PRAGMA memory_limit = 2000000").unwrap();
    assert_eq!(conn.query(topn).unwrap().to_rows(), topn_rows);
    assert_eq!(sorted(conn.query(distinct).unwrap().to_rows()), distinct_rows);
    conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
}

#[test]
fn union_under_aggregate_is_identical_across_thread_counts_and_memory_limits() {
    // The acceptance shape: a UNION ALL of two table scans under an
    // aggregate. Both arms stream through the bounded chunk queue into
    // the concurrently-running aggregate; integer aggregates make the
    // output exact, so every thread count must match the serial run
    // bit for bit (the parallel aggregate emits key-sorted, hence the
    // sort on both sides).
    let db = wrangling_db(ROWS, 0.25, 31).unwrap();
    let grouped = "SELECT d % 16, count(*), sum(id), min(id), max(id) FROM \
                   (SELECT id, d FROM t WHERE id < 25000 \
                    UNION ALL SELECT id, d FROM t WHERE id >= 35000) u \
                   GROUP BY d % 16";
    let simple = "SELECT count(*), sum(id) FROM \
                  (SELECT id, d FROM t WHERE id < 25000 \
                   UNION ALL SELECT id, d FROM t WHERE id >= 35000) u";
    let grouped_serial = sorted(rows_for(&db, grouped, 1));
    let simple_serial = rows_for(&db, simple, 1);
    assert_eq!(grouped_serial.len(), 17, "16 buckets plus the NULL-d bucket");
    for threads in [2, 4, 8] {
        assert_eq!(sorted(rows_for(&db, grouped, threads)), grouped_serial, "threads={threads}");
        assert_eq!(rows_for(&db, simple, threads), simple_serial, "threads={threads}");
    }
    // A 1 MB limit: queue batches, their reservations and the aggregate
    // tables all fit by spilling nothing and bounding the queue backlog;
    // results stay identical and everything is released afterwards.
    let conn = db.connect();
    conn.execute("PRAGMA memory_limit = 1000000").unwrap();
    for threads in [1, 2, 4, 8] {
        assert_eq!(sorted(rows_for(&db, grouped, threads)), grouped_serial, "threads={threads}");
    }
    conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
    assert_eq!(db.buffers().used_memory(), 0, "queue/aggregate reservations all released");
}

#[test]
fn streaming_cursor_completes_results_larger_than_the_memory_limit() {
    // The acceptance shape for the streaming result path: queries whose
    // *full* result exceeds the memory limit must complete through the
    // cursor under a 1 MB buffer manager — the serial path charges one
    // in-flight chunk, the parallel path streams the root node's output
    // through a byte-bounded queue whose backpressure throttles workers —
    // with bit-identical rows at 1, 2, 4 and 8 threads.
    let db = wrangling_db(ROWS, 0.25, 37).unwrap();
    let conn = db.connect();
    const LIMIT: usize = 500_000;
    let queries = [
        // Plain scan: the whole table flows through the cursor.
        ("SELECT id, d, v FROM t", true),
        // Parallel sort: the k-way merge feeds the result edge directly.
        ("SELECT id, v FROM t ORDER BY v DESC, id", true),
        // Fused Top-N far beyond the old 100k cap: worker buffers charge
        // the ledger and spill under the tight limit instead of falling
        // back to serial.
        ("SELECT id, v FROM t ORDER BY v DESC, id LIMIT 150000 OFFSET 17", false),
        // Multi-output graph covering the whole table: both arms stream
        // into the ordered result edge, replayed in arm-major order; the
        // per-arm quota keeps the second arm from piling its (oversized)
        // result into the reorder buffer while arm 0 drains.
        (
            "SELECT id, d, v FROM t WHERE id < 30000 \
             UNION ALL SELECT id, d, v FROM t WHERE id >= 30000",
            true,
        ),
    ];
    for (sql, oversized) in queries {
        let reference = rows_for(&db, sql, 1);
        conn.execute(&format!("PRAGMA memory_limit = {LIMIT}")).unwrap();
        for threads in [1, 2, 4, 8] {
            conn.execute(&format!("PRAGMA threads = {threads}")).unwrap();
            let mut cursor = conn.query_stream(sql).unwrap();
            let mut rows = Vec::new();
            let mut result_bytes = 0usize;
            while let Some(chunk) = cursor.next_chunk().unwrap() {
                result_bytes += chunk.size_bytes();
                rows.extend(chunk.to_rows());
            }
            if oversized {
                assert!(
                    result_bytes > LIMIT,
                    "{sql}: result ({result_bytes} B) must exceed the {LIMIT} B limit \
                     for the test to mean anything"
                );
            }
            assert_eq!(rows, reference, "{sql} threads={threads}");
        }
        conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
    }
    assert_eq!(db.buffers().used_memory(), 0, "every stream charge released");
}

#[test]
fn dropping_a_cursor_mid_stream_cancels_cleanly() {
    let db = wrangling_db(ROWS, 0.25, 41).unwrap();
    let conn = db.connect();
    for threads in [1, 4] {
        conn.execute(&format!("PRAGMA threads = {threads}")).unwrap();
        let mut cursor = conn.query_stream("SELECT id, d, v FROM t ORDER BY v, id").unwrap();
        // Take one chunk, abandon the rest: the parallel scheduler must
        // wind down (not leak its thread or reservations) and the
        // connection must stay usable.
        assert!(cursor.next_chunk().unwrap().is_some());
        drop(cursor);
        assert_eq!(db.buffers().used_memory(), 0, "threads={threads}: charges released");
        let again = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(again.scalar().unwrap(), Value::BigInt(ROWS as i64));
    }
}

#[test]
fn host_probe_pragma_feeds_the_policy_from_proc() {
    let db = wrangling_db(ROWS, 0.25, 29).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    // Simulated load is authoritative while the probe is off.
    db.policy().set_app_cpu_load(0.5);
    conn.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(db.policy().app_cpu_load(), 0.5, "probe off: load untouched");
    // On Linux the real probe overwrites it with a measured fraction, and
    // the memory side shrinks the effective limit toward what the machine
    // has left (never below the 1/20 floor, never above the configured
    // base).
    let configured = db.config().memory_limit;
    if conn.execute("PRAGMA host_probe = 1").is_ok() {
        let r = conn.query("SELECT count(*) FROM t WHERE d <> -999").unwrap();
        assert_eq!(r.row_count(), 1);
        let load = db.policy().app_cpu_load();
        assert!((0.0..=1.0).contains(&load), "measured load {load}");
        let effective = db.buffers().memory_limit();
        assert!(
            (configured / 20..=configured).contains(&effective),
            "effective limit {effective} outside [{}, {configured}]",
            configured / 20
        );
        conn.execute("PRAGMA host_probe = 0").unwrap();
    }
    // PRAGMA memory_limit resets the base (and the effective limit).
    conn.execute(&format!("PRAGMA memory_limit = {configured}")).unwrap();
    assert_eq!(db.buffers().memory_limit(), configured);
    db.policy().set_app_cpu_load(0.0);
}

#[test]
fn grouped_aggregate_respects_the_memory_limit() {
    let db = wrangling_db(ROWS, 0.25, 19).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 4").unwrap();
    // GROUP BY id has one group per row; at the engine's ~96 bytes/group
    // accounting that far exceeds a 2 MB budget, so the parallel
    // aggregate must abort with an error — not sail past the limit.
    conn.execute("PRAGMA memory_limit = 2000000").unwrap();
    let r = conn.query("SELECT id, count(*) FROM t GROUP BY id");
    assert!(r.is_err(), "60k-group aggregate must exceed a 2MB budget");
    // With the budget restored the same query runs.
    conn.execute("PRAGMA memory_limit = 1073741824").unwrap();
    let ok = conn.query("SELECT id, count(*) FROM t GROUP BY id").unwrap();
    assert_eq!(ok.row_count(), ROWS);
}

#[test]
fn cooperation_clamp_reduces_fanout_not_results() {
    let db = wrangling_db(ROWS, 0.25, 13).unwrap();
    let conn = db.connect();
    conn.execute("PRAGMA threads = 8").unwrap();
    let sql = "SELECT d % 5, count(*) FROM t GROUP BY d % 5";
    let relaxed = conn.query(sql).unwrap().to_rows();
    // Host app pegs the CPU: policy clamps workers to the floor of one —
    // i.e. the serial path — without changing any result.
    db.policy().set_app_cpu_load(0.99);
    assert_eq!(db.policy().worker_threads(), 1);
    let clamped = conn.query(sql).unwrap().to_rows();
    assert_eq!(sorted(relaxed), sorted(clamped));
    db.policy().set_app_cpu_load(0.5);
    assert_eq!(db.policy().worker_threads(), 4);
    let half = conn.query(sql).unwrap().to_rows();
    assert_eq!(sorted(half), sorted(conn.query(sql).unwrap().to_rows()));
}
