//! Property tests for the row-format key encoding: `memcmp` over encoded
//! keys must agree with `Value::total_cmp` (ordering *and* equality), and
//! decoding must invert encoding, for arbitrary typed rows.

use eider_exec::rowkey::{decode_key_values, encode_keys, KeyLayout, KeyScratch};
use eider_vector::{LogicalType, Value, Vector};
use proptest::prelude::*;

/// Encode a slice of same-typed rows; returns one byte string per row.
fn encode_rows(types: &[LogicalType], rows: &[Vec<Value>]) -> Vec<Vec<u8>> {
    let layout = KeyLayout::new(types.to_vec());
    let columns: Vec<Vector> = (0..types.len())
        .map(|c| {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            Vector::from_values(types[c], &vals).unwrap()
        })
        .collect();
    let mut scratch = KeyScratch::default();
    encode_keys(&layout, &columns, rows.len(), &mut scratch).unwrap();
    (0..rows.len()).map(|i| scratch.key(i).to_vec()).collect()
}

fn total_cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| *o != std::cmp::Ordering::Equal)
        .unwrap_or(std::cmp::Ordering::Equal)
}

fn arb_int() -> impl Strategy<Value = Value> {
    prop_oneof![any::<i32>().prop_map(Value::Integer), Just(Value::Null)]
}

fn arb_double() -> impl Strategy<Value = Value> {
    // Finite doubles; NaN's `total_cmp` is not an order to begin with
    // (`sql_cmp` collapses it to Equal), so it is out of scope here.
    prop_oneof![(-1e300f64..1e300).prop_map(Value::Double), Just(Value::Null)]
}

fn arb_string() -> impl Strategy<Value = Value> {
    prop_oneof!["[a-c%_\u{0}]{0,12}".prop_map(Value::Varchar), Just(Value::Null)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn integer_key_order_matches_value_order(
        a in arb_int(), b in arb_int(), c in arb_int(), d in arb_int(),
    ) {
        let rows = vec![vec![a, c], vec![b, d]];
        let keys = encode_rows(&[LogicalType::Integer, LogicalType::Integer], &rows);
        prop_assert_eq!(keys[0].cmp(&keys[1]), total_cmp_rows(&rows[0], &rows[1]));
    }

    #[test]
    fn mixed_key_order_matches_value_order(
        a in arb_int(), b in arb_int(),
        x in arb_double(), y in arb_double(),
        s in arb_string(), t in arb_string(),
    ) {
        let types = [LogicalType::Integer, LogicalType::Double, LogicalType::Varchar];
        let rows = vec![vec![a, x, s], vec![b, y, t]];
        let keys = encode_rows(&types, &rows);
        prop_assert_eq!(keys[0].cmp(&keys[1]), total_cmp_rows(&rows[0], &rows[1]));
        // Equality agrees both ways (grouping equality incl. NULL == NULL).
        prop_assert_eq!(
            keys[0] == keys[1],
            total_cmp_rows(&rows[0], &rows[1]) == std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn encode_decode_round_trips(
        a in arb_int(), x in arb_double(), s in arb_string(),
    ) {
        let types = [LogicalType::Integer, LogicalType::Double, LogicalType::Varchar];
        let row = vec![a, x, s];
        let keys = encode_rows(&types, std::slice::from_ref(&row));
        let layout = KeyLayout::new(types.to_vec());
        let decoded = decode_key_values(&layout, &keys[0]).unwrap();
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn varchar_escaping_is_injective(
        s in "[a\u{0}]{0,10}", t in "[a\u{0}]{0,10}",
    ) {
        // Strings over {'a', NUL} stress the escape encoding: distinct
        // strings must produce distinct keys.
        let rows = vec![vec![Value::Varchar(s.clone())], vec![Value::Varchar(t.clone())]];
        let keys = encode_rows(&[LogicalType::Varchar], &rows);
        prop_assert_eq!(keys[0] == keys[1], s == t);
    }
}
