//! Allocation accounting for the hot key paths: in steady state (all
//! groups known, scratch buffers warm) grouped aggregation and join
//! probing must not allocate per row — the whole point of the row-format
//! key representation. A counting global allocator makes the claim
//! checkable instead of aspirational.

use eider_exec::aggregate::AggKind;
use eider_exec::expression::Expr;
use eider_exec::ops::agg::{AggExpr, GroupTable};
use eider_exec::ops::basic::ValuesOp;
use eider_exec::ops::join::{BuildSide, JoinType};
use eider_exec::ops::{JoinProbeOp, OperatorBox, PhysicalOperator};
use eider_vector::{DataChunk, LogicalType, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

const ROWS: usize = 2048;

fn group_chunk() -> DataChunk {
    let rows: Vec<Vec<Value>> =
        (0..ROWS as i32).map(|i| vec![Value::Integer(i % 64), Value::Integer(i)]).collect();
    DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &rows).unwrap()
}

#[test]
fn steady_state_grouping_allocates_per_chunk_not_per_row() {
    let groups = vec![Expr::column(0, LogicalType::Integer)];
    let aggs = vec![
        AggExpr { kind: AggKind::CountStar, arg: None, distinct: false },
        AggExpr {
            kind: AggKind::Sum,
            arg: Some(Expr::column(1, LogicalType::Integer)),
            distinct: false,
        },
    ];
    let chunk = group_chunk();
    let mut table = GroupTable::new(&groups, &aggs);
    // Warm-up: discover all 64 groups, size the scratch and the table.
    table.update_chunk(&groups, &aggs, &chunk).unwrap();
    table.update_chunk(&groups, &aggs, &chunk).unwrap();
    assert_eq!(table.len(), 64);
    // Steady state: the only allocations allowed are the per-chunk ones
    // (expression evaluation clones the key/arg columns) — a handful per
    // 2048-row chunk, nowhere near one per row.
    let allocs = allocations(|| {
        table.update_chunk(&groups, &aggs, &chunk).unwrap();
    });
    assert!(
        allocs < 64,
        "steady-state group_chunk made {allocs} allocations for {ROWS} rows \
         (per-row allocation regressed)"
    );
}

#[test]
fn steady_state_join_probe_allocates_per_chunk_not_per_row() {
    use eider_coop::compression::CompressionLevel;
    // Build side: 64 keys, one row each.
    let build_rows: Vec<Vec<Value>> =
        (0..64).map(|i| vec![Value::Integer(i), Value::Integer(i * 10)]).collect();
    let build_chunk =
        DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Integer], &build_rows).unwrap();
    let mut build = BuildSide::new(CompressionLevel::None, None).unwrap();
    build.append_chunk(build_chunk, &[Expr::column(0, LogicalType::Integer)]).unwrap();
    let build = Arc::new(build);

    let probe_chunk = group_chunk();
    let probe = |()| -> JoinProbeOp {
        let child: OperatorBox = Box::new(ValuesOp::new(
            vec![LogicalType::Integer, LogicalType::Integer],
            vec![probe_chunk.clone()],
        ));
        JoinProbeOp::new(
            child,
            Arc::clone(&build),
            vec![Expr::column(0, LogicalType::Integer)],
            JoinType::Inner,
            vec![LogicalType::Integer, LogicalType::Integer],
        )
    };
    // Warm-up run.
    let mut op = probe(());
    let mut produced = 0usize;
    while let Some(c) = op.next_chunk().unwrap() {
        produced += c.len();
    }
    assert_eq!(produced, ROWS, "1:1 join");
    // Measured run: operator construction + per-chunk buffers + output
    // materialization, but nothing per input row. Budget: well under one
    // allocation per 16 rows.
    let allocs = allocations(|| {
        let mut op = probe(());
        while let Some(c) = op.next_chunk().unwrap() {
            std::hint::black_box(c.len());
        }
    });
    assert!(
        allocs < ROWS / 16,
        "join probe made {allocs} allocations for {ROWS} probe rows \
         (per-row allocation regressed)"
    );
}
