//! Integration tests for §3 (resilience/durability) and §2/§6
//! (concurrency) behaviour across the full stack.

use eider::{Database, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_db(name: &str) -> (PathBuf, String) {
    let mut p = std::env::temp_dir();
    p.push(format!("eider_it_{}_{name}.db", std::process::id()));
    let wal = format!("{}.wal", p.display());
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(&wal);
    (p, wal)
}

#[test]
fn crash_recovery_preserves_committed_loses_uncommitted() {
    let (path, wal) = tmp_db("crash");
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
        // An open transaction that never commits...
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t VALUES (999)").unwrap();
        // ... and a crash (no checkpoint, no drop).
        std::mem::forget(db);
    }
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        let r = conn.query("SELECT v FROM t").unwrap();
        assert_eq!(r.to_rows(), vec![vec![Value::Integer(1)]]);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn checkpoint_then_more_wal_then_recover() {
    let (path, wal) = tmp_db("ckpt_wal");
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
        conn.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        conn.execute("CHECKPOINT").unwrap();
        assert_eq!(db.wal_size(), 0, "checkpoint consumed the WAL");
        conn.execute("INSERT INTO t VALUES (3)").unwrap();
        conn.execute("UPDATE t SET v = 20 WHERE v = 2").unwrap();
        conn.execute("DELETE FROM t WHERE v = 1").unwrap();
        std::mem::forget(db); // crash: image + WAL tail
    }
    {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        let r = conn.query("SELECT v FROM t ORDER BY v").unwrap();
        assert_eq!(r.to_rows(), vec![vec![Value::Integer(3)], vec![Value::Integer(20)]]);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn repeated_reopen_cycles() {
    let (path, wal) = tmp_db("cycles");
    for round in 0..5 {
        let db = Database::open(&path).unwrap();
        let conn = db.connect();
        if round == 0 {
            conn.execute("CREATE TABLE log (round INTEGER, filler VARCHAR)").unwrap();
        }
        conn.execute(&format!("INSERT INTO log VALUES ({round}, 'payload-{round}')")).unwrap();
        let r = conn.query("SELECT count(*) FROM log").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::BigInt(round + 1));
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn write_write_conflict_aborts_second_writer() {
    let db = Database::in_memory().unwrap();
    let c1 = db.connect();
    let c2 = db.connect();
    c1.execute("CREATE TABLE t (v INTEGER)").unwrap();
    c1.execute("INSERT INTO t VALUES (1)").unwrap();
    c1.execute("BEGIN").unwrap();
    c2.execute("BEGIN").unwrap();
    c1.execute("UPDATE t SET v = 2").unwrap();
    let err = c2.execute("UPDATE t SET v = 3").unwrap_err();
    assert!(err.is_transient(), "first-updater-wins: {err}");
    c2.execute("ROLLBACK").unwrap();
    c1.execute("COMMIT").unwrap();
    let r = db.connect().query("SELECT v FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Integer(2));
}

#[test]
fn snapshot_isolation_across_connections() {
    let db = Database::in_memory().unwrap();
    let writer = db.connect();
    let reader = db.connect();
    writer.execute("CREATE TABLE t (v INTEGER)").unwrap();
    writer.execute("INSERT INTO t VALUES (10)").unwrap();
    reader.execute("BEGIN").unwrap();
    let before = reader.query("SELECT sum(v) FROM t").unwrap();
    writer.execute("UPDATE t SET v = 99").unwrap(); // autocommits
    let after_in_snapshot = reader.query("SELECT sum(v) FROM t").unwrap();
    assert_eq!(before.scalar().unwrap(), after_in_snapshot.scalar().unwrap());
    reader.execute("COMMIT").unwrap();
    let fresh = reader.query("SELECT sum(v) FROM t").unwrap();
    assert_eq!(fresh.scalar().unwrap(), Value::BigInt(99));
}

#[test]
fn concurrent_writers_to_different_tables() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE a (v INTEGER)").unwrap();
    conn.execute("CREATE TABLE b (v INTEGER)").unwrap();
    let handles: Vec<_> = ["a", "b"]
        .into_iter()
        .map(|table| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let conn = db.connect();
                for i in 0..50 {
                    conn.execute(&format!("INSERT INTO {table} VALUES ({i})")).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for table in ["a", "b"] {
        let r = conn.query(&format!("SELECT count(*) FROM {table}")).unwrap();
        assert_eq!(r.scalar().unwrap(), Value::BigInt(50), "{table}");
    }
}

#[test]
fn wal_grows_then_autocheckpoint_consumes_it() {
    let (path, wal) = tmp_db("autockpt");
    {
        let db = Database::open(&path).unwrap();
        db.set_wal_autocheckpoint(20_000); // tiny threshold
        let conn = db.connect();
        conn.execute("CREATE TABLE t (v INTEGER, s VARCHAR)").unwrap();
        for i in 0..50 {
            conn.execute(&format!(
                "INSERT INTO t VALUES ({i}, 'some reasonably long payload string {i}')"
            ))
            .unwrap();
        }
        // The WAL must have been checkpointed away at least once.
        assert!(db.wal_size() < 20_000 * 3, "wal size: {}", db.wal_size());
        let r = conn.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::BigInt(50));
    }
    {
        let db = Database::open(&path).unwrap();
        let r = db.connect().query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::BigInt(50));
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn csv_round_trip_through_copy() {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INTEGER, name VARCHAR, score DOUBLE)").unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'with,comma', 1.5), (2, NULL, 2.5), (3, 'plain', NULL)")
        .unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("eider_copy_{}.csv", std::process::id()));
    let n = conn.execute(&format!("COPY t TO '{}'", path.display())).unwrap();
    assert_eq!(n, 3);
    conn.execute("CREATE TABLE t2 (id INTEGER, name VARCHAR, score DOUBLE)").unwrap();
    let n = conn.execute(&format!("COPY t2 FROM '{}' (HEADER)", path.display())).unwrap();
    assert_eq!(n, 3);
    let a = conn.query("SELECT * FROM t ORDER BY id").unwrap();
    let b = conn.query("SELECT * FROM t2 ORDER BY id").unwrap();
    assert_eq!(a.to_rows(), b.to_rows());
    let _ = std::fs::remove_file(&path);
}
