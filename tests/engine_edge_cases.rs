//! Edge cases across the whole engine: empty inputs, NULL-heavy data,
//! boundary values, and error paths.

use eider::{Database, Value};

fn conn() -> eider::Connection {
    Database::in_memory().unwrap().connect()
}

#[test]
fn empty_table_behaviour() {
    let c = conn();
    c.execute("CREATE TABLE e (v INTEGER, s VARCHAR)").unwrap();
    let r = c.query("SELECT count(*), sum(v), min(v), avg(v) FROM e").unwrap();
    let row = &r.to_rows()[0];
    assert_eq!(row[0], Value::BigInt(0));
    assert!(row[1].is_null() && row[2].is_null() && row[3].is_null());
    assert_eq!(c.query("SELECT * FROM e").unwrap().row_count(), 0);
    assert_eq!(c.query("SELECT * FROM e ORDER BY v LIMIT 5").unwrap().row_count(), 0);
    assert_eq!(c.execute("UPDATE e SET v = 1").unwrap(), 0);
    assert_eq!(c.execute("DELETE FROM e").unwrap(), 0);
    assert_eq!(c.query("SELECT e1.v FROM e e1 JOIN e e2 ON e1.v = e2.v").unwrap().row_count(), 0);
    let r = c.query("SELECT v, count(*) FROM e GROUP BY v").unwrap();
    assert_eq!(r.row_count(), 0, "no groups from no rows");
}

#[test]
fn all_null_column() {
    let c = conn();
    c.execute("CREATE TABLE n (v INTEGER)").unwrap();
    c.execute("INSERT INTO n VALUES (NULL), (NULL), (NULL)").unwrap();
    let r = c.query("SELECT count(*), count(v), sum(v) FROM n").unwrap();
    let row = &r.to_rows()[0];
    assert_eq!(row[0], Value::BigInt(3));
    assert_eq!(row[1], Value::BigInt(0));
    assert!(row[2].is_null());
    // Filters never match NULL.
    assert_eq!(c.query("SELECT * FROM n WHERE v = 0").unwrap().row_count(), 0);
    assert_eq!(c.query("SELECT * FROM n WHERE v <> 0").unwrap().row_count(), 0);
    assert_eq!(c.query("SELECT * FROM n WHERE v IS NULL").unwrap().row_count(), 3);
    // NULL group key forms one group.
    let r = c.query("SELECT v, count(*) FROM n GROUP BY v").unwrap();
    assert_eq!(r.row_count(), 1);
    assert_eq!(r.value(0, 1).unwrap(), Value::BigInt(3));
}

#[test]
fn boundary_integers() {
    let c = conn();
    c.execute("CREATE TABLE b (v BIGINT)").unwrap();
    c.execute(&format!("INSERT INTO b VALUES ({}), ({})", i64::MAX, i64::MIN + 1)).unwrap();
    let r = c.query("SELECT max(v), min(v) FROM b").unwrap();
    assert_eq!(r.value(0, 0).unwrap(), Value::BigInt(i64::MAX));
    assert_eq!(r.value(0, 1).unwrap(), Value::BigInt(i64::MIN + 1));
    // Overflow in an expression errors rather than wrapping.
    assert!(c.query("SELECT max(v) + 1 FROM b").is_err());
    // Narrowing cast out of range errors.
    assert!(c.query("SELECT CAST(max(v) AS INTEGER) FROM b").is_err());
}

#[test]
fn strings_with_tricky_content() {
    let c = conn();
    c.execute("CREATE TABLE s (v VARCHAR)").unwrap();
    c.execute("INSERT INTO s VALUES ('it''s'), (''), ('percent%under_score'), ('dück')").unwrap();
    assert_eq!(
        c.query("SELECT v FROM s WHERE v = 'it''s'").unwrap().scalar().unwrap(),
        Value::Varchar("it's".into())
    );
    assert_eq!(
        c.query("SELECT count(*) FROM s WHERE v LIKE '%\\%under\\_score'")
            .unwrap()
            .scalar()
            .unwrap(),
        // no escape support: % and _ are wildcards, so the pattern with
        // backslashes matches nothing
        Value::BigInt(0)
    );
    assert_eq!(
        c.query("SELECT count(*) FROM s WHERE v LIKE 'percent%'").unwrap().scalar().unwrap(),
        Value::BigInt(1)
    );
    assert_eq!(
        c.query("SELECT upper(v) FROM s WHERE v = 'dück'").unwrap().scalar().unwrap(),
        Value::Varchar("DÜCK".into())
    );
    assert_eq!(
        c.query("SELECT length(v) FROM s WHERE v = ''").unwrap().scalar().unwrap(),
        Value::BigInt(0)
    );
}

#[test]
fn limit_zero_and_huge_offset() {
    let c = conn();
    c.execute("CREATE TABLE t (v INTEGER)").unwrap();
    c.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    assert_eq!(c.query("SELECT v FROM t LIMIT 0").unwrap().row_count(), 0);
    assert_eq!(c.query("SELECT v FROM t LIMIT 10 OFFSET 100").unwrap().row_count(), 0);
    assert_eq!(c.query("SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 2").unwrap().row_count(), 1);
    assert!(c.query("SELECT v FROM t LIMIT -1").is_err());
}

#[test]
fn self_join_and_alias_scoping() {
    let c = conn();
    c.execute("CREATE TABLE t (v INTEGER)").unwrap();
    c.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let r = c.query("SELECT a.v, b.v FROM t a JOIN t b ON a.v + 1 = b.v ORDER BY a.v").unwrap();
    assert_eq!(
        r.to_rows(),
        vec![
            vec![Value::Integer(1), Value::Integer(2)],
            vec![Value::Integer(2), Value::Integer(3)]
        ]
    );
    // Unqualified v is ambiguous in a self join.
    assert!(c.query("SELECT v FROM t a JOIN t b ON a.v = b.v").is_err());
}

#[test]
fn date_and_timestamp_queries() {
    let c = conn();
    c.execute("CREATE TABLE ev (d DATE, ts TIMESTAMP)").unwrap();
    c.execute(
        "INSERT INTO ev VALUES
         (DATE '2020-01-12', TIMESTAMP '2020-01-12 09:30:00'),
         (DATE '2020-02-29', TIMESTAMP '2020-02-29 23:59:59'),
         (NULL, NULL)",
    )
    .unwrap();
    let r = c.query("SELECT count(*) FROM ev WHERE d >= DATE '2020-02-01'").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(1));
    // DATE compares against TIMESTAMP with promotion.
    let r = c.query("SELECT count(*) FROM ev WHERE ts > DATE '2020-01-12'").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(2));
    let r = c.query("SELECT min(d), max(ts) FROM ev").unwrap();
    assert_eq!(r.value(0, 0).unwrap().to_string(), "2020-01-12");
    assert_eq!(r.value(0, 1).unwrap().to_string(), "2020-02-29 23:59:59");
}

#[test]
fn transactional_ddl_and_errors() {
    let c = conn();
    assert!(c.execute("COMMIT").is_err(), "commit without begin");
    assert!(c.execute("ROLLBACK").is_err());
    c.execute("BEGIN").unwrap();
    assert!(c.execute("BEGIN").is_err(), "nested begin");
    c.execute("ROLLBACK").unwrap();
    // Statement errors inside an explicit txn leave the txn usable.
    c.execute("CREATE TABLE t (v INTEGER)").unwrap();
    c.execute("BEGIN").unwrap();
    c.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(c.execute("INSERT INTO t VALUES ('not a number')").is_err());
    c.execute("COMMIT").unwrap();
    let r = c.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(1));
}

#[test]
fn distinct_aggregates_and_stddev() {
    let c = conn();
    c.execute("CREATE TABLE t (g INTEGER, v INTEGER)").unwrap();
    c.execute("INSERT INTO t VALUES (1, 5), (1, 5), (1, 7), (2, 5), (2, NULL)").unwrap();
    let r = c
        .query("SELECT g, count(DISTINCT v), sum(DISTINCT v) FROM t GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(
        r.to_rows(),
        vec![
            vec![Value::Integer(1), Value::BigInt(2), Value::BigInt(12)],
            vec![Value::Integer(2), Value::BigInt(1), Value::BigInt(5)],
        ]
    );
    let r = c.query("SELECT stddev(v) FROM t WHERE g = 1").unwrap();
    if let Value::Double(sd) = r.scalar().unwrap() {
        assert!((sd - (4.0f64 / 3.0).sqrt()).abs() < 1e-9);
    } else {
        panic!("stddev should be a double");
    }
}

#[test]
fn update_to_same_value_and_noop_where() {
    let c = conn();
    c.execute("CREATE TABLE t (v INTEGER)").unwrap();
    c.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(c.execute("UPDATE t SET v = v").unwrap(), 2);
    assert_eq!(c.execute("UPDATE t SET v = 9 WHERE v > 100").unwrap(), 0);
    assert_eq!(c.execute("DELETE FROM t WHERE FALSE").unwrap(), 0);
    let r = c.query("SELECT sum(v) FROM t").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(3));
}

#[test]
fn case_insensitive_keywords_and_identifiers() {
    let c = conn();
    c.execute("cReAtE tAbLe MiXeD (CamelCol INTEGER)").unwrap();
    c.execute("insert into mixed values (5)").unwrap();
    let r = c.query("SELECT camelcol FROM MIXED WHERE CAMELCOL = 5").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Integer(5));
    // Quoted identifiers preserve what was written (lookups stay
    // case-insensitive in eider).
    c.execute("CREATE TABLE \"Weird Name\" (v INTEGER)").unwrap();
    c.execute("INSERT INTO \"Weird Name\" VALUES (1)").unwrap();
    let r = c.query("SELECT * FROM \"Weird Name\"").unwrap();
    assert_eq!(r.row_count(), 1);
}

#[test]
fn deeply_nested_expressions() {
    let c = conn();
    // Within the nesting limit: evaluates fine.
    let mut expr = String::from("1");
    for _ in 0..40 {
        expr = format!("({expr} + 1)");
    }
    let r = c.query(&format!("SELECT {expr}")).unwrap();
    assert_eq!(r.scalar().unwrap(), Value::BigInt(41));
    // Beyond the limit: a clean parse error, not a stack overflow
    // (hostile/corrupt inputs must never abort the host process, §3).
    let mut expr = String::from("1");
    for _ in 0..500 {
        expr = format!("({expr} + 1)");
    }
    let err = c.query(&format!("SELECT {expr}")).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}

#[test]
fn wide_table_many_columns() {
    let c = conn();
    let cols: Vec<String> = (0..64).map(|i| format!("c{i} INTEGER")).collect();
    c.execute(&format!("CREATE TABLE wide ({})", cols.join(","))).unwrap();
    let vals: Vec<String> = (0..64).map(|i| i.to_string()).collect();
    c.execute(&format!("INSERT INTO wide VALUES ({})", vals.join(","))).unwrap();
    let r = c.query("SELECT c0, c31, c63 FROM wide").unwrap();
    assert_eq!(r.to_rows()[0], vec![Value::Integer(0), Value::Integer(31), Value::Integer(63)]);
    // Update one column; the other 63 stay untouched (§2's column-wise
    // update requirement).
    c.execute("UPDATE wide SET c31 = -1").unwrap();
    let r = c.query("SELECT c30, c31, c32 FROM wide").unwrap();
    assert_eq!(r.to_rows()[0], vec![Value::Integer(30), Value::Integer(-1), Value::Integer(32)]);
}
