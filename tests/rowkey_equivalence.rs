//! Equivalence suite for the row-format key path: the vectorized
//! encode/hash/upsert pipeline behind GROUP BY and hash joins must match
//! the `Value` semantics it replaced — NULL grouping equality, no
//! cross-type collisions, varchar edge cases — and the parallel merge
//! must stay deterministic at every thread count.

use eider::{Database, Value};
use eider_vector::LogicalType;
use std::sync::Arc;

fn db_with(ddl: &str, rows: &[String]) -> Arc<Database> {
    let db = Database::in_memory().unwrap();
    let conn = db.connect();
    conn.execute(ddl).unwrap();
    for r in rows {
        conn.execute(r).unwrap();
    }
    db
}

fn query_at(db: &Arc<Database>, sql: &str, threads: usize) -> Vec<Vec<Value>> {
    let conn = db.connect();
    conn.execute(&format!("PRAGMA threads = {threads}")).unwrap();
    conn.query(sql).unwrap().to_rows()
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

#[test]
fn null_group_keys_form_one_group() {
    let mut rows = Vec::new();
    for i in 0..500 {
        let k = if i % 5 == 0 { "NULL".to_string() } else { format!("{}", i % 7) };
        rows.push(format!("INSERT INTO t VALUES ({k}, {i})"));
    }
    let db = db_with("CREATE TABLE t (k INTEGER, v INTEGER)", &rows);
    let out = sorted(query_at(&db, "SELECT k, count(*), sum(v) FROM t GROUP BY k", 1));
    assert_eq!(out.len(), 8, "7 int groups + 1 NULL group");
    let null_group = out.iter().find(|r| r[0].is_null()).expect("NULL group present");
    assert_eq!(null_group[1], Value::BigInt(100), "all NULL keys land in one group");
}

#[test]
fn mixed_type_key_columns_do_not_collide() {
    // Multi-column keys over different physical widths: a naive byte
    // concatenation without per-column layout could alias (1, 513) with
    // (513, 1) or smallint/bigint pairs. Group counts must match the
    // exact distinct-pair count.
    let mut rows = Vec::new();
    let mut expected = std::collections::HashSet::new();
    for i in 0i64..400 {
        let a = i % 20; // INTEGER column
        let b = (i % 10) * (1 << 33); // BIGINT column, exceeds i32
        let c = (i % 5) as f64 + 0.5; // DOUBLE column
        expected.insert((a, b, (c * 10.0) as i64));
        rows.push(format!("INSERT INTO t VALUES ({a}, {b}, {c})"));
    }
    let db = db_with("CREATE TABLE t (a INTEGER, b BIGINT, c DOUBLE)", &rows);
    let out = query_at(&db, "SELECT a, b, c, count(*) FROM t GROUP BY a, b, c", 1);
    assert_eq!(out.len(), expected.len());
    // And the same with columns reordered so offsets differ.
    let out = query_at(&db, "SELECT c, a, b, count(*) FROM t GROUP BY c, a, b", 1);
    assert_eq!(out.len(), expected.len());
}

#[test]
fn varchar_keys_with_empty_and_prefix_strings() {
    // Empty strings, shared prefixes, and a key that is a prefix of
    // another: all must stay distinct groups; NULL stays its own group.
    let keys = ["", "a", "ab", "abc", "b", ""];
    let mut rows: Vec<String> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| format!("INSERT INTO t VALUES ('{k}', {i})"))
        .collect();
    rows.push("INSERT INTO t VALUES (NULL, 99)".into());
    let db = db_with("CREATE TABLE t (k VARCHAR, v INTEGER)", &rows);
    let out = sorted(query_at(&db, "SELECT k, count(*) FROM t GROUP BY k", 1));
    assert_eq!(out.len(), 6, "5 distinct strings + NULL");
    let empty = out.iter().find(|r| r[0] == Value::Varchar(String::new())).unwrap();
    assert_eq!(empty[1], Value::BigInt(2), "both empty strings in one group");
}

#[test]
fn varchar_keys_with_embedded_nul_bytes() {
    // Embedded NULs cannot go through the SQL lexer; exercise the table
    // through the exec-layer API directly.
    use eider_exec::aggregate::AggKind;
    use eider_exec::expression::Expr;
    use eider_exec::ops::agg::{AggExpr, GroupTable};
    use eider_vector::DataChunk;

    let keys = ["a", "a\0", "a\0b", "", "\0", "a"];
    let rows: Vec<Vec<Value>> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| vec![Value::Varchar((*k).to_string()), Value::Integer(i as i32)])
        .collect();
    let chunk = DataChunk::from_rows(&[LogicalType::Varchar, LogicalType::Integer], &rows).unwrap();
    let groups = vec![Expr::column(0, LogicalType::Varchar)];
    let aggs = vec![AggExpr { kind: AggKind::CountStar, arg: None, distinct: false }];
    let mut table = GroupTable::new(&groups, &aggs);
    table.update_chunk(&groups, &aggs, &chunk).unwrap();
    assert_eq!(table.len(), 5, "embedded-NUL variants are distinct keys");
    let order = table.sorted_order();
    let emitted = table.emit(&order, &aggs).unwrap();
    let out = emitted.to_rows();
    // "a" appears twice; every other key once.
    let a_group = out.iter().find(|r| r[0] == Value::Varchar("a".into())).unwrap();
    assert_eq!(a_group[1], Value::BigInt(2));
    assert!(out.iter().any(|r| r[0] == Value::Varchar("a\0".into())));
}

#[test]
fn join_keys_respect_null_and_type_semantics() {
    let db = db_with(
        "CREATE TABLE l (k INTEGER, tag VARCHAR)",
        &[
            "INSERT INTO l VALUES (1, 'one')".into(),
            "INSERT INTO l VALUES (2, 'two')".into(),
            "INSERT INTO l VALUES (NULL, 'null')".into(),
        ],
    );
    let conn = db.connect();
    conn.execute("CREATE TABLE r (k BIGINT, name VARCHAR)").unwrap();
    conn.execute("INSERT INTO r VALUES (1, 'uno')").unwrap();
    conn.execute("INSERT INTO r VALUES (1, 'eins')").unwrap();
    conn.execute("INSERT INTO r VALUES (NULL, 'nix')").unwrap();
    // INTEGER joins BIGINT through the binder's coercion; NULLs never join.
    let out = conn.query("SELECT count(*) FROM l JOIN r ON l.k = r.k").unwrap().to_rows();
    assert_eq!(out[0][0], Value::BigInt(2));
    let out = conn.query("SELECT count(*) FROM l LEFT JOIN r ON l.k = r.k").unwrap().to_rows();
    assert_eq!(out[0][0], Value::BigInt(4), "2 matches + 2 padded misses");
}

#[test]
fn parallel_aggregation_is_deterministic_across_thread_counts() {
    let mut rows = Vec::new();
    for i in 0..4000 {
        let k = if i % 11 == 0 { "NULL".to_string() } else { format!("'{}'", i % 37) };
        let d = (i % 100) as f64 / 3.0;
        rows.push(format!("INSERT INTO t VALUES ({k}, {i}, {d})"));
    }
    let db = db_with("CREATE TABLE t (k VARCHAR, v INTEGER, d DOUBLE)", &rows);
    let sql = "SELECT k, count(*), sum(v), min(d), max(d), count(DISTINCT v % 10) \
               FROM t GROUP BY k";
    let reference = query_at(&db, sql, 1);
    for threads in [2, 4, 8] {
        let out = query_at(&db, sql, threads);
        assert_eq!(out, reference, "threads={threads}: output must be bit-identical");
    }
    // Repeated runs at the same thread count are bit-identical too.
    assert_eq!(query_at(&db, sql, 4), query_at(&db, sql, 4));
}

#[test]
fn distinct_runs_on_the_byte_key_path() {
    let mut rows = Vec::new();
    for i in 0..1000 {
        rows.push(format!("INSERT INTO t VALUES ({}, '{}')", i % 13, i % 4));
    }
    let db = db_with("CREATE TABLE t (a INTEGER, b VARCHAR)", &rows);
    for threads in [1, 4] {
        let out = query_at(&db, "SELECT DISTINCT a, b FROM t", threads);
        assert_eq!(out.len(), 52, "threads={threads}");
    }
}
