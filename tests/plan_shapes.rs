//! Golden plan-shape tests over `EXPLAIN` output: the optimizer's
//! externally visible contract. Filter pushdown, column pruning, limit
//! placement, cost-based join order, build-side placement and the
//! physical routing verdict are all asserted against the printed plan —
//! the same text a user sees — rather than against internal plan
//! accessors.
//!
//! Fixture: a 10 000-row `fact` table with three dimension keys, and
//! dimension tables of 50/20/10 rows. Estimates come from live table
//! statistics (zone maps + encoding metadata), so the asserted orders are
//! exactly what a user gets on this data.

use eider::{Connection, Database, Value};
use std::sync::{Arc, OnceLock};

fn db() -> Arc<Database> {
    Database::in_memory().unwrap()
}

/// Run `EXPLAIN <sql>` and return the printed plan as one string.
fn explain(conn: &Connection, sql: &str) -> String {
    let result = conn.query(&format!("EXPLAIN {sql}")).unwrap();
    let mut out = String::new();
    for chunk in result.chunks() {
        for row in chunk.to_rows() {
            if let Value::Varchar(line) = &row[0] {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Line index of the first line containing `needle`.
fn line_of(plan: &str, needle: &str) -> usize {
    plan.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("no line contains {needle:?} in:\n{plan}"))
}

/// Scan table names in print order — the join tree's left-deep leaf order
/// (probe chain root first, builds in join order after it).
fn scan_order(plan: &str) -> Vec<String> {
    plan.lines()
        .filter_map(|l| l.trim_start().strip_prefix("SCAN "))
        .map(|rest| rest.split_whitespace().next().unwrap().to_string())
        .collect()
}

/// Bulk-load `n` rows produced by `row` (comma-joined value lists) in
/// batched multi-row INSERTs.
fn load(conn: &Connection, table: &str, n: usize, row: impl Fn(usize) -> String) {
    for base in (0..n).step_by(1000) {
        let hi = (base + 1000).min(n);
        let values: Vec<String> = (base..hi).map(|i| format!("({})", row(i))).collect();
        conn.execute(&format!("INSERT INTO {table} VALUES {}", values.join(","))).unwrap();
    }
}

const FACT_ROWS: usize = 10_000;

/// Shared star-schema fixture. Built once per test binary — every test
/// only reads it (PRAGMAs are per-connection), so sharing is safe and
/// keeps the suite fast.
fn star_fixture() -> Arc<Database> {
    static FIXTURE: OnceLock<Arc<Database>> = OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            let db = db();
            let conn = db.connect();
            conn.execute("CREATE TABLE fact (id INTEGER, d1 INTEGER, d2 INTEGER, v INTEGER)")
                .unwrap();
            conn.execute("CREATE TABLE dim1 (id INTEGER, name VARCHAR)").unwrap();
            conn.execute("CREATE TABLE dim2 (id INTEGER, name VARCHAR)").unwrap();
            conn.execute("CREATE TABLE dim3 (id INTEGER, name VARCHAR)").unwrap();
            load(&conn, "fact", FACT_ROWS, |i| format!("{i}, {}, {}, {i}", i % 50, i % 20));
            load(&conn, "dim1", 50, |i| format!("{i}, 'd1_{i}'"));
            load(&conn, "dim2", 20, |i| format!("{i}, 'd2_{i}'"));
            load(&conn, "dim3", 10, |i| format!("{i}, 'd3_{i}'"));
            db
        })
        .clone()
}

#[test]
fn filters_push_into_scans_and_through_joins() {
    let db = star_fixture();
    let conn = db.connect();

    // Both conjuncts leave the plan and land on the scan.
    let plan = explain(&conn, "SELECT * FROM fact WHERE v > 100 AND id < 500");
    assert!(!plan.contains("FILTER"), "no residual filter expected:\n{plan}");
    assert!(plan.contains("SCAN fact cols=[0, 1, 2, 3] filters=2"), "{plan}");

    // A fact-side predicate written above a join sinks through the join
    // into the fact scan; the dimension scan keeps filters=0.
    let plan = explain(
        &conn,
        "SELECT fact.v, dim1.name FROM dim1 JOIN fact ON dim1.id = fact.d1 WHERE fact.v < 100",
    );
    assert!(!plan.contains("FILTER"), "predicate should reach the scan:\n{plan}");
    assert!(plan.contains("SCAN fact cols=[0, 1, 2, 3] filters=1"), "{plan}");
    assert!(plan.contains("SCAN dim1 cols=[0, 1] filters=0"), "{plan}");

    // Complex predicates (OR of columns) stay as residual FILTER nodes.
    let plan = explain(&conn, "SELECT * FROM fact WHERE v > 100 OR id < 500");
    assert!(plan.contains("FILTER"), "{plan}");
    assert!(plan.contains("filters=0"), "{plan}");
}

#[test]
fn scans_read_only_referenced_columns() {
    let db = star_fixture();
    let conn = db.connect();

    // Aggregate over one column: the scan narrows to it.
    let plan = explain(&conn, "SELECT sum(v) FROM fact");
    assert!(plan.contains("SCAN fact cols=[3]"), "{plan}");

    // Bare count(*): the narrowest (non-varchar) column is kept so chunks
    // still carry row counts.
    let plan = explain(&conn, "SELECT count(*) FROM fact");
    assert_eq!(plan.matches("SCAN").count(), 1, "{plan}");
    assert!(plan.contains("SCAN fact cols=[0]"), "{plan}");
}

#[test]
fn limit_stays_fused_above_sort_for_topn() {
    let db = star_fixture();
    let conn = db.connect();
    // LIMIT sinks through projections but never through SORT: the
    // physical planner fuses LIMIT-over-SORT into a bounded Top-N.
    let plan = explain(&conn, "SELECT a FROM (SELECT v AS a FROM fact) sub ORDER BY a LIMIT 5");
    assert!(line_of(&plan, "LIMIT 5") < line_of(&plan, "SORT"), "{plan}");
}

#[test]
fn three_table_chain_reorders_fact_to_probe_root() {
    let db = star_fixture();
    let conn = db.connect();
    // Syntactic order hashes the 10 000-row fact table as the innermost
    // build; the reorderer flips fact to the probe root with both
    // dimensions as builds.
    let plan = explain(
        &conn,
        "SELECT count(*) FROM dim1 JOIN fact ON dim1.id = fact.d1 \
         JOIN dim2 ON fact.d2 = dim2.id",
    );
    assert_eq!(scan_order(&plan), ["fact", "dim1", "dim2"], "{plan}");
    assert_eq!(plan.matches("build=right").count(), 2, "{plan}");
}

#[test]
fn star_shape_comma_joins_become_equi_joins_fact_first() {
    let db = star_fixture();
    let conn = db.connect();
    // Comma-list star: the equality predicates live in a WHERE above a
    // cross-join region. The reorderer absorbs them as join edges — no
    // CROSS_JOIN survives, fact is the probe root, and every dimension
    // hashes as a build side.
    let plan = explain(
        &conn,
        "SELECT count(*) FROM dim1, dim2, dim3, fact \
         WHERE dim1.id = fact.d1 AND dim2.id = fact.d2 AND dim3.id = fact.d2",
    );
    assert!(!plan.contains("CROSS_JOIN"), "{plan}");
    assert_eq!(plan.matches("JOIN Inner").count(), 3, "{plan}");
    let order = scan_order(&plan);
    assert_eq!(order[0], "fact", "fact must be the probe root:\n{plan}");
    assert_eq!(order.len(), 4, "{plan}");
}

#[test]
fn five_table_chain_avoids_big_table_as_inner_build() {
    let db = db();
    let conn = db.connect();
    conn.execute("CREATE TABLE big (id INTEGER, k1 INTEGER)").unwrap();
    conn.execute("CREATE TABLE m1 (id INTEGER, k2 INTEGER)").unwrap();
    conn.execute("CREATE TABLE m2 (id INTEGER, k3 INTEGER)").unwrap();
    conn.execute("CREATE TABLE m3 (id INTEGER, k4 INTEGER)").unwrap();
    conn.execute("CREATE TABLE m4 (id INTEGER)").unwrap();
    load(&conn, "big", FACT_ROWS, |i| format!("{i}, {}", i % 200));
    load(&conn, "m1", 200, |i| format!("{i}, {}", i % 100));
    load(&conn, "m2", 100, |i| format!("{i}, {}", i % 50));
    load(&conn, "m3", 50, |i| format!("{i}, {}", i % 10));
    load(&conn, "m4", 10, |i| format!("{i}"));
    // Chain big—m1—m2—m3—m4, written so the syntactic plan hashes the
    // 10 000-row table as the very first build. The cost-based order must
    // move `big` out of that position; with chain selectivities the DP
    // walks the chain from the small end and leaves `big` as the last,
    // unavoidable build.
    let plan = explain(
        &conn,
        "SELECT count(*) FROM m1 JOIN big ON m1.id = big.k1 \
         JOIN m2 ON m1.k2 = m2.id JOIN m3 ON m2.k3 = m3.id JOIN m4 ON m3.k4 = m4.id",
    );
    let order = scan_order(&plan);
    assert_eq!(order.len(), 5, "{plan}");
    assert_ne!(order[1], "big", "big must not stay the innermost build:\n{plan}");
    // The DP walks the chain from its small end; whichever small-table
    // permutation wins, `big` must end up as the final (outermost) build,
    // where its 10 000 rows are hashed exactly once against a tiny
    // probe stream instead of being re-materialized through every join.
    assert_eq!(order[4], "big", "{plan}");
}

#[test]
fn build_side_flips_under_skewed_input_sizes() {
    let db = star_fixture();
    let conn = db.connect();
    // Small JOIN big: flipped so the big table probes and the small one
    // is hashed (the physical join always builds its right input).
    let flipped = explain(&conn, "SELECT count(*) FROM dim1 JOIN fact ON dim1.id = fact.d1");
    assert_eq!(scan_order(&flipped), ["fact", "dim1"], "{flipped}");
    assert!(flipped.contains("build=right"), "{flipped}");

    // Big JOIN small is already optimal: the syntactic order is kept.
    let kept = explain(&conn, "SELECT count(*) FROM fact JOIN dim1 ON fact.d1 = dim1.id");
    assert_eq!(scan_order(&kept), ["fact", "dim1"], "{kept}");
}

#[test]
fn estimates_are_stats_driven() {
    let db = star_fixture();
    let conn = db.connect();

    // Unfiltered scan: the estimate is the exact row count.
    let plan = explain(&conn, "SELECT sum(v) FROM fact");
    assert!(plan.contains(&format!("SCAN fact cols=[3] filters=0 est={FACT_ROWS}")), "{plan}");

    // Range filter: zone maps bound v to [0, 19999]; `v < 100` must
    // estimate close to its true 100 rows, not the 1/3 default.
    let plan = explain(&conn, "SELECT * FROM fact WHERE v < 100");
    let est: u64 = plan
        .lines()
        .find(|l| l.contains("SCAN fact"))
        .and_then(|l| l.split("est=").nth(1))
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("no est on scan line:\n{plan}"));
    assert!((50..=500).contains(&est), "range selectivity should be interpolated: {est}\n{plan}");

    // FK join: |fact| × |dim| / ndv(key) = 20000 exactly.
    let plan = explain(&conn, "SELECT count(*) FROM dim1 JOIN fact ON dim1.id = fact.d1");
    assert!(plan.contains(&format!("JOIN Inner keys=1 build=right est={FACT_ROWS}")), "{plan}");
}

#[test]
fn routing_thresholds_follow_estimated_rows() {
    let db = star_fixture();
    let conn = db.connect();
    conn.execute("PRAGMA threads=4").unwrap();

    // Large scan: morsel-parallel DAG.
    let plan = explain(&conn, "SELECT sum(v) FROM fact");
    assert!(plan.contains("ROUTING parallel threads=4"), "{plan}");

    // Tiny table: fan-out would not earn its dispatch cost.
    let plan = explain(&conn, "SELECT sum(id) FROM dim1");
    assert!(plan.contains("ROUTING serial"), "{plan}");

    // Zone maps prove the filter matches nothing: every row group is
    // pruned at planning time and the query routes serial despite the
    // table's 10 000 rows.
    let plan = explain(&conn, "SELECT sum(v) FROM fact WHERE id < -100");
    assert!(plan.contains("ROUTING serial"), "{plan}");

    // One worker: everything routes serial.
    conn.execute("PRAGMA threads=1").unwrap();
    let plan = explain(&conn, "SELECT sum(v) FROM fact");
    assert!(plan.contains("ROUTING serial"), "{plan}");
}

#[test]
fn optimizer_pragma_restores_syntactic_plans() {
    let db = star_fixture();
    let conn = db.connect();
    let sql = "SELECT count(*) FROM dim1 JOIN fact ON dim1.id = fact.d1 WHERE fact.v < 100";

    conn.execute("PRAGMA optimizer=0").unwrap();
    assert_eq!(
        conn.query("PRAGMA optimizer").unwrap().scalar().unwrap(),
        Value::BigInt(0),
        "pragma must read back"
    );
    let raw = explain(&conn, sql);
    // Syntactic join order, filter left in the plan, nothing pushed.
    assert_eq!(scan_order(&raw), ["dim1", "fact"], "{raw}");
    assert!(raw.contains("FILTER"), "{raw}");
    assert!(raw.contains("SCAN fact cols=[0, 1, 2, 3] filters=0"), "{raw}");

    conn.execute("PRAGMA optimizer=1").unwrap();
    let optimized = explain(&conn, sql);
    assert_eq!(scan_order(&optimized), ["fact", "dim1"], "{optimized}");
    assert!(optimized.contains("SCAN fact cols=[0, 1, 2, 3] filters=1"), "{optimized}");

    // The toggle is per-connection: a sibling session still optimizes.
    conn.execute("PRAGMA optimizer=0").unwrap();
    let sibling = db.connect();
    let other = explain(&sibling, sql);
    assert_eq!(scan_order(&other), ["fact", "dim1"], "{other}");
}

#[test]
fn optimizer_off_still_returns_identical_results() {
    let db = star_fixture();
    let conn = db.connect();
    let baseline = db.connect();
    baseline.execute("PRAGMA optimizer=0").unwrap();
    for sql in [
        "SELECT count(*), sum(fact.v) FROM dim1 JOIN fact ON dim1.id = fact.d1 WHERE fact.v < 100",
        "SELECT count(*) FROM dim1, dim2, dim3, fact \
         WHERE dim1.id = fact.d1 AND dim2.id = fact.d2 AND dim3.id = fact.d2",
        "SELECT dim1.name, sum(fact.v) FROM dim1 JOIN fact ON dim1.id = fact.d1 \
         GROUP BY dim1.name ORDER BY dim1.name LIMIT 7",
    ] {
        let a = conn.query(sql).unwrap().to_rows();
        let b = baseline.query(sql).unwrap().to_rows();
        assert_eq!(a, b, "{sql}");
    }
}
