//! Property-based tests over core data structures and engine invariants.

use eider::{Database, Value};
use eider_storage::serde::{read_chunk, write_chunk, BinReader, BinWriter};
use eider_vector::{DataChunk, LogicalType};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Integer),
        any::<i64>().prop_map(Value::BigInt),
        any::<bool>().prop_map(Value::Boolean),
        (-1e12f64..1e12).prop_map(Value::Double),
        "[a-zA-Z0-9 ,'%_]{0,24}".prop_map(Value::Varchar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunk_serialization_round_trips(
        ints in prop::collection::vec(prop::option::of(any::<i32>()), 0..200),
        strs in prop::collection::vec(prop::option::of("[a-z]{0,16}"), 0..200),
    ) {
        let n = ints.len().min(strs.len());
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    ints[i].map_or(Value::Null, Value::Integer),
                    strs[i].clone().map_or(Value::Null, Value::Varchar),
                ]
            })
            .collect();
        let chunk =
            DataChunk::from_rows(&[LogicalType::Integer, LogicalType::Varchar], &rows).unwrap();
        let mut w = BinWriter::new();
        write_chunk(&mut w, &chunk);
        let bytes = w.into_bytes();
        let back = read_chunk(&mut BinReader::new(&bytes)).unwrap();
        prop_assert_eq!(back.to_rows(), chunk.to_rows());
    }

    #[test]
    fn value_total_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Transitivity (on the <= relation).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn compression_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        for level in [
            eider_coop::compression::CompressionLevel::None,
            eider_coop::compression::CompressionLevel::Light,
            eider_coop::compression::CompressionLevel::Heavy,
        ] {
            let compressed = eider_coop::compression::compress(level, &data);
            let back = eider_coop::compression::decompress(&compressed).unwrap();
            prop_assert_eq!(&back, &data);
        }
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..512),
        bit in any::<usize>(),
    ) {
        let crc = eider_resilience::checksum::crc32c(&data);
        let mut corrupted = data.clone();
        let bit = bit % (corrupted.len() * 8);
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(eider_resilience::checksum::crc32c(&corrupted), crc);
    }

    #[test]
    fn an_codes_round_trip_and_detect(v in any::<i32>(), flip in 0usize..63) {
        let codec = eider_resilience::ancode::AnCodec::default();
        let code = codec.encode(i64::from(v));
        prop_assert_eq!(codec.decode(code).unwrap(), i64::from(v));
        let corrupted = code ^ (1i64 << flip);
        if corrupted != code {
            // A single bit flip is either detected or (with probability
            // 1/A) decodes to a *different* value — never silently the same.
            if let Ok(decoded) = codec.decode(corrupted) { prop_assert_ne!(decoded, i64::from(v)) }
        }
    }

    #[test]
    fn sql_filter_matches_model(values in prop::collection::vec(any::<i32>(), 1..100), pivot in any::<i32>()) {
        let db = Database::in_memory().unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
        let rows: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        conn.execute(&format!("INSERT INTO t VALUES {}", rows.join(","))).unwrap();
        let r = conn
            .query(&format!("SELECT count(*) FROM t WHERE v > {pivot}"))
            .unwrap();
        let expected = values.iter().filter(|&&v| v > pivot).count() as i64;
        prop_assert_eq!(r.scalar().unwrap(), Value::BigInt(expected));
    }

    #[test]
    fn optimizer_never_changes_results(
        fact in prop::collection::vec((0i32..20, 0i32..10, -100i32..100), 1..300),
        dim1 in prop::collection::vec(-50i32..50, 1..30),
        dim2 in prop::collection::vec(-50i32..50, 1..15),
        comma_join in any::<bool>(),
        fact_filter in prop::option::of(-120i32..120),
        dim_filter in prop::option::of(-60i32..60),
    ) {
        // Random star query over random data: the full optimizer pipeline
        // (constant folding, filter pushdown, join reordering, column
        // pruning, stats-driven build sides and routing) must be invisible
        // in the results. Compare against the `PRAGMA optimizer=0`
        // baseline at every worker count — morsel decomposition is fixed,
        // so all eight plans must agree bit-for-bit.
        let db = Database::in_memory().unwrap();
        let setup = db.connect();
        setup.execute("CREATE TABLE f (k1 INTEGER, k2 INTEGER, v INTEGER)").unwrap();
        setup.execute("CREATE TABLE d1 (id INTEGER, w INTEGER)").unwrap();
        setup.execute("CREATE TABLE d2 (id INTEGER, w INTEGER)").unwrap();
        let rows: Vec<String> =
            fact.iter().map(|(k1, k2, v)| format!("({k1},{k2},{v})")).collect();
        setup.execute(&format!("INSERT INTO f VALUES {}", rows.join(","))).unwrap();
        for (name, data) in [("d1", &dim1), ("d2", &dim2)] {
            let rows: Vec<String> =
                data.iter().enumerate().map(|(i, w)| format!("({i},{w})")).collect();
            setup.execute(&format!("INSERT INTO {name} VALUES {}", rows.join(","))).unwrap();
        }

        let mut filters: Vec<String> = Vec::new();
        if let Some(c) = fact_filter {
            filters.push(format!("f.v > {c}"));
        }
        if let Some(c) = dim_filter {
            filters.push(format!("d1.w < {c}"));
        }
        let sql = if comma_join {
            let mut preds = vec!["f.k1 = d1.id".to_string(), "f.k2 = d2.id".to_string()];
            preds.extend(filters);
            format!(
                "SELECT f.k1, count(*), sum(f.v), min(d2.w) FROM d1, d2, f \
                 WHERE {} GROUP BY f.k1 ORDER BY f.k1",
                preds.join(" AND ")
            )
        } else {
            let where_clause = if filters.is_empty() {
                String::new()
            } else {
                format!(" WHERE {}", filters.join(" AND "))
            };
            format!(
                "SELECT f.k1, count(*), sum(f.v), min(d2.w) \
                 FROM d1 JOIN f ON d1.id = f.k1 JOIN d2 ON f.k2 = d2.id\
                 {where_clause} GROUP BY f.k1 ORDER BY f.k1"
            )
        };

        let optimized = db.connect();
        let baseline = db.connect();
        baseline.execute("PRAGMA optimizer=0").unwrap();
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for threads in [1usize, 2, 4, 8] {
            optimized.execute(&format!("PRAGMA threads={threads}")).unwrap();
            baseline.execute(&format!("PRAGMA threads={threads}")).unwrap();
            let opt_rows = optimized.query(&sql).unwrap().to_rows();
            let base_rows = baseline.query(&sql).unwrap().to_rows();
            prop_assert_eq!(&opt_rows, &base_rows, "threads={} sql={}", threads, &sql);
            match &reference {
                Some(r) => prop_assert_eq!(r, &opt_rows, "threads={} sql={}", threads, &sql),
                None => reference = Some(opt_rows),
            }
        }
    }

    #[test]
    fn sort_produces_sorted_permutation(values in prop::collection::vec(any::<i32>(), 0..200)) {
        let db = Database::in_memory().unwrap();
        let conn = db.connect();
        conn.execute("CREATE TABLE t (v INTEGER)").unwrap();
        if !values.is_empty() {
            let rows: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
            conn.execute(&format!("INSERT INTO t VALUES {}", rows.join(","))).unwrap();
        }
        let r = conn.query("SELECT v FROM t ORDER BY v").unwrap();
        let got: Vec<i32> = r
            .to_rows()
            .into_iter()
            .map(|row| match row[0] {
                Value::Integer(v) => v,
                _ => unreachable!(),
            })
            .collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
